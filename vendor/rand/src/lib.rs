//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the subset of the rand 0.8 API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] on
//! integer and float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64 — the same generator
//! family the real `rand 0.8` uses on 64-bit targets, so statistical quality
//! is comparable. Streams are **not** bit-compatible with the real crate;
//! all workspace experiments treat seeds as opaque, so only determinism
//! matters, and that is preserved.

#![forbid(unsafe_code)]

/// A low-level source of 64-bit random data.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed (via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// Integer sampling uses a modulo reduction: its bias is ≤ span/2⁶⁴,
    /// far below anything observable by the workspace's experiments.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                let r = (rng.next_u64() as i128).rem_euclid(span);
                (lo_w + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                // 53 (resp. 24) explicit mantissa bits of uniform randomness.
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a single uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}
