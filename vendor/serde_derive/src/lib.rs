//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Supports `#[derive(Serialize)]` / `#[derive(Deserialize)]` on
//! non-generic structs and enums **without** `#[serde(...)]` attributes —
//! exactly the shapes that appear in this workspace. Since neither `syn`
//! nor `quote` is available offline, the input is parsed directly from the
//! token stream and the generated impl is emitted as source text.
//!
//! Encoding (matching real serde where the workspace observes it):
//! named structs → objects; newtype structs → transparent; tuple structs →
//! arrays; unit enum variants → strings; data-carrying variants →
//! externally tagged single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a parsed `struct` or `enum`.
enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    UnitStruct,
    Enum { variants: Vec<Variant> },
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple { arity: usize },
    Struct { fields: Vec<String> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("serde_derive: generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    gen_deserialize(&name, &shape)
        .parse()
        .expect("serde_derive: generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found `{other}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (offline stub): generic type `{name}` is not supported");
    }

    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    (name, shape)
}

/// Advances `i` past outer attributes (`#[...]`) and visibility
/// (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream on top-level commas, treating `<...>` as nesting.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle: i32 = 0;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().unwrap().push(tt);
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            match &seg[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected field name, found `{other}`"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            let name = match &seg[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found `{other}`"),
            };
            i += 1;
            let kind = match seg.get(i) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple {
                        arity: count_tuple_fields(g.stream()),
                    }
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct {
                        fields: parse_named_fields(g.stream()),
                    }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
                other => panic!("serde_derive: unexpected variant body: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn bindings(arity: usize) -> Vec<String> {
    (0..arity).map(|k| format!("__f{k}")).collect()
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple { arity: 1 } => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple { arity } => {
                            let binds = bindings(*arity);
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct { fields } => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn field_expr(ty_name: &str, field: &str) -> String {
    format!(
        "::serde::Deserialize::from_value(__v.get(\"{field}\").ok_or_else(|| \
         ::serde::Error::custom(\"missing field `{field}` in {ty_name}\"))?)?"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: {}", field_expr(name, f)))
                .collect();
            format!(
                "if __v.as_object().is_none() {{\n\
                     return Err(::serde::Error::custom(format!(\n\
                         \"expected object for {name}, found {{}}\", __v.kind())));\n\
                 }}\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __items.len() != {arity} {{\n\
                     return Err(::serde::Error::custom(\"wrong tuple length for {name}\"));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum { variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple { arity: 1 } => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple { arity } => {
                            let items: Vec<String> = (0..*arity)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&__items[{k}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __items = __inner.as_array().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                                     if __items.len() != {arity} {{\n\
                                         return Err(::serde::Error::custom(\
                                         \"wrong tuple length for {name}::{vn}\"));\n\
                                     }}\n\
                                     Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Struct { fields } => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         __inner.get(\"{f}\").ok_or_else(|| ::serde::Error::custom(\
                                         \"missing field `{f}` in {name}::{vn}\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => Err(::serde::Error::custom(format!(\n\
                             \"unknown variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged}\n\
                             __other => Err(::serde::Error::custom(format!(\n\
                                 \"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(::serde::Error::custom(format!(\n\
                         \"expected enum {name}, found {{}}\", __other.kind()))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
