//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate, targeting the vendored `serde` value model.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] with real
//! serde_json semantics where the workspace observes them: shortest
//! round-trip float formatting (Rust's `{}` for `f64` is exact), non-finite
//! floats as `null`, and a full JSON parser (escapes, exponents, `\uXXXX`).

#![forbid(unsafe_code)]

use serde::{Deserialize, Error, Serialize, Value};

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` for f64 is the shortest exact round-trip form, but
                // bare integral floats ("4") must stay floats on re-read;
                // serde_json prints them as "4.0".
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::custom("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error::custom("unterminated escape sequence"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs for non-BMP characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| Error::custom("bad \\u escape"))?;
                                let lo = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| Error::custom("bad \\u escape"))?;
                                self.pos += 4;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| Error::custom("bad \\u escape"))?
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}
