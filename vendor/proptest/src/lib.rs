//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`Just`], `prop::collection::vec`, the [`proptest!`]
//! macro with `#![proptest_config]`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! ## Shrinking
//!
//! Like the real crate, a failing case is **shrunk** before it is reported.
//! Every random draw a strategy makes is recorded on a *choice tape*
//! (Hypothesis-style); shrinking replays mutated tapes — deleting chunks
//! (which shortens generated collections) and moving individual choices
//! towards their minimum (zeroing, halving, decrementing) — and keeps any
//! mutation that still fails the property. The reported counterexample is
//! the simplest one found, and the failure message still carries the
//! original seed: re-running with `PAMR_PROPTEST_SEED=<seed>` reproduces
//! the same input sequence, the same failure and the same minimal
//! counterexample on any machine.
//!
//! Remaining differences from the real crate, by design: inputs are drawn
//! from a deterministic per-test RNG (seeded from the test's name), and
//! `prop_assume!` skips the case rather than resampling.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Environment variable overriding the per-test seed (decimal or `0x`-hex),
/// printed in every failure's replay hint.
pub const SEED_ENV: &str = "PAMR_PROPTEST_SEED";

/// One recorded random draw: the value produced and the minimum of the
/// range it was drawn from (the shrinking target).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Choice {
    /// An integer draw (covers every integer strategy via `i128`).
    Int {
        /// The value drawn.
        val: i128,
        /// The inclusive lower bound it can shrink towards.
        lo: i128,
    },
    /// A floating-point draw.
    Float {
        /// The value drawn.
        val: f64,
        /// The lower bound it can shrink towards.
        lo: f64,
    },
}

impl Choice {
    fn at_minimum(&self) -> bool {
        match *self {
            Choice::Int { val, lo } => val == lo,
            Choice::Float { val, lo } => val == lo,
        }
    }

    fn to_minimum(self) -> Choice {
        match self {
            Choice::Int { lo, .. } => Choice::Int { val: lo, lo },
            Choice::Float { lo, .. } => Choice::Float { val: lo, lo },
        }
    }

    /// The midpoint between `floor` (a known-passing value at or above this
    /// choice's minimum) and the current value, or `None` when the gap
    /// cannot be split further.
    fn midpoint_above(self, floor: &Choice) -> Option<Choice> {
        match (self, floor) {
            (Choice::Int { val, lo }, Choice::Int { val: good, .. }) => {
                let mid = good + (val - good) / 2;
                (mid != *good && mid != val).then_some(Choice::Int { val: mid, lo })
            }
            (Choice::Float { val, lo }, Choice::Float { val: good, .. }) => {
                let mid = good + (val - good) / 2.0;
                (mid != *good && mid != val).then_some(Choice::Float { val: mid, lo })
            }
            _ => None,
        }
    }
}

/// Deterministic RNG driving input generation, recording every draw on a
/// choice tape so failures can be shrunk by tape mutation.
pub struct TestRng {
    rng: SmallRng,
    seed: u64,
    /// Replay source (`None` = fresh random draws).
    tape: Option<Vec<Choice>>,
    cursor: usize,
    /// The draws actually made in the current case (post-clamping during a
    /// replay) — the canonical tape of that case.
    record: Vec<Choice>,
}

impl TestRng {
    /// Builds the RNG for a named test; the same name always produces the
    /// same input sequence. A [`SEED_ENV`] environment variable overrides
    /// the seed — that is how a reported failure is replayed.
    pub fn from_name(name: &str) -> Self {
        let seed = match std::env::var(SEED_ENV) {
            Ok(v) => Self::parse_seed(&v)
                .unwrap_or_else(|| panic!("{SEED_ENV}={v:?} is not a decimal or 0x-hex u64")),
            Err(_) => Self::seed_from_name(name),
        };
        Self::from_seed(seed)
    }

    /// Builds the RNG from an explicit seed (what a replay does after
    /// parsing [`SEED_ENV`]).
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            rng: SmallRng::seed_from_u64(seed),
            seed,
            tape: None,
            cursor: 0,
            record: Vec::new(),
        }
    }

    /// Builds an RNG that replays `tape` instead of drawing fresh values:
    /// replayed choices are clamped into the requested range, and draws
    /// past the end of the tape return the range minimum. This is the
    /// shrinking primitive — a mutated tape deterministically regenerates a
    /// (simpler) input.
    pub fn replaying(seed: u64, tape: Vec<Choice>) -> Self {
        TestRng {
            rng: SmallRng::seed_from_u64(seed),
            seed,
            tape: Some(tape),
            cursor: 0,
            record: Vec::new(),
        }
    }

    /// Starts a fresh case: clears the per-case record (random mode only).
    fn start_case(&mut self) {
        self.record.clear();
    }

    /// Takes the canonical choice tape of the current case.
    fn take_record(&mut self) -> Vec<Choice> {
        std::mem::take(&mut self.record)
    }

    /// The name-derived default seed: FNV-1a over the test name, mixed
    /// with a fixed workspace seed.
    fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ 0x9E37_79B9_7F4A_7C15
    }

    fn parse_seed(v: &str) -> Option<u64> {
        if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            v.parse().ok()
        }
    }

    /// The seed this RNG was built from (reported on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform integer in `[lo, hi]`, recorded on the choice tape. Uses the
    /// same modulo reduction as the vendored `rand`, so the generated
    /// sequences are identical to earlier (pre-shrinking) releases.
    pub fn draw_int(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "cannot sample from empty range");
        let val = match &self.tape {
            Some(tape) => {
                let stored = match tape.get(self.cursor) {
                    Some(Choice::Int { val, .. }) => *val,
                    Some(Choice::Float { val, .. }) => *val as i128,
                    None => lo,
                };
                self.cursor += 1;
                stored.clamp(lo, hi)
            }
            None => {
                let span = hi - lo + 1;
                lo + (self.rng.next_u64() as i128).rem_euclid(span)
            }
        };
        self.record.push(Choice::Int { val, lo });
        val
    }

    /// Uniform float in `[lo, hi)` (degenerate ranges return `lo`),
    /// recorded on the choice tape.
    pub fn draw_float(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "cannot sample from empty range");
        let val = match &self.tape {
            Some(tape) => {
                let stored = match tape.get(self.cursor) {
                    Some(Choice::Float { val, .. }) => *val,
                    Some(Choice::Int { val, .. }) => *val as f64,
                    None => lo,
                };
                self.cursor += 1;
                let clamped = stored.clamp(lo, hi);
                // The random path never produces `hi` (unit < 1), so a
                // mutated tape must not either: an out-of-domain
                // counterexample would send the developer chasing inputs
                // the strategy cannot generate.
                if clamped >= hi && lo < hi {
                    lo
                } else {
                    clamped
                }
            }
            None => {
                // 53 explicit mantissa bits of uniform randomness — the
                // exact formula of the vendored `rand`, for sequence
                // stability.
                let unit = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + unit * (hi - lo)
            }
        };
        self.record.push(Choice::Float { val, lo });
        val
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        self.draw_int(lo as i128, hi as i128) as usize
    }
}

use rand::RngCore as _;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Discards generated values failing `pred` (retries a bounded number
    /// of times, then panics — matching proptest's rejection exhaustion).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.gen_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn gen_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.gen_value(rng)).gen_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: too many rejections ({})", self.whence);
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                rng.draw_int(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.draw_int(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.draw_float(self.start as f64, self.end as f64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.draw_float(*self.start() as f64, *self.end() as f64) as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive range of collection sizes.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Runner configuration, as accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Sentinel prefix distinguishing `prop_assume!` skips from failures.
pub const ASSUME_SENTINEL: &str = "\u{1}proptest-assume-rejected";

// ---------------------------------------------------------------------------
// Runner and shrinker
// ---------------------------------------------------------------------------

/// Maximum number of candidate executions one shrink session may spend.
const SHRINK_BUDGET: usize = 600;

enum CaseResult {
    Pass,
    Rejected,
    Fail(String),
}

thread_local! {
    /// Set while a case runs under `catch_unwind`: the shared panic hook
    /// stays silent so shrinking does not spray backtraces.
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn run_case<V>(run: &dyn Fn(V) -> Result<(), String>, value: V) -> CaseResult {
    QUIET.with(|q| q.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| run(value)));
    QUIET.with(|q| q.set(false));
    match outcome {
        Ok(Ok(())) => CaseResult::Pass,
        Ok(Err(e)) if e.starts_with(ASSUME_SENTINEL) => CaseResult::Rejected,
        Ok(Err(e)) => CaseResult::Fail(e),
        Err(payload) => CaseResult::Fail(format!("panicked: {}", panic_message(payload))),
    }
}

/// Generates under `catch_unwind` (a mutated tape can drive a strategy into
/// a panic, e.g. `prop_filter` rejection exhaustion — such candidates are
/// simply discarded).
fn gen_candidate<V>(gen: &dyn Fn(&mut TestRng) -> V, rng: &mut TestRng) -> Option<V> {
    QUIET.with(|q| q.set(true));
    let out = catch_unwind(AssertUnwindSafe(|| gen(rng))).ok();
    QUIET.with(|q| q.set(false));
    out
}

/// Total order on tape "complexity": fewer choices first, then smaller
/// total distance from the per-choice minima (scaled so sub-unit float
/// steps still register). Shrinking only ever accepts strictly simpler
/// tapes, which guarantees termination.
fn complexity(tape: &[Choice]) -> (usize, u128) {
    let mut dist: u128 = 0;
    for c in tape {
        let d = match *c {
            Choice::Int { val, lo } => val.abs_diff(lo).saturating_mul(65_536),
            Choice::Float { val, lo } => ((val - lo).abs() * 65_536.0) as u128,
        };
        dist = dist.saturating_add(d);
    }
    (tape.len(), dist)
}

/// Shrinks a failing choice tape: repeatedly deletes chunks and simplifies
/// individual choices (to the minimum, halfway, or by one), keeping every
/// mutation that still fails. Returns the simplest failing tape found, its
/// failure message, the number of successful shrinks and the number of
/// candidate executions spent.
fn shrink<V>(
    seed: u64,
    tape: Vec<Choice>,
    gen: &dyn Fn(&mut TestRng) -> V,
    run: &dyn Fn(V) -> Result<(), String>,
    orig_msg: String,
) -> (Vec<Choice>, String, usize, usize) {
    let mut best = tape;
    let mut best_msg = orig_msg;
    let mut best_cpx = complexity(&best);
    let mut steps = 0usize;
    let mut attempts = 0usize;

    // Runs one candidate tape; on a strictly simpler still-failing result,
    // adopts its *canonical* record (the choices actually consumed, after
    // clamping and truncation) as the new best.
    macro_rules! try_candidate {
        ($cand:expr) => {{
            let mut adopted = false;
            if attempts < SHRINK_BUDGET {
                attempts += 1;
                let mut rng = TestRng::replaying(seed, $cand);
                if let Some(value) = gen_candidate(gen, &mut rng) {
                    let rec = rng.take_record();
                    let cpx = complexity(&rec);
                    if cpx < best_cpx {
                        if let CaseResult::Fail(msg) = run_case(run, value) {
                            best = rec;
                            best_msg = msg;
                            best_cpx = cpx;
                            steps += 1;
                            adopted = true;
                        }
                    }
                }
            }
            adopted
        }};
    }

    let mut improved = true;
    while improved && attempts < SHRINK_BUDGET {
        improved = false;
        // Pass 1: delete chunks, large to small — this is what shortens
        // generated collections (the element draws vanish and the length
        // draw re-clamps on replay).
        let mut size = (best.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start + size <= best.len() && attempts < SHRINK_BUDGET {
                let mut cand = Vec::with_capacity(best.len() - size);
                cand.extend_from_slice(&best[..start]);
                cand.extend_from_slice(&best[start + size..]);
                if try_candidate!(cand) {
                    improved = true;
                    // The tape shrank in place: retry the same offset.
                } else {
                    start += size;
                }
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }
        // Pass 2: simplify individual choices — first straight to the
        // minimum, then a binary descent towards the smallest value that
        // still fails (the minimum, having not failed, is the first known
        // passing floor).
        let mut i = 0;
        while i < best.len() && attempts < SHRINK_BUDGET {
            if !best[i].at_minimum() {
                let mut cand = best.clone();
                cand[i] = cand[i].to_minimum();
                if try_candidate!(cand) {
                    improved = true;
                } else {
                    let mut floor = best[i].to_minimum();
                    while i < best.len() && attempts < SHRINK_BUDGET {
                        let Some(mid) = best[i].midpoint_above(&floor) else {
                            break;
                        };
                        let mut cand = best.clone();
                        cand[i] = mid;
                        if try_candidate!(cand) {
                            improved = true;
                        } else {
                            floor = mid;
                        }
                    }
                }
            }
            i += 1;
        }
    }
    (best, best_msg, steps, attempts)
}

/// Drives one property test: generates `config.cases` inputs, and on the
/// first failure shrinks the recorded choice tape and reports the minimal
/// counterexample together with the seed replay hint. Called by the
/// [`proptest!`] macro — not part of the public proptest API.
#[doc(hidden)]
pub fn run_proptest<V: std::fmt::Debug>(
    name: &str,
    config: ProptestConfig,
    gen: impl Fn(&mut TestRng) -> V,
    run: impl Fn(V) -> Result<(), String>,
) {
    install_quiet_hook();
    let mut rng = TestRng::from_name(name);
    let seed = rng.seed();
    let mut ran: u32 = 0;
    let mut case: u32 = 0;
    while ran < config.cases {
        case += 1;
        if case > config.cases * 20 {
            panic!("proptest {name}: too many cases rejected by prop_assume! (seed {seed:#018x})",);
        }
        rng.start_case();
        let value = gen(&mut rng);
        match run_case(&run, value) {
            CaseResult::Pass => ran += 1,
            CaseResult::Rejected => {}
            CaseResult::Fail(msg) => {
                let tape = rng.take_record();
                let (min_tape, min_msg, steps, spent) = shrink(seed, tape, &gen, &run, msg);
                let mut replay = TestRng::replaying(seed, min_tape);
                let minimal = gen(&mut replay);
                panic!(
                    "proptest {name} failed at case {case} (seed {seed:#018x})\n\
                     minimal failing input ({steps} shrink(s), {spent} candidate run(s)): \
                     {minimal:?}\n\
                     {min_msg}\n\
                     replay: {env}={seed:#018x} cargo test {name}",
                    env = SEED_ENV,
                );
            }
        }
    }
}

/// The names a `use proptest::prelude::*` is expected to bring in scope.
pub mod prelude {
    /// Alias letting `prop::collection::vec(..)` resolve as in real proptest.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ( $( $strat, )* );
                $crate::run_proptest(
                    stringify!($name),
                    config,
                    |__rng| $crate::Strategy::gen_value(&strategy, __rng),
                    |( $($arg,)* )| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), __l, __r,
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            ));
        }
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::ASSUME_SENTINEL.to_string());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::ASSUME_SENTINEL.to_string());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{shrink, Choice, TestRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        #[should_panic(expected = "replay: PAMR_PROPTEST_SEED=0x")]
        fn failing_case_reports_seed_and_replay_hint(x in 0u32..10) {
            prop_assert!(x > 100, "x = {x}");
        }

        #[test]
        #[should_panic(expected = "minimal failing input")]
        fn failing_case_reports_minimal_input(x in 0u32..1000) {
            prop_assert!(x < 3, "x = {x}");
        }

        #[test]
        fn passing_property_runs_quietly(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    /// Seed derivation and replay are tested without touching the process
    /// environment: `setenv` while sibling test threads `getenv` is a
    /// libc-level data race, so the env branch of `from_name` stays a
    /// one-line untested dispatch and everything behind it is covered via
    /// `parse_seed` / `from_seed` directly.
    #[test]
    fn seeding_is_stable_and_replayable() {
        // Name-derived seeds: stable per name, distinct across names.
        let a = TestRng::from_name("alpha");
        let b = TestRng::from_name("alpha");
        let c = TestRng::from_name("beta");
        assert_eq!(a.seed(), b.seed());
        assert_ne!(a.seed(), c.seed());
        // Hex and decimal spellings parse to the same seed; replaying that
        // seed reproduces the input stream of the originally-seeded run.
        assert_eq!(TestRng::parse_seed("0xdeadbeef"), Some(0xdead_beef));
        assert_eq!(TestRng::parse_seed("3735928559"), Some(0xdead_beef));
        assert_eq!(TestRng::parse_seed("not-a-seed"), None);
        let mut x = TestRng::from_seed(0xdead_beef);
        let mut y = TestRng::from_seed(0xdead_beef);
        assert_eq!(x.seed(), 0xdead_beef);
        let vx: Vec<usize> = (0..16).map(|_| x.below(0, 10_000)).collect();
        let vy: Vec<usize> = (0..16).map(|_| y.below(0, 10_000)).collect();
        assert_eq!(vx, vy);
        // A replayed run diverges from a differently-seeded one.
        let mut z = TestRng::from_seed(0xdead_beef + 1);
        let vz: Vec<usize> = (0..16).map(|_| z.below(0, 10_000)).collect();
        assert_ne!(vx, vz);
    }

    #[test]
    fn replay_clamps_and_fills_with_minima() {
        // A tape value outside the requested range is clamped; draws past
        // the end of the tape return the range minimum.
        let tape = vec![Choice::Int { val: 500, lo: 0 }];
        let mut rng = TestRng::replaying(1, tape);
        assert_eq!(rng.draw_int(3, 40), 40); // clamped to the new range
        assert_eq!(rng.draw_int(7, 90), 7); // exhausted → minimum
                                            // The record holds the *effective* draws for further shrinking.
        assert_eq!(
            rng.take_record(),
            vec![
                Choice::Int { val: 40, lo: 3 },
                Choice::Int { val: 7, lo: 7 },
            ]
        );
    }

    #[test]
    fn shrink_minimises_a_scalar_failure() {
        // Property: x < 17. The minimal counterexample is exactly 17, and
        // shrinking must find it from any failing start.
        let gen = |rng: &mut TestRng| (0u32..1000).gen_value(rng);
        let run = |x: u32| {
            if x >= 17 {
                Err(format!("x = {x}"))
            } else {
                Ok(())
            }
        };
        let seed = 0xABCD;
        let mut rng = TestRng::from_seed(seed);
        let mut x = {
            rng.start_case();
            gen(&mut rng)
        };
        while x < 17 {
            rng.start_case();
            x = gen(&mut rng);
        }
        let tape = rng.take_record();
        let (min_tape, msg, steps, _) = shrink(seed, tape, &gen, &run, "orig".into());
        let mut replay = TestRng::replaying(seed, min_tape.clone());
        assert_eq!(gen(&mut replay), 17, "shrinking should reach the boundary");
        assert_eq!(msg, "x = 17");
        assert!(steps > 0 || x == 17);
        // Shrinking is deterministic: a second session reproduces the tape.
        let mut rng2 = TestRng::from_seed(seed);
        let mut x2 = {
            rng2.start_case();
            gen(&mut rng2)
        };
        while x2 < 17 {
            rng2.start_case();
            x2 = gen(&mut rng2);
        }
        let (min_tape2, ..) = shrink(seed, rng2.take_record(), &gen, &run, "orig".into());
        assert_eq!(min_tape, min_tape2);
    }

    #[test]
    fn shrink_shortens_collections_and_zeroes_elements() {
        // Property: v.len() < 3 || sum < 5. A minimal counterexample has
        // exactly 3 elements summing to exactly 5.
        let gen = |rng: &mut TestRng| prop::collection::vec(0u32..100, 0..20).gen_value(rng);
        let run = |v: Vec<u32>| {
            if v.len() >= 3 && v.iter().sum::<u32>() >= 5 {
                Err(format!("len {} sum {}", v.len(), v.iter().sum::<u32>()))
            } else {
                Ok(())
            }
        };
        let seed = 0x5EED;
        let mut rng = TestRng::from_seed(seed);
        let mut v = {
            rng.start_case();
            gen(&mut rng)
        };
        while !(v.len() >= 3 && v.iter().sum::<u32>() >= 5) {
            rng.start_case();
            v = gen(&mut rng);
        }
        let tape = rng.take_record();
        let (min_tape, _, _, _) = shrink(seed, tape, &gen, &run, "orig".into());
        let mut replay = TestRng::replaying(seed, min_tape);
        let minimal = gen(&mut replay);
        assert_eq!(minimal.len(), 3, "chunk deletion should reach 3 elements");
        assert_eq!(
            minimal.iter().sum::<u32>(),
            5,
            "element shrinking should reach the sum boundary, got {minimal:?}"
        );
    }

    #[test]
    fn shrink_handles_panicking_properties() {
        // Properties that panic (rather than return Err) shrink too.
        let gen = |rng: &mut TestRng| (0i64..4000).gen_value(rng);
        let run = |x: i64| {
            if x > 1000 {
                panic!("boom at {x}");
            }
            Ok(())
        };
        let seed = 0xF00D;
        let mut rng = TestRng::from_seed(seed);
        let mut x = {
            rng.start_case();
            gen(&mut rng)
        };
        while x <= 1000 {
            rng.start_case();
            x = gen(&mut rng);
        }
        super::install_quiet_hook();
        let (min_tape, msg, _, _) = shrink(seed, rng.take_record(), &gen, &run, "orig".into());
        let mut replay = TestRng::replaying(seed, min_tape);
        assert_eq!(gen(&mut replay), 1001);
        assert!(msg.contains("boom at 1001"), "{msg}");
    }
}
