//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`Just`], `prop::collection::vec`, the [`proptest!`]
//! macro with `#![proptest_config]`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from the real crate, by design: inputs are drawn from a
//! deterministic per-test RNG (seeded from the test's name), failures are
//! reported **without shrinking**, and `prop_assume!` skips the case rather
//! than resampling. Each failure message includes the case number **and the
//! RNG seed**, plus a ready-to-paste replay hint: re-running the test with
//! `PAMR_PROPTEST_SEED=<seed>` reproduces the exact same input sequence —
//! and the failing case — on any machine.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Environment variable overriding the per-test seed (decimal or `0x`-hex),
/// printed in every failure's replay hint.
pub const SEED_ENV: &str = "PAMR_PROPTEST_SEED";

/// Deterministic RNG driving input generation.
pub struct TestRng {
    rng: SmallRng,
    seed: u64,
}

impl TestRng {
    /// Builds the RNG for a named test; the same name always produces the
    /// same input sequence. A [`SEED_ENV`] environment variable overrides
    /// the seed — that is how a reported failure is replayed.
    pub fn from_name(name: &str) -> Self {
        let seed = match std::env::var(SEED_ENV) {
            Ok(v) => Self::parse_seed(&v)
                .unwrap_or_else(|| panic!("{SEED_ENV}={v:?} is not a decimal or 0x-hex u64")),
            Err(_) => Self::seed_from_name(name),
        };
        Self::from_seed(seed)
    }

    /// Builds the RNG from an explicit seed (what a replay does after
    /// parsing [`SEED_ENV`]).
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The name-derived default seed: FNV-1a over the test name, mixed
    /// with a fixed workspace seed.
    fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ 0x9E37_79B9_7F4A_7C15
    }

    fn parse_seed(v: &str) -> Option<u64> {
        if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            v.parse().ok()
        }
    }

    /// The seed this RNG was built from (reported on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..=hi)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Discards generated values failing `pred` (retries a bounded number
    /// of times, then panics — matching proptest's rejection exhaustion).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.gen_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn gen_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.gen_value(rng)).gen_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: too many rejections ({})", self.whence);
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive range of collection sizes.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Runner configuration, as accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Sentinel prefix distinguishing `prop_assume!` skips from failures.
pub const ASSUME_SENTINEL: &str = "\u{1}proptest-assume-rejected";

/// The names a `use proptest::prelude::*` is expected to bring in scope.
pub mod prelude {
    /// Alias letting `prop::collection::vec(..)` resolve as in real proptest.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                let strategy = ( $( $strat, )* );
                let mut ran: u32 = 0;
                let mut case: u32 = 0;
                let seed = rng.seed();
                while ran < config.cases {
                    case += 1;
                    if case > config.cases * 20 {
                        panic!(
                            "proptest {}: too many cases rejected by prop_assume! (seed {:#018x})",
                            stringify!($name),
                            seed,
                        );
                    }
                    let ( $($arg,)* ) = $crate::Strategy::gen_value(&strategy, &mut rng);
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err(e) if e.starts_with($crate::ASSUME_SENTINEL) => {}
                        Err(e) => panic!(
                            "proptest {name} failed at case {case} (seed {seed:#018x}): {e}\n\
                             replay: {env}={seed:#018x} cargo test {name}",
                            name = stringify!($name),
                            case = case,
                            seed = seed,
                            env = $crate::SEED_ENV,
                            e = e,
                        ),
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), __l, __r,
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            ));
        }
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::ASSUME_SENTINEL.to_string());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::ASSUME_SENTINEL.to_string());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        #[should_panic(expected = "replay: PAMR_PROPTEST_SEED=0x")]
        fn failing_case_reports_seed_and_replay_hint(x in 0u32..10) {
            prop_assert!(x > 100, "x = {x}");
        }

        #[test]
        fn passing_property_runs_quietly(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    /// Seed derivation and replay are tested without touching the process
    /// environment: `setenv` while sibling test threads `getenv` is a
    /// libc-level data race, so the env branch of `from_name` stays a
    /// one-line untested dispatch and everything behind it is covered via
    /// `parse_seed` / `from_seed` directly.
    #[test]
    fn seeding_is_stable_and_replayable() {
        // Name-derived seeds: stable per name, distinct across names.
        let a = TestRng::from_name("alpha");
        let b = TestRng::from_name("alpha");
        let c = TestRng::from_name("beta");
        assert_eq!(a.seed(), b.seed());
        assert_ne!(a.seed(), c.seed());
        // Hex and decimal spellings parse to the same seed; replaying that
        // seed reproduces the input stream of the originally-seeded run.
        assert_eq!(TestRng::parse_seed("0xdeadbeef"), Some(0xdead_beef));
        assert_eq!(TestRng::parse_seed("3735928559"), Some(0xdead_beef));
        assert_eq!(TestRng::parse_seed("not-a-seed"), None);
        let mut x = TestRng::from_seed(0xdead_beef);
        let mut y = TestRng::from_seed(0xdead_beef);
        assert_eq!(x.seed(), 0xdead_beef);
        let vx: Vec<usize> = (0..16).map(|_| x.below(0, 10_000)).collect();
        let vy: Vec<usize> = (0..16).map(|_| y.below(0, 10_000)).collect();
        assert_eq!(vx, vy);
        // A replayed run diverges from a differently-seeded one.
        let mut z = TestRng::from_seed(0xdead_beef + 1);
        let vz: Vec<usize> = (0..16).map(|_| z.below(0, 10_000)).collect();
        assert_ne!(vx, vz);
    }
}
