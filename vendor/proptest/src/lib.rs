//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`Just`], `prop::collection::vec`, the [`proptest!`]
//! macro with `#![proptest_config]`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from the real crate, by design: inputs are drawn from a
//! deterministic per-test RNG (seeded from the test's name), failures are
//! reported **without shrinking**, and `prop_assume!` skips the case rather
//! than resampling. Each failure message includes the case number, which —
//! together with the fixed seed — makes every failure exactly reproducible.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG driving input generation.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Builds the RNG for a named test; the same name always produces the
    /// same input sequence.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name, mixed with a fixed workspace seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ 0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        self.0.gen_range(lo..=hi)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Discards generated values failing `pred` (retries a bounded number
    /// of times, then panics — matching proptest's rejection exhaustion).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.gen_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn gen_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.gen_value(rng)).gen_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: too many rejections ({})", self.whence);
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive range of collection sizes.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Runner configuration, as accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Sentinel prefix distinguishing `prop_assume!` skips from failures.
pub const ASSUME_SENTINEL: &str = "\u{1}proptest-assume-rejected";

/// The names a `use proptest::prelude::*` is expected to bring in scope.
pub mod prelude {
    /// Alias letting `prop::collection::vec(..)` resolve as in real proptest.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                let strategy = ( $( $strat, )* );
                let mut ran: u32 = 0;
                let mut case: u32 = 0;
                while ran < config.cases {
                    case += 1;
                    if case > config.cases * 20 {
                        panic!(
                            "proptest {}: too many cases rejected by prop_assume!",
                            stringify!($name)
                        );
                    }
                    let ( $($arg,)* ) = $crate::Strategy::gen_value(&strategy, &mut rng);
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err(e) if e.starts_with($crate::ASSUME_SENTINEL) => {}
                        Err(e) => panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            case,
                            e
                        ),
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), __l, __r,
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            ));
        }
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::ASSUME_SENTINEL.to_string());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::ASSUME_SENTINEL.to_string());
        }
    };
}
