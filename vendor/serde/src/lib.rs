//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of serde the workspace needs: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums (no `#[serde(...)]` attributes),
//! routed through a simple self-describing [`Value`] data model instead of
//! serde's zero-copy visitor architecture. The companion `serde_json`
//! stand-in converts [`Value`] to and from JSON text.
//!
//! Semantics intentionally mirror real serde where the workspace observes
//! them: named structs become objects, newtype structs are transparent,
//! unit enum variants become strings, data variants are externally tagged,
//! and non-finite floats serialise to JSON `null`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The self-describing intermediate data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the image of non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the array elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short human-readable description of the value's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

// `Value` is its own data model, so (de)serialisation is the identity.
// Real serde_json offers the same through `serde_json::Value`'s blanket
// impls; the `pamr serve` wire protocol relies on it to parse requests
// whose shape is not known until the `"op"` field is inspected.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::custom("expected unsigned integer"))?,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Float(f)
                } else {
                    // Like real serde_json: ±inf and NaN have no JSON form.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

/// Total order on values, used only to make map serialisation
/// deterministic regardless of hash-iteration order.
fn cmp_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    fn num(v: &Value) -> f64 {
        match v {
            Value::Int(n) => *n as f64,
            Value::UInt(n) => *n as f64,
            Value::Float(f) => *f,
            _ => 0.0,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (x, y) if rank(x) == 2 && rank(y) == 2 => {
            num(x).partial_cmp(&num(y)).unwrap_or(Ordering::Equal)
        }
        (Value::Array(x), Value::Array(y)) => x
            .iter()
            .zip(y)
            .map(|(u, v)| cmp_values(u, v))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or_else(|| x.len().cmp(&y.len())),
        (Value::Object(x), Value::Object(y)) => x
            .iter()
            .zip(y)
            .map(|((ka, va), (kb, vb))| ka.cmp(kb).then_with(|| cmp_values(va, vb)))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or_else(|| x.len().cmp(&y.len())),
        (x, y) => rank(x).cmp(&rank(y)),
    }
}

/// Shared map encoding: string-keyed maps become objects (as in real
/// serde_json); other key types become sorted arrays of `[key, value]`
/// pairs (real serde_json would reject such keys at runtime — the
/// workspace only round-trips string-keyed maps, so the array form merely
/// keeps `#[derive]` on map-carrying types compiling and self-consistent).
fn map_to_value(entries: impl Iterator<Item = (Value, Value)>) -> Value {
    let mut pairs: Vec<(Value, Value)> = entries.collect();
    pairs.sort_by(|a, b| cmp_values(&a.0, &b.0));
    if pairs.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| match k {
                    Value::Str(s) => (s, v),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Object(entries) => entries
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect(),
        Value::Array(items) => items
            .iter()
            .map(|pair| {
                let kv = pair
                    .as_array()
                    .ok_or_else(|| Error::custom("expected [key, value] pair in map array"))?;
                if kv.len() != 2 {
                    return Err(Error::custom("expected [key, value] pair in map array"));
                }
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect(),
        other => Err(Error::custom(format!(
            "expected map, found {}",
            other.kind()
        ))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter().map(|(k, v)| (k.to_value(), v.to_value())))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter().map(|(k, v)| (k.to_value(), v.to_value())))
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, found {}", v.kind())))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
