//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the API surface the workspace's benches use — groups,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `criterion_group!` /
//! `criterion_main!` — backed by a simple median-of-samples wall-clock
//! measurement printed to stdout. No statistics, plots or history: the
//! numbers are indicative, which is all the ROADMAP's shape-comparisons
//! need until the real criterion can be restored.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for API compatibility; command-line filtering is not
    /// implemented in the offline stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.to_string();
        run_benchmark(self, &label, f);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput (printed, not analysed).
    pub fn throughput(&mut self, t: Throughput) {
        match t {
            Throughput::Elements(n) => {
                println!("{}: throughput {} elements/iter", self.name, n)
            }
            Throughput::Bytes(n) => println!("{}: throughput {} bytes/iter", self.name, n),
        }
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &label, |b| f(b, input));
    }

    /// Benchmarks `f` without an input parameter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(self.criterion, &label, |b| f(b));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F>(config: &Criterion, label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        budget: config.warm_up_time,
        warmup: true,
    };
    f(&mut b); // warm-up pass
    b.samples.clear();
    b.warmup = false;
    b.budget = config.measurement_time;
    // pamr-lint: allow(V001, reason = "benchmark harness: measuring wall-clock time is the crate's whole purpose, and its output is ratio-gated, never byte-compared")
    let deadline = Instant::now() + config.measurement_time;
    for _ in 0..config.sample_size {
        f(&mut b);
        // pamr-lint: allow(V001, reason = "benchmark harness deadline check (wall-clock by design)")
        if Instant::now() >= deadline {
            break;
        }
    }
    if let Some(med) = b.median() {
        println!("{label}: median {med:?} over {} samples", b.samples.len());
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    warmup: bool,
}

impl Bencher {
    /// Times one execution of `f` (plus enough repeats to be measurable).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // pamr-lint: allow(V001, reason = "benchmark harness sample timer (wall-clock by design)")
        let start = Instant::now();
        std::hint::black_box(f());
        self.samples.push(start.elapsed());
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort();
        Some(s[s.len() / 2])
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark named `name` at sweep parameter `param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{param}"),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-iteration work declaration, for throughput reporting.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Re-export of [`std::hint::black_box`] under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, as the real criterion does.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, as the real criterion does.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
