//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the `into_par_iter / map / fold / reduce / collect` surface the
//! workspace uses, executed **sequentially**. Rayon's contract (associative
//! reduction with an identity, order-independent folds) means a sequential
//! execution is an admissible schedule: results are bit-identical to a
//! single-threaded rayon run, so every seeded experiment stays reproducible.
//! Swapping the real rayon back in is a one-line change in `Cargo.toml`.

#![forbid(unsafe_code)]

/// Sequential stand-in for rayon's parallel iterators.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Maps each item, as `ParallelIterator::map`.
    pub fn map<R, F>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    /// Filters items, as `ParallelIterator::filter`.
    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter {
            inner: self.inner.filter(f),
        }
    }

    /// Folds all items into per-"thread" accumulators. Sequentially there is
    /// one accumulator, so this yields a single folded value.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: FnOnce() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter {
            inner: std::iter::once(self.inner.fold(identity(), fold_op)),
        }
    }

    /// Reduces all items with `op`, starting from `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: FnOnce() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    /// Sums the items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.inner.sum()
    }

    /// Collects into any `FromIterator` collection.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.inner.collect()
    }
}

/// Conversion into a (sequential) parallel iterator.
pub trait IntoParallelIterator {
    /// The underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The item type.
    type Item;

    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Iter = std::ops::Range<T>;
    type Item = T;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    type Item = T;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// Borrowing conversion, as rayon's `par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// The underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The item type.
    type Item: 'a;

    /// Returns a [`ParIter`] over references.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.as_slice().iter(),
        }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}
