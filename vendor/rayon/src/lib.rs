//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate —
//! now a real multi-threaded, deterministic chunked work-pool.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the `into_par_iter / map / filter / fold / reduce / sum /
//! collect` surface the workspace uses. Unlike the original sequential
//! stand-in, execution is genuinely parallel: the input is split into
//! fixed-size chunks, worker threads (`std::thread::scope`) pull chunks from
//! a shared queue, and per-chunk results are combined **in chunk-index
//! order**.
//!
//! # Determinism
//!
//! Chunk boundaries depend only on the input length (never on the thread
//! count or scheduling), and the final combine walks chunk results in index
//! order on the calling thread. Every reduction is therefore **bit-identical
//! at any thread count** — including floating-point accumulations, which are
//! sensitive to association order. Seeded experiments stay exactly
//! reproducible whether run with `RAYON_NUM_THREADS=1` or 64.
//!
//! # Thread count
//!
//! Priority order: [`set_num_threads`] override (used by benchmarks to
//! compare sequential and parallel timings in-process), then the
//! `RAYON_NUM_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]. When one thread is selected the
//! pool is bypassed entirely and chunks run inline on the caller.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Items per chunk. Fixed (not derived from the thread count) so that chunk
/// boundaries — and therefore floating-point combine order — are identical
/// no matter how many workers execute the chunks.
const CHUNK: usize = 8;

/// Programmatic thread-count override; 0 means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached `RAYON_NUM_THREADS` value; 0 means "unset or invalid".
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Overrides the pool size for subsequent parallel calls (`0` clears the
/// override). Benchmarks use this to time 1-thread and N-thread executions
/// of the same campaign in one process. Results never depend on this value;
/// only wall-clock does.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The number of worker threads the next parallel call will use.
pub fn current_num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    let env = *ENV_THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0)
    });
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A splittable, sequentially-foldable source of items — the engine behind
/// [`ParIter`]. Implemented by ranges, vectors, slices and the `map` /
/// `filter` adapters.
pub trait Producer: Send + Sized {
    /// The item type.
    type Item: Send;

    /// Number of items still to produce (an upper bound for `filter`).
    fn len(&self) -> usize;

    /// True when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off the first `n` items, returning `(head, tail)`.
    fn split_at(self, n: usize) -> (Self, Self);

    /// Folds this producer's items sequentially, in order.
    fn fold_with<T, F: FnMut(T, Self::Item) -> T>(self, init: T, f: F) -> T;
}

/// Splits `producer` into fixed-size chunks, evaluates `eval` on every chunk
/// on the pool, and returns the per-chunk results **in chunk order**.
fn run_chunks<P, T, E>(producer: P, eval: E) -> Vec<T>
where
    P: Producer,
    T: Send,
    E: Fn(P) -> T + Sync,
{
    let len = producer.len();
    if len == 0 {
        return Vec::new();
    }
    let mut chunks = Vec::with_capacity(len.div_ceil(CHUNK));
    let mut rest = producer;
    while rest.len() > CHUNK {
        let (head, tail) = rest.split_at(CHUNK);
        chunks.push(head);
        rest = tail;
    }
    chunks.push(rest);

    let threads = current_num_threads().min(chunks.len());
    if threads <= 1 {
        // Inline fast path: no pool, same chunk boundaries, same results.
        return chunks.into_iter().map(eval).collect();
    }

    // Shared chunk queue (taken by index) and per-chunk result slots; the
    // atomic cursor hands each worker the next unclaimed chunk, so faster
    // workers steal more work while results stay index-addressed.
    let queue: Vec<Mutex<Option<P>>> = chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..queue.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= queue.len() {
                    break;
                }
                let chunk = queue[i]
                    .lock()
                    .expect("chunk queue poisoned")
                    .take()
                    .expect("chunk taken twice");
                let out = eval(chunk);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker died before storing its chunk result")
        })
        .collect()
}

/// Parallel iterator over a [`Producer`].
pub struct ParIter<P> {
    producer: P,
}

impl<P: Producer> ParIter<P> {
    /// Maps each item, as `ParallelIterator::map`.
    pub fn map<R, F>(self, f: F) -> ParIter<Map<P, F>>
    where
        R: Send,
        F: Fn(P::Item) -> R + Send + Sync,
    {
        ParIter {
            producer: Map {
                base: self.producer,
                f: Arc::new(f),
            },
        }
    }

    /// Filters items, as `ParallelIterator::filter`.
    pub fn filter<F>(self, f: F) -> ParIter<Filter<P, F>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        ParIter {
            producer: Filter {
                base: self.producer,
                f: Arc::new(f),
            },
        }
    }

    /// Folds items into per-chunk accumulators, yielding one folded value
    /// per chunk (in chunk order). Combine them with [`ParIter::reduce`].
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<VecProducer<T>>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync,
        F: Fn(T, P::Item) -> T + Send + Sync,
    {
        let items = run_chunks(self.producer, |chunk: P| {
            chunk.fold_with(identity(), &fold_op)
        });
        ParIter {
            producer: VecProducer { items },
        }
    }

    /// Reduces all items with `op`, starting each chunk from `identity()`
    /// and combining chunk results in chunk order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        let parts = run_chunks(self.producer, |chunk: P| chunk.fold_with(identity(), &op));
        parts.into_iter().fold(identity(), &op)
    }

    /// Sums the items (chunk partial sums combined in chunk order).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        let parts = run_chunks(self.producer, |chunk: P| {
            let items = chunk.fold_with(Vec::new(), |mut v, x| {
                v.push(x);
                v
            });
            items.into_iter().sum::<S>()
        });
        parts.into_iter().sum()
    }

    /// Collects into any `FromIterator` collection, preserving input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<P::Item>,
    {
        let parts = run_chunks(self.producer, |chunk: P| {
            chunk.fold_with(Vec::new(), |mut v, x| {
                v.push(x);
                v
            })
        });
        parts.into_iter().flatten().collect()
    }
}

/// Producer of the items of a `Vec` (also backs [`ParIter::fold`] output).
pub struct VecProducer<T> {
    items: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn split_at(mut self, n: usize) -> (Self, Self) {
        let tail = self.items.split_off(n.min(self.items.len()));
        (self, VecProducer { items: tail })
    }

    fn fold_with<A, F: FnMut(A, T) -> A>(self, init: A, f: F) -> A {
        self.items.into_iter().fold(init, f)
    }
}

/// Producer over references into a slice.
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, n: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at(n.min(self.slice.len()));
        (SliceProducer { slice: head }, SliceProducer { slice: tail })
    }

    fn fold_with<A, F: FnMut(A, &'a T) -> A>(self, init: A, f: F) -> A {
        self.slice.iter().fold(init, f)
    }
}

/// Producer over an integer range.
pub struct RangeProducer<T> {
    start: T,
    end: T,
}

macro_rules! impl_range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                }
            }

            fn split_at(self, n: usize) -> (Self, Self) {
                let mid = self
                    .start
                    .saturating_add(n as $t)
                    .min(self.end);
                (
                    RangeProducer { start: self.start, end: mid },
                    RangeProducer { start: mid, end: self.end },
                )
            }

            fn fold_with<A, F: FnMut(A, $t) -> A>(self, init: A, f: F) -> A {
                (self.start..self.end).fold(init, f)
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Producer = RangeProducer<$t>;
            type Item = $t;

            fn into_par_iter(self) -> ParIter<RangeProducer<$t>> {
                ParIter {
                    producer: RangeProducer { start: self.start, end: self.end },
                }
            }
        }
    )*};
}

impl_range_producer!(usize, u64, u32);

/// Producer returned by [`ParIter::map`].
pub struct Map<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, R, F> Producer for Map<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Send + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, n: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(n);
        (
            Map {
                base: head,
                f: Arc::clone(&self.f),
            },
            Map {
                base: tail,
                f: self.f,
            },
        )
    }

    fn fold_with<A, G: FnMut(A, R) -> A>(self, init: A, mut g: G) -> A {
        let f = &*self.f;
        self.base.fold_with(init, |acc, x| g(acc, f(x)))
    }
}

/// Producer returned by [`ParIter::filter`].
pub struct Filter<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, F> Producer for Filter<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;

    /// Upper bound (chunk boundaries still depend only on the *input*
    /// length, keeping combine order deterministic).
    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, n: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(n);
        (
            Filter {
                base: head,
                f: Arc::clone(&self.f),
            },
            Filter {
                base: tail,
                f: self.f,
            },
        )
    }

    fn fold_with<A, G: FnMut(A, P::Item) -> A>(self, init: A, mut g: G) -> A {
        let f = &*self.f;
        self.base
            .fold_with(init, |acc, x| if f(&x) { g(acc, x) } else { acc })
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The producer driving the iteration.
    type Producer: Producer<Item = Self::Item>;
    /// The item type.
    type Item: Send;

    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Producer>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Producer = VecProducer<T>;
    type Item = T;

    fn into_par_iter(self) -> ParIter<VecProducer<T>> {
        ParIter {
            producer: VecProducer { items: self },
        }
    }
}

/// Borrowing conversion, as rayon's `par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// The producer driving the iteration.
    type Producer: Producer<Item = Self::Item>;
    /// The item type.
    type Item: Send + 'a;

    /// Returns a [`ParIter`] over references.
    fn par_iter(&'a self) -> ParIter<Self::Producer>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Producer = SliceProducer<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<SliceProducer<'a, T>> {
        ParIter {
            producer: SliceProducer { slice: self },
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Producer = SliceProducer<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<SliceProducer<'a, T>> {
        ParIter {
            producer: SliceProducer {
                slice: self.as_slice(),
            },
        }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    /// Runs `f` under an explicit thread-count override, restoring the
    /// default afterwards. Serialised because the override is global.
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_num_threads(n);
        let out = f();
        set_num_threads(0);
        out
    }

    #[test]
    fn collect_preserves_order_at_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let v: Vec<usize> = with_threads(threads, || {
                (0..100usize).into_par_iter().map(|i| i * 2).collect()
            });
            assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn float_reduction_bit_identical_across_thread_counts() {
        // Non-associative floating-point accumulation: identical results
        // require identical chunking and combine order, not luck.
        let run = |threads| {
            with_threads(threads, || {
                (0..1000usize)
                    .into_par_iter()
                    .map(|i| 1.0 / (i as f64 + 1.0))
                    .fold(|| 0.0f64, |a, x| a + x)
                    .reduce(|| 0.0, |a, b| a + b)
            })
        };
        let one = run(1);
        for threads in [2, 4, 7, 16] {
            assert_eq!(one.to_bits(), run(threads).to_bits());
        }
    }

    #[test]
    fn filter_and_sum() {
        let s: usize = with_threads(4, || {
            (0..100usize).into_par_iter().filter(|i| i % 3 == 0).sum()
        });
        assert_eq!(s, (0..100).filter(|i| i % 3 == 0).sum::<usize>());
    }

    #[test]
    fn par_iter_over_slices_and_vecs() {
        let data: Vec<u64> = (0..50).collect();
        let doubled: Vec<u64> = with_threads(3, || data.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled.len(), 50);
        assert_eq!(doubled[49], 98);
        let s: u64 = with_threads(2, || data.as_slice().par_iter().map(|&x| x).sum());
        assert_eq!(s, 49 * 50 / 2);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let v: Vec<usize> = (0..0usize).into_par_iter().collect();
        assert!(v.is_empty());
        let r = (0..1usize)
            .into_par_iter()
            .reduce(|| 7usize, |a, b| a.max(b));
        assert_eq!(r, 7); // max(identity, 0) = 7
        let s: usize = (5..6usize).into_par_iter().sum();
        assert_eq!(s, 5);
    }

    #[test]
    fn vec_into_par_iter_reduce() {
        let v: Vec<usize> = (1..=100).collect();
        let total = with_threads(5, || v.into_par_iter().reduce(|| 0, |a, b| a + b));
        assert_eq!(total, 5050);
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(current_num_threads() >= 1);
        with_threads(3, || assert_eq!(current_num_threads(), 3));
    }
}
