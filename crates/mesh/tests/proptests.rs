//! Property-based tests for the mesh substrate.

use pamr_mesh::{Band, Coord, LoadMap, Mesh, Path, Quadrant};
use proptest::prelude::*;

/// Strategy: a mesh (≤ 6×6) and two cores on it.
fn mesh_and_pair() -> impl Strategy<Value = (Mesh, Coord, Coord)> {
    (1usize..=6, 1usize..=6)
        .prop_flat_map(|(p, q)| ((Just(p), Just(q)), (0..p, 0..q), (0..p, 0..q)))
        .prop_map(|((p, q), (au, av), (bu, bv))| {
            (Mesh::new(p, q), Coord::new(au, av), Coord::new(bu, bv))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn xy_and_yx_are_manhattan((mesh, a, b) in mesh_and_pair()) {
        for p in [Path::xy(a, b), Path::yx(a, b)] {
            prop_assert!(p.is_manhattan(&mesh));
            prop_assert_eq!(p.len(), mesh.manhattan(a, b));
            prop_assert_eq!(p.snk(), b);
            prop_assert!(p.bends() <= 1);
        }
    }

    #[test]
    fn enumeration_matches_count_and_is_unique((mesh, a, b) in mesh_and_pair()) {
        // Keep the blow-up bounded.
        prop_assume!(Path::count(a, b) <= 256);
        let all = Path::enumerate_all(&mesh, a, b);
        prop_assert_eq!(all.len() as u128, Path::count(a, b));
        let set: std::collections::HashSet<Vec<_>> =
            all.iter().map(|p| p.moves().to_vec()).collect();
        prop_assert_eq!(set.len(), all.len());
        for p in &all {
            prop_assert!(p.is_manhattan(&mesh));
            prop_assert_eq!(p.snk(), b);
        }
    }

    #[test]
    fn two_bend_paths_are_a_subset_of_all_paths((mesh, a, b) in mesh_and_pair()) {
        prop_assume!(a != b);
        let tb = Path::two_bend(&mesh, a, b);
        let du = a.u.abs_diff(b.u);
        let dv = a.v.abs_diff(b.v);
        if du == 0 || dv == 0 {
            prop_assert_eq!(tb.len(), 1);
        } else {
            prop_assert_eq!(tb.len(), du + dv);
        }
        for p in &tb {
            prop_assert!(p.bends() <= 2);
            prop_assert!(p.is_manhattan(&mesh));
        }
    }

    #[test]
    fn band_groups_partition_every_path((mesh, a, b) in mesh_and_pair()) {
        prop_assume!(a != b && Path::count(a, b) <= 128);
        let band = Band::new(&mesh, a, b);
        prop_assert_eq!(band.len(), mesh.manhattan(a, b));
        for path in Path::enumerate_all(&mesh, a, b) {
            for (t, l) in path.links(&mesh).enumerate() {
                prop_assert!(band.group(t).contains(&l));
            }
        }
    }

    #[test]
    fn quadrant_is_consistent_with_moves((mesh, a, b) in mesh_and_pair()) {
        prop_assume!(a != b);
        let d = Quadrant::of(a, b);
        let p = Path::xy(a, b);
        for s in p.moves() {
            prop_assert!(d.allows(*s), "XY move {s} outside quadrant {d}");
        }
        let _ = mesh;
    }

    #[test]
    fn loadmap_add_remove_is_identity((mesh, a, b) in mesh_and_pair(), w in 1.0f64..1e6) {
        let mut lm = LoadMap::new(&mesh);
        let p = Path::xy(a, b);
        lm.add_path(&mesh, &p, w);
        prop_assert!((lm.total() - w * p.len() as f64).abs() < 1e-9 * w.max(1.0));
        lm.add_path(&mesh, &p, -w);
        prop_assert_eq!(lm.active_links(), 0);
    }

    #[test]
    fn diag_indices_advance_by_one_along_any_manhattan_path((mesh, a, b) in mesh_and_pair()) {
        prop_assume!(a != b);
        let d = Quadrant::of(a, b);
        let p = Path::yx(a, b);
        let cores: Vec<Coord> = p.cores().collect();
        for w in cores.windows(2) {
            prop_assert_eq!(
                mesh.diag_index(w[1], d),
                mesh.diag_index(w[0], d) + 1
            );
        }
    }
}
