//! Dense per-link load accounting.

use crate::link::LinkId;
use crate::path::Path;
use crate::Mesh;
use serde::{Deserialize, Serialize};

/// Per-link traffic accumulator, indexed by [`LinkId`] in O(1).
///
/// Loads are in the same unit as communication weights (bytes/s in the
/// paper's model, Mb/s in the simulation campaign). The paper's bandwidth
/// constraint is `Σ δ_i,j ≤ f · BW ≤ BW` per link, i.e. `load ≤ BW`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadMap {
    loads: Vec<f64>,
}

impl Default for LoadMap {
    /// An empty load map, to be sized with [`LoadMap::fit`] before use.
    fn default() -> Self {
        LoadMap { loads: Vec::new() }
    }
}

impl LoadMap {
    /// An all-zero load map for `mesh`.
    pub fn new(mesh: &Mesh) -> Self {
        LoadMap {
            loads: vec![0.0; mesh.num_link_slots()],
        }
    }

    /// Resizes to `mesh`'s link slots and zeroes every load, keeping the
    /// allocation when the capacity already suffices (scratch-buffer reuse).
    pub fn fit(&mut self, mesh: &Mesh) {
        self.loads.clear();
        self.loads.resize(mesh.num_link_slots(), 0.0);
    }

    /// Load currently on `link`.
    #[inline]
    pub fn get(&self, link: LinkId) -> f64 {
        self.loads[link.0]
    }

    /// Adds `amount` (may be negative) to `link`, clamping tiny negative
    /// residue from floating-point cancellation back to zero.
    #[inline]
    pub fn add(&mut self, link: LinkId, amount: f64) {
        let l = &mut self.loads[link.0];
        *l += amount;
        if *l < 0.0 {
            debug_assert!(*l > -1e-6, "load went significantly negative: {l}");
            *l = 0.0;
        }
    }

    /// Overwrites `link`'s load with `value`. Unlike [`LoadMap::add`] there
    /// is no cancellation residue: callers that re-derive a link's exact
    /// load (e.g. the routing session summing over its crossing index) can
    /// pin the map bit-for-bit to the recomputed value.
    #[inline]
    pub fn set(&mut self, link: LinkId, value: f64) {
        debug_assert!(value >= 0.0, "link loads are non-negative, got {value}");
        self.loads[link.0] = value;
    }

    /// Adds `amount` along every link of `path`.
    pub fn add_path(&mut self, mesh: &Mesh, path: &Path, amount: f64) {
        for l in path.links(mesh) {
            self.add(l, amount);
        }
    }

    /// Largest single-link load.
    pub fn max_load(&self) -> f64 {
        self.loads.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of all link loads (total traffic × hops).
    pub fn total(&self) -> f64 {
        self.loads.iter().sum()
    }

    /// Number of links carrying strictly positive load.
    pub fn active_links(&self) -> usize {
        self.loads.iter().filter(|&&l| l > 0.0).count()
    }

    /// Iterates over `(link, load)` for links with strictly positive load.
    pub fn iter_active(&self) -> impl Iterator<Item = (LinkId, f64)> + '_ {
        self.loads
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0.0)
            .map(|(i, &l)| (LinkId(i), l))
    }

    /// True iff every link load is at most `capacity` (+ `eps` slack for
    /// floating-point accumulation).
    pub fn within_capacity(&self, capacity: f64, eps: f64) -> bool {
        self.loads.iter().all(|&l| l <= capacity + eps)
    }

    /// Resets every load to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.loads.iter_mut().for_each(|l| *l = 0.0);
    }

    /// Element-wise sum with another load map of the same mesh.
    pub fn merge(&mut self, other: &LoadMap) {
        assert_eq!(self.loads.len(), other.loads.len());
        for (a, b) in self.loads.iter_mut().zip(&other.loads) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coord;

    #[test]
    fn add_and_get() {
        let mesh = Mesh::new(3, 3);
        let mut lm = LoadMap::new(&mesh);
        let l = mesh.link_id(Coord::new(0, 0), crate::Step::Right).unwrap();
        lm.add(l, 2.5);
        lm.add(l, 1.5);
        assert_eq!(lm.get(l), 4.0);
        assert_eq!(lm.max_load(), 4.0);
        assert_eq!(lm.active_links(), 1);
        lm.add(l, -4.0);
        assert_eq!(lm.get(l), 0.0);
        assert_eq!(lm.active_links(), 0);
    }

    #[test]
    fn add_path_hits_every_link_once() {
        let mesh = Mesh::new(4, 4);
        let mut lm = LoadMap::new(&mesh);
        let p = Path::xy(Coord::new(0, 0), Coord::new(3, 3));
        lm.add_path(&mesh, &p, 1.0);
        assert_eq!(lm.active_links(), 6);
        assert!((lm.total() - 6.0).abs() < 1e-12);
        for l in p.links(&mesh) {
            assert_eq!(lm.get(l), 1.0);
        }
    }

    #[test]
    fn capacity_check() {
        let mesh = Mesh::new(2, 2);
        let mut lm = LoadMap::new(&mesh);
        let l = mesh.link_id(Coord::new(0, 0), crate::Step::Down).unwrap();
        lm.add(l, 3.0);
        assert!(lm.within_capacity(3.0, 1e-9));
        assert!(!lm.within_capacity(2.9, 1e-9));
    }

    #[test]
    fn merge_and_clear() {
        let mesh = Mesh::new(3, 3);
        let mut a = LoadMap::new(&mesh);
        let mut b = LoadMap::new(&mesh);
        let p = Path::yx(Coord::new(0, 0), Coord::new(2, 2));
        a.add_path(&mesh, &p, 1.0);
        b.add_path(&mesh, &p, 2.0);
        a.merge(&b);
        assert!((a.total() - 12.0).abs() < 1e-12);
        a.clear();
        assert_eq!(a.total(), 0.0);
        assert_eq!(a.active_links(), 0);
    }

    #[test]
    fn iter_active_matches() {
        let mesh = Mesh::new(3, 3);
        let mut lm = LoadMap::new(&mesh);
        let p = Path::xy(Coord::new(0, 0), Coord::new(1, 2));
        lm.add_path(&mesh, &p, 1.5);
        let v: Vec<_> = lm.iter_active().collect();
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|&(_, l)| l == 1.5));
    }
}
