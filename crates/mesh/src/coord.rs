//! Core coordinates and axis-aligned rectangles.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Coordinate of a core on the mesh: row `u` (grows downwards) and column
/// `v` (grows rightwards), both 0-based.
///
/// The paper's 1-based core `C_{u,v}` is `Coord::new(u - 1, v - 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Row index, `0 ≤ u < p`.
    pub u: usize,
    /// Column index, `0 ≤ v < q`.
    pub v: usize,
}

impl Coord {
    /// Creates a coordinate from a `(row, column)` pair.
    #[inline]
    pub const fn new(u: usize, v: usize) -> Self {
        Coord { u, v }
    }

    /// Convenience constructor from the paper's **1-based** `(u, v)` pair.
    ///
    /// # Panics
    /// Panics if either index is zero.
    pub fn paper(u: usize, v: usize) -> Self {
        assert!(u >= 1 && v >= 1, "paper coordinates are 1-based");
        Coord::new(u - 1, v - 1)
    }

    /// Manhattan distance to `other`.
    #[inline]
    pub fn manhattan(&self, other: Coord) -> usize {
        self.u.abs_diff(other.u) + self.v.abs_diff(other.v)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.u, self.v)
    }
}

impl From<(usize, usize)> for Coord {
    fn from((u, v): (usize, usize)) -> Self {
        Coord::new(u, v)
    }
}

/// An axis-aligned rectangle of cores (inclusive on both ends): the bounding
/// box of a communication, which contains exactly the cores reachable by its
/// Manhattan paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Smallest row index.
    pub u_min: usize,
    /// Largest row index (inclusive).
    pub u_max: usize,
    /// Smallest column index.
    pub v_min: usize,
    /// Largest column index (inclusive).
    pub v_max: usize,
}

impl Rect {
    /// Bounding box spanned by two corners (in any relative position).
    pub fn spanning(a: Coord, b: Coord) -> Self {
        Rect {
            u_min: a.u.min(b.u),
            u_max: a.u.max(b.u),
            v_min: a.v.min(b.v),
            v_max: a.v.max(b.v),
        }
    }

    /// True iff `c` lies inside the rectangle.
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        (self.u_min..=self.u_max).contains(&c.u) && (self.v_min..=self.v_max).contains(&c.v)
    }

    /// Number of rows spanned.
    #[inline]
    pub fn height(&self) -> usize {
        self.u_max - self.u_min + 1
    }

    /// Number of columns spanned.
    #[inline]
    pub fn width(&self) -> usize {
        self.v_max - self.v_min + 1
    }

    /// Number of cores inside.
    #[inline]
    pub fn area(&self) -> usize {
        self.height() * self.width()
    }

    /// Iterates over all cores inside, row-major.
    pub fn cores(&self) -> impl Iterator<Item = Coord> + '_ {
        let r = *self;
        (r.u_min..=r.u_max).flat_map(move |u| (r.v_min..=r.v_max).map(move |v| Coord::new(u, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_coords_are_one_based() {
        assert_eq!(Coord::paper(1, 1), Coord::new(0, 0));
        assert_eq!(Coord::paper(2, 3), Coord::new(1, 2));
    }

    #[test]
    #[should_panic]
    fn paper_coord_zero_panics() {
        let _ = Coord::paper(0, 1);
    }

    #[test]
    fn manhattan_symmetry() {
        let a = Coord::new(2, 7);
        let b = Coord::new(5, 3);
        assert_eq!(a.manhattan(b), 7);
        assert_eq!(b.manhattan(a), 7);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn rect_spanning_any_corner_order() {
        let r1 = Rect::spanning(Coord::new(1, 5), Coord::new(3, 2));
        let r2 = Rect::spanning(Coord::new(3, 2), Coord::new(1, 5));
        assert_eq!(r1, r2);
        assert_eq!(r1.height(), 3);
        assert_eq!(r1.width(), 4);
        assert_eq!(r1.area(), 12);
        assert_eq!(r1.cores().count(), 12);
        assert!(r1.contains(Coord::new(2, 3)));
        assert!(!r1.contains(Coord::new(0, 3)));
    }

    #[test]
    fn degenerate_rect() {
        let r = Rect::spanning(Coord::new(2, 2), Coord::new(2, 2));
        assert_eq!(r.area(), 1);
        assert_eq!(r.cores().count(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(Coord::new(3, 4).to_string(), "(3,4)");
    }
}
