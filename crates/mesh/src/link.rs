//! Unit moves ([`Step`]) and dense link identifiers ([`LinkId`]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the four unit moves on the mesh.
///
/// The discriminant doubles as the port slot in the dense [`LinkId`]
/// encoding: `LinkId = core_index * 4 + step as usize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(usize)]
pub enum Step {
    /// Towards larger row index (`u + 1`).
    Down = 0,
    /// Towards smaller row index (`u − 1`).
    Up = 1,
    /// Towards larger column index (`v + 1`).
    Right = 2,
    /// Towards smaller column index (`v − 1`).
    Left = 3,
}

impl Step {
    /// All four steps, in discriminant order.
    pub const ALL: [Step; 4] = [Step::Down, Step::Up, Step::Right, Step::Left];

    /// Step with discriminant `i` (inverse of `as usize`).
    ///
    /// # Panics
    /// Panics if `i ≥ 4`.
    #[inline]
    pub fn from_index(i: usize) -> Step {
        match i {
            0 => Step::Down,
            1 => Step::Up,
            2 => Step::Right,
            3 => Step::Left,
            _ => panic!("invalid step index {i}"),
        }
    }

    /// True for `Down`/`Up`.
    #[inline]
    pub fn is_vertical(&self) -> bool {
        matches!(self, Step::Down | Step::Up)
    }

    /// True for `Right`/`Left`.
    #[inline]
    pub fn is_horizontal(&self) -> bool {
        !self.is_vertical()
    }

    /// The step going the other way along the same axis.
    #[inline]
    pub fn opposite(&self) -> Step {
        match self {
            Step::Down => Step::Up,
            Step::Up => Step::Down,
            Step::Right => Step::Left,
            Step::Left => Step::Right,
        }
    }

    /// Signed `(du, dv)` displacement of this step.
    #[inline]
    pub fn delta(&self) -> (isize, isize) {
        match self {
            Step::Down => (1, 0),
            Step::Up => (-1, 0),
            Step::Right => (0, 1),
            Step::Left => (0, -1),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Step::Down => 'D',
            Step::Up => 'U',
            Step::Right => 'R',
            Step::Left => 'L',
        };
        write!(f, "{c}")
    }
}

/// Dense identifier of a unidirectional link.
///
/// Encodes `(source core, outgoing direction)` as
/// `core_index * 4 + step as usize`, so a `Vec` of length
/// [`crate::Mesh::num_link_slots`] indexes any link in O(1). Slots whose
/// direction leaves the mesh are never produced by
/// [`crate::Mesh::link_id`] and simply stay unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl LinkId {
    /// The raw dense index.
    #[inline]
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_roundtrip() {
        for s in Step::ALL {
            assert_eq!(Step::from_index(s as usize), s);
        }
    }

    #[test]
    fn opposites() {
        for s in Step::ALL {
            assert_ne!(s, s.opposite());
            assert_eq!(s.opposite().opposite(), s);
            assert_eq!(s.is_vertical(), s.opposite().is_vertical());
        }
    }

    #[test]
    fn axis_predicates() {
        assert!(Step::Down.is_vertical());
        assert!(Step::Up.is_vertical());
        assert!(Step::Right.is_horizontal());
        assert!(Step::Left.is_horizontal());
    }

    #[test]
    fn deltas_sum_to_zero_with_opposite() {
        for s in Step::ALL {
            let (du, dv) = s.delta();
            let (ou, ov) = s.opposite().delta();
            assert_eq!(du + ou, 0);
            assert_eq!(dv + ov, 0);
        }
    }

    #[test]
    #[should_panic]
    fn bad_step_index_panics() {
        let _ = Step::from_index(4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Step::Down.to_string(), "D");
        assert_eq!(LinkId(17).to_string(), "L17");
    }
}
