//! # pamr-mesh — CMP mesh topology substrate
//!
//! This crate models the platform of the paper *Power-aware Manhattan routing
//! on chip multiprocessors* (Benoit, Melhem, Renaud-Goud, Robert; INRIA
//! RR-7752): a `p × q` rectangular grid of homogeneous cores with **two
//! unidirectional links** between each pair of neighbouring cores.
//!
//! It provides:
//!
//! * [`Coord`] / [`Mesh`] — core coordinates and the grid itself;
//! * [`Step`] / [`LinkId`] — unit moves and dense link identifiers enabling
//!   O(1) per-link bookkeeping;
//! * [`Quadrant`] and diagonals ([`Mesh::diag_index`]) — the four diagonal
//!   families `D_k^{(d)}` of Section 3.3 of the paper;
//! * [`Path`] — Manhattan (shortest) paths, their enumeration
//!   ([`Path::enumerate_all`], counting per Lemma 1) and the two-bend subset
//!   used by the TB heuristic;
//! * [`Band`] — the "staircase band" of links usable by at least one
//!   Manhattan path of a given communication, with the per-diagonal link
//!   groups used by the ideal fractional sharing of Figure 3;
//! * [`LoadMap`] — a dense per-link load accumulator.
//!
//! ## Coordinate convention
//!
//! The paper indexes cores `C_{u,v}` with `1 ≤ u ≤ p` (row) and `1 ≤ v ≤ q`
//! (column). This crate is 0-based: `u ∈ [0, p)`, `v ∈ [0, q)`; `u` grows
//! *downwards*, `v` grows *rightwards*. Direction/quadrant numbering follows
//! the paper exactly (d = 1 is down-right).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod band;
pub mod coord;
pub mod diag;
pub mod link;
pub mod load;
pub mod path;

pub use band::Band;
pub use coord::{Coord, Rect};
pub use diag::Quadrant;
pub use link::{LinkId, Step};
pub use load::LoadMap;
pub use path::Path;

use serde::{Deserialize, Serialize};

/// A `p × q` rectangular mesh of cores.
///
/// `p` is the number of rows, `q` the number of columns. Each pair of
/// neighbouring cores is connected by two unidirectional links (one per
/// direction), as in Section 3.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh {
    p: usize,
    q: usize,
}

impl Mesh {
    /// Creates a `p × q` mesh.
    ///
    /// # Panics
    /// Panics if `p == 0` or `q == 0`.
    pub fn new(p: usize, q: usize) -> Self {
        assert!(p >= 1 && q >= 1, "mesh dimensions must be positive");
        Mesh { p, q }
    }

    /// Number of rows `p`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.p
    }

    /// Number of columns `q`.
    #[inline]
    pub fn cols(&self) -> usize {
        self.q
    }

    /// Total number of cores, `p · q`.
    #[inline]
    pub fn num_cores(&self) -> usize {
        self.p * self.q
    }

    /// Number of unidirectional links: `2·(p·(q−1) + (p−1)·q)`.
    #[inline]
    pub fn num_links(&self) -> usize {
        2 * (self.p * (self.q - 1) + (self.p - 1) * self.q)
    }

    /// Size of the dense link-id space (4 outgoing port slots per core, some
    /// of which are off-mesh and never correspond to a valid [`LinkId`]).
    #[inline]
    pub fn num_link_slots(&self) -> usize {
        self.p * self.q * 4
    }

    /// True iff `c` lies on the mesh.
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        c.u < self.p && c.v < self.q
    }

    /// Dense index of a core (row-major).
    #[inline]
    pub fn core_index(&self, c: Coord) -> usize {
        debug_assert!(self.contains(c));
        c.u * self.q + c.v
    }

    /// Core at dense index `i` (inverse of [`Mesh::core_index`]).
    #[inline]
    pub fn core_at(&self, i: usize) -> Coord {
        debug_assert!(i < self.num_cores());
        Coord::new(i / self.q, i % self.q)
    }

    /// The neighbour of `c` in direction `s`, or `None` at the mesh edge.
    #[inline]
    pub fn step(&self, c: Coord, s: Step) -> Option<Coord> {
        let n = match s {
            Step::Down => {
                if c.u + 1 >= self.p {
                    return None;
                }
                Coord::new(c.u + 1, c.v)
            }
            Step::Up => {
                if c.u == 0 {
                    return None;
                }
                Coord::new(c.u - 1, c.v)
            }
            Step::Right => {
                if c.v + 1 >= self.q {
                    return None;
                }
                Coord::new(c.u, c.v + 1)
            }
            Step::Left => {
                if c.v == 0 {
                    return None;
                }
                Coord::new(c.u, c.v - 1)
            }
        };
        Some(n)
    }

    /// Dense id of the outgoing link of `from` in direction `s`, or `None`
    /// if that link would leave the mesh.
    #[inline]
    pub fn link_id(&self, from: Coord, s: Step) -> Option<LinkId> {
        self.step(from, s)?;
        Some(LinkId(self.core_index(from) * 4 + s as usize))
    }

    /// The `(source, destination)` cores of a link.
    #[inline]
    pub fn link_endpoints(&self, id: LinkId) -> (Coord, Coord) {
        let from = self.core_at(id.0 / 4);
        let s = Step::from_index(id.0 % 4);
        let to = self
            .step(from, s)
            .expect("LinkId does not denote a valid on-mesh link");
        (from, to)
    }

    /// The direction of travel of a link.
    #[inline]
    pub fn link_step(&self, id: LinkId) -> Step {
        Step::from_index(id.0 % 4)
    }

    /// Iterates over all valid links of the mesh.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        let m = *self;
        (0..self.num_cores()).flat_map(move |i| {
            let c = m.core_at(i);
            Step::ALL.into_iter().filter_map(move |s| m.link_id(c, s))
        })
    }

    /// Iterates over all cores of the mesh in row-major order.
    pub fn cores(&self) -> impl Iterator<Item = Coord> + '_ {
        let m = *self;
        (0..self.num_cores()).map(move |i| m.core_at(i))
    }

    /// Manhattan distance `|u_a − u_b| + |v_a − v_b|`; this is the length of
    /// every Manhattan path between `a` and `b` (Section 3.3).
    #[inline]
    pub fn manhattan(&self, a: Coord, b: Coord) -> usize {
        a.u.abs_diff(b.u) + a.v.abs_diff(b.v)
    }

    /// The diagonal index (0-based) of core `c` in direction `d`.
    ///
    /// Paper definition (1-based): `C_{u,v} ∈ D_k^{(1)} ⇔ u + v − 1 = k`,
    /// etc. Our 0-based equivalents range over `0 ..= p+q−2`:
    ///
    /// * d=1 (down-right): `k = u + v`
    /// * d=2 (down-left):  `k = u + (q−1−v)`
    /// * d=3 (up-left):    `k = (p−1−u) + (q−1−v)`
    /// * d=4 (up-right):   `k = (p−1−u) + v`
    ///
    /// Any unit move allowed by quadrant `d` advances the index by exactly 1.
    #[inline]
    pub fn diag_index(&self, c: Coord, d: Quadrant) -> usize {
        debug_assert!(self.contains(c));
        match d {
            Quadrant::DownRight => c.u + c.v,
            Quadrant::DownLeft => c.u + (self.q - 1 - c.v),
            Quadrant::UpLeft => (self.p - 1 - c.u) + (self.q - 1 - c.v),
            Quadrant::UpRight => (self.p - 1 - c.u) + c.v,
        }
    }

    /// Number of diagonals per direction: `p + q − 1`.
    #[inline]
    pub fn num_diagonals(&self) -> usize {
        self.p + self.q - 1
    }

    /// All cores lying on diagonal `k` of direction `d`, in ascending-row
    /// order (the order a row-major filter over [`Mesh::cores`] yields).
    ///
    /// `O(p)` instead of a full `O(p·q)` core scan: a diagonal meets each
    /// row at most once, so [`Quadrant::col_on_diag`] pins down the sole
    /// candidate column per row.
    pub fn diagonal(&self, d: Quadrant, k: usize) -> Vec<Coord> {
        (0..self.p)
            .filter_map(|u| {
                d.col_on_diag(self.p, self.q, k, u)
                    .map(|v| Coord::new(u, v))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_counts() {
        let m = Mesh::new(8, 8);
        assert_eq!(m.num_cores(), 64);
        // 2*(8*7 + 7*8) = 224 unidirectional links.
        assert_eq!(m.num_links(), 224);
        assert_eq!(m.links().count(), 224);
        assert_eq!(m.num_diagonals(), 15);
    }

    #[test]
    fn mesh_1xn() {
        let m = Mesh::new(1, 5);
        assert_eq!(m.num_links(), 2 * 4);
        assert_eq!(m.links().count(), 8);
        assert_eq!(m.num_diagonals(), 5);
    }

    #[test]
    fn step_edges() {
        let m = Mesh::new(3, 3);
        assert_eq!(m.step(Coord::new(0, 0), Step::Up), None);
        assert_eq!(m.step(Coord::new(0, 0), Step::Left), None);
        assert_eq!(m.step(Coord::new(2, 2), Step::Down), None);
        assert_eq!(m.step(Coord::new(2, 2), Step::Right), None);
        assert_eq!(m.step(Coord::new(1, 1), Step::Down), Some(Coord::new(2, 1)));
        assert_eq!(m.step(Coord::new(1, 1), Step::Up), Some(Coord::new(0, 1)));
        assert_eq!(
            m.step(Coord::new(1, 1), Step::Right),
            Some(Coord::new(1, 2))
        );
        assert_eq!(m.step(Coord::new(1, 1), Step::Left), Some(Coord::new(1, 0)));
    }

    #[test]
    fn link_roundtrip() {
        let m = Mesh::new(4, 5);
        for id in m.links() {
            let (from, to) = m.link_endpoints(id);
            assert_eq!(m.manhattan(from, to), 1);
            let s = m.link_step(id);
            assert_eq!(m.link_id(from, s), Some(id));
            assert_eq!(m.step(from, s), Some(to));
        }
    }

    #[test]
    fn link_ids_unique_and_dense() {
        let m = Mesh::new(3, 4);
        let mut seen = vec![false; m.num_link_slots()];
        for id in m.links() {
            assert!(!seen[id.0], "duplicate link id {id:?}");
            seen[id.0] = true;
        }
        assert_eq!(seen.iter().filter(|&&b| b).count(), m.num_links());
    }

    #[test]
    fn diag_indices_match_paper_examples() {
        // Paper (1-based): C_{u,v} ∈ D^{(1)}_{u+v-1}. 0-based: k = u+v.
        let m = Mesh::new(4, 6);
        let c = Coord::new(1, 2); // paper's C_{2,3}
        assert_eq!(m.diag_index(c, Quadrant::DownRight), 3);
        assert_eq!(m.diag_index(c, Quadrant::DownLeft), 1 + 3);
        assert_eq!(m.diag_index(c, Quadrant::UpLeft), 2 + 3);
        assert_eq!(m.diag_index(c, Quadrant::UpRight), 2 + 2);
    }

    #[test]
    fn every_core_on_exactly_one_diagonal_per_direction() {
        let m = Mesh::new(3, 5);
        for d in Quadrant::ALL {
            let mut count = 0;
            for k in 0..m.num_diagonals() {
                count += m.diagonal(d, k).len();
            }
            assert_eq!(count, m.num_cores());
        }
    }

    #[test]
    fn moves_advance_diagonals_by_one() {
        let m = Mesh::new(5, 7);
        for d in Quadrant::ALL {
            let (sv, sh) = d.steps();
            for c in m.cores() {
                for s in [sv, sh] {
                    if let Some(n) = m.step(c, s) {
                        assert_eq!(m.diag_index(n, d), m.diag_index(c, d) + 1);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_mesh_panics() {
        let _ = Mesh::new(0, 3);
    }
}
