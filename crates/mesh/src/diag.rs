//! The four diagonal directions (paper §3.3).
//!
//! A communication whose source/sink relative position puts it in quadrant
//! `d` only ever uses the two unit moves of that quadrant, and every such
//! move advances the diagonal index `k` of direction `d` by exactly one.

use crate::link::Step;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Direction of travel of a communication — the paper's `d ∈ {1, 2, 3, 4}`.
///
/// `d` is determined by the relative position of sink vs source
/// (ties go to the quadrants that the paper's definition picks, i.e. the
/// `≤` comparisons of §3.3):
///
/// * `DownRight` (d=1): `u_src ≤ u_snk` and `v_src ≤ v_snk`;
/// * `DownLeft`  (d=2): `u_src ≤ u_snk` and `v_src > v_snk`;
/// * `UpLeft`    (d=3): `u_src > u_snk` and `v_src > v_snk`;
/// * `UpRight`   (d=4): `u_src > u_snk` and `v_src ≤ v_snk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quadrant {
    /// d = 1: rows and columns both non-decreasing.
    DownRight,
    /// d = 2: rows non-decreasing, columns decreasing.
    DownLeft,
    /// d = 3: rows decreasing, columns decreasing.
    UpLeft,
    /// d = 4: rows decreasing, columns non-decreasing.
    UpRight,
}

impl Quadrant {
    /// All four quadrants in paper order d = 1..4.
    pub const ALL: [Quadrant; 4] = [
        Quadrant::DownRight,
        Quadrant::DownLeft,
        Quadrant::UpLeft,
        Quadrant::UpRight,
    ];

    /// The paper's 1-based direction number `d`.
    #[inline]
    pub fn paper_d(&self) -> usize {
        match self {
            Quadrant::DownRight => 1,
            Quadrant::DownLeft => 2,
            Quadrant::UpLeft => 3,
            Quadrant::UpRight => 4,
        }
    }

    /// Quadrant of the communication going from `src` towards `snk`,
    /// following the paper's tie-breaking (`≤` on both axes for d = 1).
    pub fn of(src: crate::Coord, snk: crate::Coord) -> Quadrant {
        match (src.u <= snk.u, src.v <= snk.v) {
            (true, true) => Quadrant::DownRight,
            (true, false) => Quadrant::DownLeft,
            (false, false) => Quadrant::UpLeft,
            (false, true) => Quadrant::UpRight,
        }
    }

    /// The `(vertical, horizontal)` unit moves a Manhattan path of this
    /// quadrant may use.
    #[inline]
    pub fn steps(&self) -> (Step, Step) {
        match self {
            Quadrant::DownRight => (Step::Down, Step::Right),
            Quadrant::DownLeft => (Step::Down, Step::Left),
            Quadrant::UpLeft => (Step::Up, Step::Left),
            Quadrant::UpRight => (Step::Up, Step::Right),
        }
    }

    /// True iff `s` is one of this quadrant's two allowed moves.
    #[inline]
    pub fn allows(&self, s: Step) -> bool {
        let (sv, sh) = self.steps();
        s == sv || s == sh
    }

    /// Column of the unique core of diagonal `k` (direction `self`) lying in
    /// row `u` of a `p × q` mesh, or `None` when that diagonal does not cross
    /// row `u` on the mesh (including rows past the mesh edge).
    ///
    /// Each diagonal `D_k^{(d)}` meets every row at most once (the index is
    /// strictly monotone in `v` at fixed `u`), so `(k, u)` pins down a core —
    /// the parametrisation the banded Path-Remover uses to store per-diagonal
    /// reachable sets as row intervals.
    #[inline]
    pub fn col_on_diag(&self, p: usize, q: usize, k: usize, u: usize) -> Option<usize> {
        if u >= p {
            return None;
        }
        let v = match self {
            // k = u + v
            Quadrant::DownRight => k.checked_sub(u)?,
            // k = u + (q-1-v)  ⇒  v = q-1-(k-u)
            Quadrant::DownLeft => (q - 1).checked_sub(k.checked_sub(u)?)?,
            // k = (p-1-u) + (q-1-v)  ⇒  v = q-1-(k-(p-1-u))
            Quadrant::UpLeft => (q - 1).checked_sub(k.checked_sub(p - 1 - u)?)?,
            // k = (p-1-u) + v
            Quadrant::UpRight => k.checked_sub(p - 1 - u)?,
        };
        (v < q).then_some(v)
    }
}

impl fmt::Display for Quadrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.paper_d())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coord;

    #[test]
    fn quadrant_of_matches_paper_cases() {
        let o = Coord::new(3, 3);
        assert_eq!(Quadrant::of(o, Coord::new(5, 5)), Quadrant::DownRight);
        assert_eq!(Quadrant::of(o, Coord::new(5, 1)), Quadrant::DownLeft);
        assert_eq!(Quadrant::of(o, Coord::new(1, 1)), Quadrant::UpLeft);
        assert_eq!(Quadrant::of(o, Coord::new(1, 5)), Quadrant::UpRight);
    }

    #[test]
    fn quadrant_ties_follow_paper() {
        let o = Coord::new(3, 3);
        // Same core: u_src ≤ u_snk and v_src ≤ v_snk → d = 1.
        assert_eq!(Quadrant::of(o, o), Quadrant::DownRight);
        // Horizontal right: d = 1. Horizontal left: v_src > v_snk, u ≤ → d = 2.
        assert_eq!(Quadrant::of(o, Coord::new(3, 5)), Quadrant::DownRight);
        assert_eq!(Quadrant::of(o, Coord::new(3, 1)), Quadrant::DownLeft);
        // Vertical down: d = 1. Vertical up: u_src > u_snk, v ≤ → d = 4.
        assert_eq!(Quadrant::of(o, Coord::new(5, 3)), Quadrant::DownRight);
        assert_eq!(Quadrant::of(o, Coord::new(1, 3)), Quadrant::UpRight);
    }

    #[test]
    fn steps_move_into_quadrant() {
        for d in Quadrant::ALL {
            let (sv, sh) = d.steps();
            assert!(sv.is_vertical());
            assert!(sh.is_horizontal());
            assert!(d.allows(sv));
            assert!(d.allows(sh));
            assert!(!d.allows(sv.opposite()));
            assert!(!d.allows(sh.opposite()));
        }
    }

    #[test]
    fn paper_d_numbers() {
        assert_eq!(Quadrant::ALL.map(|d| d.paper_d()), [1, 2, 3, 4]);
        assert_eq!(Quadrant::DownLeft.to_string(), "d2");
    }

    #[test]
    fn col_on_diag_inverts_diag_index() {
        let m = crate::Mesh::new(4, 6);
        for d in Quadrant::ALL {
            for c in m.cores() {
                let k = m.diag_index(c, d);
                assert_eq!(d.col_on_diag(4, 6, k, c.u), Some(c.v), "{d} {c}");
            }
            // Rows a diagonal misses return None instead of a wrapped column.
            for k in 0..m.num_diagonals() {
                for u in 0..4 {
                    let got = d.col_on_diag(4, 6, k, u);
                    let expect = m
                        .cores()
                        .find(|c| c.u == u && m.diag_index(*c, d) == k)
                        .map(|c| c.v);
                    assert_eq!(got, expect, "{d} k={k} u={u}");
                }
            }
        }
    }
}
