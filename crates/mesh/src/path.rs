//! Manhattan (shortest) paths on the mesh.

use crate::coord::Coord;
use crate::diag::Quadrant;
use crate::link::{LinkId, Step};
use crate::Mesh;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A path on the mesh: a source core plus a sequence of unit moves.
///
/// All constructors of this type produce *Manhattan* paths — shortest paths
/// whose every move stays within the communication's quadrant — but the
/// struct itself can represent any walk; use [`Path::is_manhattan`] to
/// check the invariant (property tests do).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    src: Coord,
    moves: Vec<Step>,
}

impl Path {
    /// Builds a path from raw parts (not checked; see [`Path::is_manhattan`]).
    pub fn from_moves(src: Coord, moves: Vec<Step>) -> Self {
        Path { src, moves }
    }

    /// The XY path: **horizontal first, then vertical** (the paper's
    /// baseline routing, §1).
    pub fn xy(src: Coord, snk: Coord) -> Self {
        let d = Quadrant::of(src, snk);
        let (sv, sh) = d.steps();
        let dv = src.v.abs_diff(snk.v);
        let du = src.u.abs_diff(snk.u);
        let mut moves = Vec::with_capacity(du + dv);
        moves.extend(std::iter::repeat_n(sh, dv));
        moves.extend(std::iter::repeat_n(sv, du));
        Path { src, moves }
    }

    /// The YX path: vertical first, then horizontal.
    pub fn yx(src: Coord, snk: Coord) -> Self {
        let d = Quadrant::of(src, snk);
        let (sv, sh) = d.steps();
        let dv = src.v.abs_diff(snk.v);
        let du = src.u.abs_diff(snk.u);
        let mut moves = Vec::with_capacity(du + dv);
        moves.extend(std::iter::repeat_n(sv, du));
        moves.extend(std::iter::repeat_n(sh, dv));
        Path { src, moves }
    }

    /// Source core.
    #[inline]
    pub fn src(&self) -> Coord {
        self.src
    }

    /// Destination core (source displaced by all moves).
    pub fn snk(&self) -> Coord {
        let mut u = self.src.u as isize;
        let mut v = self.src.v as isize;
        for s in &self.moves {
            let (du, dv) = s.delta();
            u += du;
            v += dv;
        }
        Coord::new(u as usize, v as usize)
    }

    /// Number of links traversed.
    #[inline]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// True iff the path has no moves (source == sink).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// The move sequence.
    #[inline]
    pub fn moves(&self) -> &[Step] {
        &self.moves
    }

    /// Iterates over the `len() + 1` cores visited, starting at the source.
    pub fn cores(&self) -> impl Iterator<Item = Coord> + '_ {
        let mut cur = self.src;
        std::iter::once(self.src).chain(self.moves.iter().map(move |s| {
            let (du, dv) = s.delta();
            cur = Coord::new(
                (cur.u as isize + du) as usize,
                (cur.v as isize + dv) as usize,
            );
            cur
        }))
    }

    /// Iterates over the dense ids of the links traversed.
    ///
    /// # Panics
    /// Panics (in the returned iterator) if the path leaves the mesh.
    pub fn links<'a>(&'a self, mesh: &'a Mesh) -> impl Iterator<Item = LinkId> + 'a {
        let mut cur = self.src;
        self.moves.iter().map(move |&s| {
            let id = mesh.link_id(cur, s).expect("path leaves the mesh");
            cur = mesh.step(cur, s).unwrap();
            id
        })
    }

    /// True iff the path stays on the mesh and is a Manhattan path: every
    /// move belongs to the quadrant spanned by its endpoints, which makes it
    /// a shortest path.
    pub fn is_manhattan(&self, mesh: &Mesh) -> bool {
        if !mesh.contains(self.src) {
            return false;
        }
        // Walk once to find the endpoint, validating mesh bounds.
        let mut cur = self.src;
        for &s in &self.moves {
            match mesh.step(cur, s) {
                Some(n) => cur = n,
                None => return false,
            }
        }
        let snk = cur;
        let d = Quadrant::of(self.src, snk);
        self.moves.iter().all(|&s| d.allows(s)) && self.len() == mesh.manhattan(self.src, snk)
    }

    /// Number of bends (adjacent move pairs along different axes).
    pub fn bends(&self) -> usize {
        self.moves
            .windows(2)
            .filter(|w| w[0].is_vertical() != w[1].is_vertical())
            .count()
    }

    /// True iff the path traverses `link`.
    pub fn crosses(&self, mesh: &Mesh, link: LinkId) -> bool {
        self.links(mesh).any(|l| l == link)
    }

    /// Number of Manhattan paths between `src` and `snk`:
    /// `C(du + dv, du)` — Lemma 1 of the paper (stated there for the full
    /// mesh diagonal: `C(p+q−2, p−1)` paths from `C_{1,1}` to `C_{p,q}`).
    pub fn count(src: Coord, snk: Coord) -> u128 {
        let du = src.u.abs_diff(snk.u) as u128;
        let dv = src.v.abs_diff(snk.v) as u128;
        binomial(du + dv, du.min(dv))
    }

    /// Enumerates **all** Manhattan paths from `src` to `snk`.
    ///
    /// The number of paths is `C(du+dv, du)`; callers should bound the
    /// instance size (used by the exact solver and by tests).
    pub fn enumerate_all(mesh: &Mesh, src: Coord, snk: Coord) -> Vec<Path> {
        assert!(mesh.contains(src) && mesh.contains(snk));
        let d = Quadrant::of(src, snk);
        let (sv, sh) = d.steps();
        let du = src.u.abs_diff(snk.u);
        let dv = src.v.abs_diff(snk.v);
        let mut out = Vec::new();
        let mut moves = Vec::with_capacity(du + dv);
        enumerate_rec(sv, sh, du, dv, &mut moves, &mut |m| {
            out.push(Path::from_moves(src, m.to_vec()));
        });
        out
    }

    /// Enumerates the **two-bend** Manhattan paths from `src` to `snk`
    /// (paths with at most two direction changes), as considered by the TB
    /// heuristic (§5.3). There are at most `du + dv` of them (`|Δu| + |Δv|`,
    /// exactly matching the paper's bound) when both spans are positive,
    /// and exactly one when the endpoints share a row or column.
    pub fn two_bend(mesh: &Mesh, src: Coord, snk: Coord) -> Vec<Path> {
        assert!(mesh.contains(src) && mesh.contains(snk));
        let d = Quadrant::of(src, snk);
        let (sv, sh) = d.steps();
        let du = src.u.abs_diff(snk.u);
        let dv = src.v.abs_diff(snk.v);
        if du == 0 || dv == 0 {
            return vec![Path::xy(src, snk)];
        }
        let mut out = Vec::with_capacity(du + dv);
        // H-V-H: right^i, down^du, right^(dv-i). i = dv is XY, i = 0 is YX.
        for i in 0..=dv {
            let mut m = Vec::with_capacity(du + dv);
            m.extend(std::iter::repeat_n(sh, i));
            m.extend(std::iter::repeat_n(sv, du));
            m.extend(std::iter::repeat_n(sh, dv - i));
            out.push(Path::from_moves(src, m));
        }
        // V-H-V: down^j, right^dv, down^(du-j); j = 0 and j = du duplicate
        // the XY/YX paths already generated above.
        for j in 1..du {
            let mut m = Vec::with_capacity(du + dv);
            m.extend(std::iter::repeat_n(sv, j));
            m.extend(std::iter::repeat_n(sh, dv));
            m.extend(std::iter::repeat_n(sv, du - j));
            out.push(Path::from_moves(src, m));
        }
        out
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.src)?;
        for s in &self.moves {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

fn enumerate_rec(
    sv: Step,
    sh: Step,
    du: usize,
    dv: usize,
    moves: &mut Vec<Step>,
    emit: &mut impl FnMut(&[Step]),
) {
    if du == 0 && dv == 0 {
        emit(moves);
        return;
    }
    if du > 0 {
        moves.push(sv);
        enumerate_rec(sv, sh, du - 1, dv, moves, emit);
        moves.pop();
    }
    if dv > 0 {
        moves.push(sh);
        enumerate_rec(sv, sh, du, dv - 1, moves, emit);
        moves.pop();
    }
}

/// Exact binomial coefficient `C(n, k)` in `u128`.
///
/// Denominators are cancelled by gcd *before* multiplying, so every
/// intermediate value equals a smaller binomial coefficient and the
/// function succeeds whenever the final result fits in `u128` (e.g.
/// `C(126, 63)` for a 64×64 mesh).
///
/// # Panics
/// Panics only when the result itself overflows `u128`.
pub fn binomial(n: u128, k: u128) -> u128 {
    fn gcd(mut a: u128, mut b: u128) -> u128 {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    let k = k.min(n - k.min(n));
    let mut num: u128 = 1;
    for i in 0..k {
        let mut mul = n - i;
        let mut den = i + 1;
        // num·mul/den is exactly C(n, i+1); cancel den fully first so the
        // product never exceeds that coefficient.
        let g = gcd(num, den);
        num /= g;
        den /= g;
        let g = gcd(mul, den);
        mul /= g;
        den /= g;
        debug_assert_eq!(den, 1, "denominator must cancel in an exact binomial");
        num = num.checked_mul(mul).expect("binomial overflow");
    }
    num
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomials() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(14, 7), 3432); // 8×8 corner-to-corner (Lemma 1)
                                           // A 64×64 mesh: the result fits u128 even though the naive
                                           // multiply-then-divide intermediates would overflow.
        assert_eq!(
            binomial(126, 63),
            6_034_934_435_761_406_706_427_864_636_568_328_000
        );
    }

    #[test]
    fn lemma1_count_matches_enumeration() {
        // Lemma 1: C(p+q-2, p-1) paths from C_{1,1} to C_{p,q}.
        for (p, q) in [(2, 2), (3, 3), (3, 4), (4, 4), (2, 6)] {
            let mesh = Mesh::new(p, q);
            let src = Coord::new(0, 0);
            let snk = Coord::new(p - 1, q - 1);
            let expected = binomial((p + q - 2) as u128, (p - 1) as u128);
            assert_eq!(Path::count(src, snk), expected);
            let all = Path::enumerate_all(&mesh, src, snk);
            assert_eq!(all.len() as u128, expected);
            for path in &all {
                assert!(path.is_manhattan(&mesh));
                assert_eq!(path.snk(), snk);
            }
            // All enumerated paths are distinct.
            let set: std::collections::HashSet<_> =
                all.iter().map(|p| p.moves().to_vec()).collect();
            assert_eq!(set.len(), all.len());
        }
    }

    #[test]
    fn xy_goes_horizontal_first() {
        let src = Coord::new(0, 0);
        let snk = Coord::new(2, 3);
        let p = Path::xy(src, snk);
        assert_eq!(
            p.moves(),
            &[
                Step::Right,
                Step::Right,
                Step::Right,
                Step::Down,
                Step::Down
            ]
        );
        assert_eq!(p.snk(), snk);
        assert!(p.bends() <= 1);
    }

    #[test]
    fn yx_goes_vertical_first() {
        let src = Coord::new(0, 3);
        let snk = Coord::new(2, 0); // down-left quadrant
        let p = Path::yx(src, snk);
        assert_eq!(
            p.moves(),
            &[Step::Down, Step::Down, Step::Left, Step::Left, Step::Left]
        );
        assert_eq!(p.snk(), snk);
    }

    #[test]
    fn degenerate_paths() {
        let c = Coord::new(1, 1);
        let p = Path::xy(c, c);
        assert!(p.is_empty());
        assert_eq!(p.snk(), c);
        assert_eq!(p.bends(), 0);
        let mesh = Mesh::new(3, 3);
        assert!(p.is_manhattan(&mesh));
        assert_eq!(p.links(&mesh).count(), 0);
        assert_eq!(p.cores().count(), 1);
    }

    #[test]
    fn links_and_cores_are_consistent() {
        let mesh = Mesh::new(4, 4);
        let p = Path::xy(Coord::new(0, 0), Coord::new(3, 3));
        let cores: Vec<_> = p.cores().collect();
        assert_eq!(cores.len(), p.len() + 1);
        let links: Vec<_> = p.links(&mesh).collect();
        assert_eq!(links.len(), p.len());
        for (i, l) in links.iter().enumerate() {
            let (from, to) = mesh.link_endpoints(*l);
            assert_eq!(from, cores[i]);
            assert_eq!(to, cores[i + 1]);
        }
    }

    #[test]
    fn non_manhattan_detected() {
        let mesh = Mesh::new(3, 3);
        // Down then back up: a walk, not a shortest path.
        let p = Path::from_moves(Coord::new(0, 0), vec![Step::Down, Step::Up]);
        assert!(!p.is_manhattan(&mesh));
        // Walking off the mesh.
        let p = Path::from_moves(Coord::new(0, 0), vec![Step::Up]);
        assert!(!p.is_manhattan(&mesh));
    }

    #[test]
    fn two_bend_counts() {
        let mesh = Mesh::new(5, 6);
        let src = Coord::new(0, 0);
        let snk = Coord::new(3, 4); // du=3, dv=4
        let tb = Path::two_bend(&mesh, src, snk);
        assert_eq!(tb.len(), 3 + 4); // |Δu| + |Δv| per the paper
        for p in &tb {
            assert!(p.is_manhattan(&mesh), "{p}");
            assert!(p.bends() <= 2, "{p} has {} bends", p.bends());
            assert_eq!(p.snk(), snk);
        }
        let set: std::collections::HashSet<_> = tb.iter().map(|p| p.moves().to_vec()).collect();
        assert_eq!(set.len(), tb.len(), "two-bend paths must be distinct");
    }

    #[test]
    fn two_bend_straight_line() {
        let mesh = Mesh::new(5, 6);
        let tb = Path::two_bend(&mesh, Coord::new(1, 1), Coord::new(1, 4));
        assert_eq!(tb.len(), 1);
        assert_eq!(tb[0].bends(), 0);
    }

    #[test]
    fn two_bend_includes_xy_and_yx() {
        let mesh = Mesh::new(5, 5);
        let src = Coord::new(4, 4);
        let snk = Coord::new(1, 0); // up-left quadrant
        let tb = Path::two_bend(&mesh, src, snk);
        assert!(tb.contains(&Path::xy(src, snk)));
        assert!(tb.contains(&Path::yx(src, snk)));
    }

    #[test]
    fn display() {
        let p = Path::xy(Coord::new(0, 0), Coord::new(1, 1));
        assert_eq!(p.to_string(), "(0,0)RD");
    }
}
