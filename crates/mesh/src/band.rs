//! The staircase *band* of a communication: every link usable by at least
//! one of its Manhattan paths, grouped by diagonal crossing.
//!
//! The "ideal sharing" of Figure 3 of the paper distributes a
//! communication's traffic equally over all the links between two successive
//! diagonals that its Manhattan paths can use. Both the IG and PR heuristics
//! build on this fractional pre-routing, so the band is computed here once
//! and shared.

use crate::coord::{Coord, Rect};
use crate::diag::Quadrant;
use crate::link::LinkId;
use crate::Mesh;

/// All links reachable by Manhattan paths of a communication, grouped by
/// the (relative) diagonal they cross.
///
/// For a communication of length `ℓ` the band has `ℓ` groups; group `t`
/// holds the links leading from relative diagonal `t` to `t + 1` inside the
/// bounding box. Every link of a group lies on at least one Manhattan path
/// (monotone staircase connectivity inside a rectangle), and every Manhattan
/// path crosses exactly one link of each group.
///
/// ## Storage
///
/// Groups live in a flat CSR layout (`group_off` + `links`, the
/// `first_out`/`head` idiom of `rust_road_router`'s `FirstOutGraph`): one
/// allocation per band instead of one `Vec` per diagonal, and group access
/// is a slice into the shared array. The per-diagonal useful-row intervals
/// ([`Band::diag_rows`]) are tabulated at construction, so the hot PR
/// reachability paths read them in `O(1)` instead of re-scanning the
/// bounding box's rows per query.
#[derive(Debug, Clone)]
pub struct Band {
    src: Coord,
    snk: Coord,
    quadrant: Quadrant,
    rect: Rect,
    k_src: usize,
    /// CSR offsets: group `t`'s links are
    /// `links[group_off[t] .. group_off[t + 1]]` (`len + 1` entries).
    group_off: Vec<u32>,
    /// Flat group-major link array. Within a group, links keep the
    /// historical per-core construction order (bounding-box cores row-major,
    /// vertical move before horizontal per core).
    links: Vec<LinkId>,
    /// Inclusive useful-row interval `(u_lo, u_hi)` of relative diagonal
    /// `t ∈ 0..=len` — the [`Band::diag_rows`] values, tabulated once.
    rows: Vec<(u32, u32)>,
}

impl Band {
    /// Computes the band of the communication `src → snk` on `mesh`.
    pub fn new(mesh: &Mesh, src: Coord, snk: Coord) -> Self {
        assert!(mesh.contains(src) && mesh.contains(snk));
        let quadrant = Quadrant::of(src, snk);
        let rect = Rect::spanning(src, snk);
        let k_src = mesh.diag_index(src, quadrant);
        let len = mesh.manhattan(src, snk);
        let (sv, sh) = quadrant.steps();
        // Counting pass: group sizes and per-diagonal row extents in one
        // sweep over the bounding box (rows on a diagonal are contiguous,
        // so min/max is the whole interval).
        let mut group_off = vec![0u32; len + 1];
        let mut rows = vec![(u32::MAX, 0u32); len + 1];
        for c in rect.cores() {
            let t = mesh.diag_index(c, quadrant) - k_src;
            let r = &mut rows[t];
            r.0 = r.0.min(c.u as u32);
            r.1 = r.1.max(c.u as u32);
            // `t` can equal `len` (the sink's diagonal); no group for it.
            if t >= len {
                continue;
            }
            for s in [sv, sh] {
                if let Some(n) = mesh.step(c, s) {
                    if rect.contains(n) {
                        group_off[t + 1] += 1;
                    }
                }
            }
        }
        debug_assert!(group_off[1..].iter().all(|&n| n > 0));
        debug_assert!(rows.iter().all(|r| r.0 != u32::MAX));
        for t in 0..len {
            group_off[t + 1] += group_off[t];
        }
        // Fill pass: identical iteration, so the flat array holds exactly
        // the link sequence the historical Vec-of-Vec build pushed.
        let mut links = vec![LinkId(0); group_off[len] as usize];
        let mut cursor: Vec<u32> = group_off[..len].to_vec();
        for c in rect.cores() {
            let t = mesh.diag_index(c, quadrant) - k_src;
            if t >= len {
                continue;
            }
            for s in [sv, sh] {
                if let Some(n) = mesh.step(c, s) {
                    if rect.contains(n) {
                        links[cursor[t] as usize] = mesh.link_id(c, s).unwrap();
                        cursor[t] += 1;
                    }
                }
            }
        }
        Band {
            src,
            snk,
            quadrant,
            rect,
            k_src,
            group_off,
            links,
            rows,
        }
    }

    /// Source core of the communication.
    #[inline]
    pub fn src(&self) -> Coord {
        self.src
    }

    /// Sink core of the communication.
    #[inline]
    pub fn snk(&self) -> Coord {
        self.snk
    }

    /// The communication's quadrant (direction `d`).
    #[inline]
    pub fn quadrant(&self) -> Quadrant {
        self.quadrant
    }

    /// Bounding box of the communication.
    #[inline]
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Absolute diagonal index (direction `d`) of the source.
    #[inline]
    pub fn k_src(&self) -> usize {
        self.k_src
    }

    /// Path length `ℓ` = number of diagonal crossings = number of groups.
    #[inline]
    pub fn len(&self) -> usize {
        self.group_off.len() - 1
    }

    /// True for a zero-length communication (source == sink).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.group_off.len() == 1
    }

    /// The links crossing from relative diagonal `t` to `t + 1` (a slice
    /// into the band's flat CSR link array).
    #[inline]
    pub fn group(&self, t: usize) -> &[LinkId] {
        &self.links[self.group_off[t] as usize..self.group_off[t + 1] as usize]
    }

    /// All groups, in diagonal order, as slices into the flat link array.
    #[inline]
    pub fn groups(&self) -> impl DoubleEndedIterator<Item = &[LinkId]> + ExactSizeIterator + '_ {
        self.group_off
            .windows(2)
            .map(move |w| &self.links[w[0] as usize..w[1] as usize])
    }

    /// Iterates over every link of the band (the flat CSR array, group-major
    /// — identical order to flattening [`Band::groups`]).
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.links.iter().copied()
    }

    /// Total number of band links across all groups, in `O(1)`.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Relative diagonal (group index) a band link belongs to.
    pub fn group_of(&self, mesh: &Mesh, link: LinkId) -> usize {
        let (from, _) = mesh.link_endpoints(link);
        mesh.diag_index(from, self.quadrant) - self.k_src
    }

    /// The core of relative diagonal `t` (0 ..= `len`) lying in row `u`, if
    /// the diagonal crosses that row inside the band's bounding box.
    ///
    /// Cores of one diagonal inside a rectangle occupy consecutive rows, so
    /// a set of band cores on a diagonal can be stored as a row interval —
    /// the representation behind the banded Path-Remover's per-diagonal
    /// reachability state.
    pub fn core_on_diag(&self, mesh: &Mesh, t: usize, u: usize) -> Option<Coord> {
        let v = self
            .quadrant
            .col_on_diag(mesh.rows(), mesh.cols(), self.k_src + t, u)?;
        let c = Coord::new(u, v);
        self.rect.contains(c).then_some(c)
    }

    /// The inclusive row range `(u_lo, u_hi)` of the band's cores on
    /// relative diagonal `t` (0 ..= `len`). Every row in between holds
    /// exactly one band core of that diagonal.
    ///
    /// `O(1)`: the intervals are tabulated by [`Band::new`]'s single sweep
    /// over the bounding box (this runs once per diagonal of every
    /// communication on every PR route, and used to re-scan the box's rows
    /// per query). The `mesh` argument is kept for API stability; the
    /// interval is a pure function of the band.
    ///
    /// # Panics
    /// Panics if `t` exceeds the number of diagonals (`len`).
    pub fn diag_rows(&self, mesh: &Mesh, t: usize) -> (usize, usize) {
        let _ = mesh;
        assert!(
            t <= self.len(),
            "diagonal {t} outside band 0..={}",
            self.len()
        );
        let (lo, hi) = self.rows[t];
        (lo as usize, hi as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;

    #[test]
    fn band_of_square_box() {
        let mesh = Mesh::new(4, 4);
        let band = Band::new(&mesh, Coord::new(0, 0), Coord::new(2, 2));
        assert_eq!(band.len(), 4);
        // Group sizes inside a 3×3 box: diag 0 has 1 core × 2 links; diag 1
        // has 2 cores × 2 links; on later diagonals the border cores lose
        // their out-of-box move. Total 2+4+4+2 = 12 = a(b−1) + (a−1)b.
        assert_eq!(band.group(0).len(), 2);
        assert_eq!(band.group(1).len(), 4);
        assert_eq!(band.group(2).len(), 4);
        assert_eq!(band.group(3).len(), 2);
    }

    #[test]
    fn band_of_straight_line() {
        let mesh = Mesh::new(4, 4);
        let band = Band::new(&mesh, Coord::new(1, 0), Coord::new(1, 3));
        assert_eq!(band.len(), 3);
        for t in 0..3 {
            assert_eq!(
                band.group(t).len(),
                1,
                "straight band groups are singletons"
            );
        }
    }

    #[test]
    fn band_degenerate() {
        let mesh = Mesh::new(3, 3);
        let band = Band::new(&mesh, Coord::new(1, 1), Coord::new(1, 1));
        assert!(band.is_empty());
        assert_eq!(band.links().count(), 0);
    }

    #[test]
    fn every_manhattan_path_crosses_one_link_per_group() {
        let mesh = Mesh::new(4, 5);
        let src = Coord::new(3, 4);
        let snk = Coord::new(1, 1); // up-left
        let band = Band::new(&mesh, src, snk);
        for path in Path::enumerate_all(&mesh, src, snk) {
            let links: Vec<_> = path.links(&mesh).collect();
            assert_eq!(links.len(), band.len());
            for (t, l) in links.iter().enumerate() {
                assert!(
                    band.group(t).contains(l),
                    "path {path} link {l} not in group {t}"
                );
                assert_eq!(band.group_of(&mesh, *l), t);
            }
        }
    }

    #[test]
    fn band_links_all_lie_on_some_path() {
        let mesh = Mesh::new(5, 5);
        let src = Coord::new(0, 4);
        let snk = Coord::new(3, 1); // down-left
        let band = Band::new(&mesh, src, snk);
        let paths = Path::enumerate_all(&mesh, src, snk);
        for l in band.links() {
            assert!(
                paths.iter().any(|p| p.crosses(&mesh, l)),
                "band link {l} unused by every Manhattan path"
            );
        }
        // Conversely no path uses a non-band link.
        let band_set: std::collections::HashSet<_> = band.links().collect();
        for p in &paths {
            for l in p.links(&mesh) {
                assert!(band_set.contains(&l));
            }
        }
    }

    #[test]
    fn diag_rows_cover_exactly_the_band_cores() {
        let mesh = Mesh::new(5, 6);
        for (src, snk) in [
            (Coord::new(0, 0), Coord::new(4, 5)), // down-right
            (Coord::new(1, 5), Coord::new(4, 1)), // down-left
            (Coord::new(4, 4), Coord::new(1, 0)), // up-left
            (Coord::new(3, 1), Coord::new(0, 4)), // up-right
            (Coord::new(2, 0), Coord::new(2, 5)), // straight
        ] {
            let band = Band::new(&mesh, src, snk);
            for t in 0..=band.len() {
                let (lo, hi) = band.diag_rows(&mesh, t);
                let expected: Vec<Coord> = band
                    .rect()
                    .cores()
                    .filter(|&c| mesh.diag_index(c, band.quadrant()) == band.k_src() + t)
                    .collect();
                assert_eq!(hi - lo + 1, expected.len(), "{src}->{snk} t={t}");
                for u in lo..=hi {
                    let c = band.core_on_diag(&mesh, t, u).expect("row in range");
                    assert!(expected.contains(&c));
                    assert_eq!(c.u, u);
                }
                assert!(band.core_on_diag(&mesh, t, hi + 1).is_none());
                if lo > 0 {
                    assert!(band.core_on_diag(&mesh, t, lo - 1).is_none());
                }
            }
            // The first and last diagonals are the source and sink alone.
            assert_eq!(band.diag_rows(&mesh, 0), (src.u, src.u));
            assert_eq!(band.diag_rows(&mesh, band.len()), (snk.u, snk.u));
        }
    }

    #[test]
    fn group_sizes_sum_to_band_size() {
        let mesh = Mesh::new(6, 6);
        let band = Band::new(&mesh, Coord::new(5, 0), Coord::new(2, 3)); // up-right
        let total: usize = band.groups().map(|g| g.len()).sum();
        assert_eq!(total, band.links().count());
        assert_eq!(total, band.num_links());
        // In-box link count: for an a×b box there are a*(b-1) horizontal and
        // (a-1)*b vertical monotone links.
        let (a, b) = (band.rect().height(), band.rect().width());
        assert_eq!(total, a * (b - 1) + (a - 1) * b);
    }
}
