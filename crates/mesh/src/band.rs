//! The staircase *band* of a communication: every link usable by at least
//! one of its Manhattan paths, grouped by diagonal crossing.
//!
//! The "ideal sharing" of Figure 3 of the paper distributes a
//! communication's traffic equally over all the links between two successive
//! diagonals that its Manhattan paths can use. Both the IG and PR heuristics
//! build on this fractional pre-routing, so the band is computed here once
//! and shared.

use crate::coord::{Coord, Rect};
use crate::diag::Quadrant;
use crate::link::LinkId;
use crate::Mesh;

/// All links reachable by Manhattan paths of a communication, grouped by
/// the (relative) diagonal they cross.
///
/// For a communication of length `ℓ` the band has `ℓ` groups; group `t`
/// holds the links leading from relative diagonal `t` to `t + 1` inside the
/// bounding box. Every link of a group lies on at least one Manhattan path
/// (monotone staircase connectivity inside a rectangle), and every Manhattan
/// path crosses exactly one link of each group.
#[derive(Debug, Clone)]
pub struct Band {
    src: Coord,
    snk: Coord,
    quadrant: Quadrant,
    rect: Rect,
    k_src: usize,
    groups: Vec<Vec<LinkId>>,
}

impl Band {
    /// Computes the band of the communication `src → snk` on `mesh`.
    pub fn new(mesh: &Mesh, src: Coord, snk: Coord) -> Self {
        assert!(mesh.contains(src) && mesh.contains(snk));
        let quadrant = Quadrant::of(src, snk);
        let rect = Rect::spanning(src, snk);
        let k_src = mesh.diag_index(src, quadrant);
        let len = mesh.manhattan(src, snk);
        let mut groups = vec![Vec::new(); len];
        let (sv, sh) = quadrant.steps();
        for c in rect.cores() {
            let t = mesh.diag_index(c, quadrant) - k_src;
            // `t` can equal `len` (the sink's diagonal); no group for it.
            if t >= len {
                continue;
            }
            for s in [sv, sh] {
                if let Some(n) = mesh.step(c, s) {
                    if rect.contains(n) {
                        groups[t].push(mesh.link_id(c, s).unwrap());
                    }
                }
            }
        }
        debug_assert!(groups.iter().all(|g| !g.is_empty()));
        Band {
            src,
            snk,
            quadrant,
            rect,
            k_src,
            groups,
        }
    }

    /// Source core of the communication.
    #[inline]
    pub fn src(&self) -> Coord {
        self.src
    }

    /// Sink core of the communication.
    #[inline]
    pub fn snk(&self) -> Coord {
        self.snk
    }

    /// The communication's quadrant (direction `d`).
    #[inline]
    pub fn quadrant(&self) -> Quadrant {
        self.quadrant
    }

    /// Bounding box of the communication.
    #[inline]
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Absolute diagonal index (direction `d`) of the source.
    #[inline]
    pub fn k_src(&self) -> usize {
        self.k_src
    }

    /// Path length `ℓ` = number of diagonal crossings = number of groups.
    #[inline]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True for a zero-length communication (source == sink).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The links crossing from relative diagonal `t` to `t + 1`.
    #[inline]
    pub fn group(&self, t: usize) -> &[LinkId] {
        &self.groups[t]
    }

    /// All groups, in diagonal order.
    #[inline]
    pub fn groups(&self) -> &[Vec<LinkId>] {
        &self.groups
    }

    /// Iterates over every link of the band.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.groups.iter().flatten().copied()
    }

    /// Relative diagonal (group index) a band link belongs to.
    pub fn group_of(&self, mesh: &Mesh, link: LinkId) -> usize {
        let (from, _) = mesh.link_endpoints(link);
        mesh.diag_index(from, self.quadrant) - self.k_src
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;

    #[test]
    fn band_of_square_box() {
        let mesh = Mesh::new(4, 4);
        let band = Band::new(&mesh, Coord::new(0, 0), Coord::new(2, 2));
        assert_eq!(band.len(), 4);
        // Group sizes inside a 3×3 box: diag 0 has 1 core × 2 links; diag 1
        // has 2 cores × 2 links; on later diagonals the border cores lose
        // their out-of-box move. Total 2+4+4+2 = 12 = a(b−1) + (a−1)b.
        assert_eq!(band.group(0).len(), 2);
        assert_eq!(band.group(1).len(), 4);
        assert_eq!(band.group(2).len(), 4);
        assert_eq!(band.group(3).len(), 2);
    }

    #[test]
    fn band_of_straight_line() {
        let mesh = Mesh::new(4, 4);
        let band = Band::new(&mesh, Coord::new(1, 0), Coord::new(1, 3));
        assert_eq!(band.len(), 3);
        for t in 0..3 {
            assert_eq!(
                band.group(t).len(),
                1,
                "straight band groups are singletons"
            );
        }
    }

    #[test]
    fn band_degenerate() {
        let mesh = Mesh::new(3, 3);
        let band = Band::new(&mesh, Coord::new(1, 1), Coord::new(1, 1));
        assert!(band.is_empty());
        assert_eq!(band.links().count(), 0);
    }

    #[test]
    fn every_manhattan_path_crosses_one_link_per_group() {
        let mesh = Mesh::new(4, 5);
        let src = Coord::new(3, 4);
        let snk = Coord::new(1, 1); // up-left
        let band = Band::new(&mesh, src, snk);
        for path in Path::enumerate_all(&mesh, src, snk) {
            let links: Vec<_> = path.links(&mesh).collect();
            assert_eq!(links.len(), band.len());
            for (t, l) in links.iter().enumerate() {
                assert!(
                    band.group(t).contains(l),
                    "path {path} link {l} not in group {t}"
                );
                assert_eq!(band.group_of(&mesh, *l), t);
            }
        }
    }

    #[test]
    fn band_links_all_lie_on_some_path() {
        let mesh = Mesh::new(5, 5);
        let src = Coord::new(0, 4);
        let snk = Coord::new(3, 1); // down-left
        let band = Band::new(&mesh, src, snk);
        let paths = Path::enumerate_all(&mesh, src, snk);
        for l in band.links() {
            assert!(
                paths.iter().any(|p| p.crosses(&mesh, l)),
                "band link {l} unused by every Manhattan path"
            );
        }
        // Conversely no path uses a non-band link.
        let band_set: std::collections::HashSet<_> = band.links().collect();
        for p in &paths {
            for l in p.links(&mesh) {
                assert!(band_set.contains(&l));
            }
        }
    }

    #[test]
    fn group_sizes_sum_to_band_size() {
        let mesh = Mesh::new(6, 6);
        let band = Band::new(&mesh, Coord::new(5, 0), Coord::new(2, 3)); // up-right
        let total: usize = band.groups().iter().map(|g| g.len()).sum();
        assert_eq!(total, band.links().count());
        // In-box link count: for an a×b box there are a*(b-1) horizontal and
        // (a-1)*b vertical monotone links.
        let (a, b) = (band.rect().height(), band.rect().width());
        assert_eq!(total, a * (b - 1) + (a - 1) * b);
    }
}
