//! Runs all six routing policies (plus BEST) on a single instance.

use pamr_power::{PowerBreakdown, PowerModel};
use pamr_routing::{CommSet, HeuristicKind, RouteScratch};
use std::time::Instant;

/// One policy's outcome on one instance.
#[derive(Debug, Clone, Copy)]
pub struct HeurResult {
    /// Which policy.
    pub kind: HeuristicKind,
    /// Did the routing respect every link bandwidth?
    pub feasible: bool,
    /// Total power when feasible (`f64::INFINITY` otherwise).
    pub power: f64,
    /// Static/dynamic decomposition when feasible.
    pub breakdown: Option<PowerBreakdown>,
    /// Wall-clock routing time in microseconds.
    pub micros: u64,
}

impl HeurResult {
    /// Inverse power, 0 on failure (the paper's plotted quantity before
    /// normalisation).
    pub fn inv_power(&self) -> f64 {
        if self.feasible {
            1.0 / self.power
        } else {
            0.0
        }
    }
}

/// All policies' outcomes on one instance, plus the virtual BEST.
#[derive(Debug, Clone)]
pub struct InstanceOutcome {
    /// Outcomes in [`HeuristicKind::ALL`] order.
    pub results: Vec<HeurResult>,
    /// Power of the best feasible routing, if any policy succeeded.
    pub best_power: Option<f64>,
    /// Which policy achieved it.
    pub best_kind: Option<HeuristicKind>,
}

impl InstanceOutcome {
    /// The outcome of a given policy.
    pub fn of(&self, kind: HeuristicKind) -> &HeurResult {
        self.results
            .iter()
            .find(|r| r.kind == kind)
            .expect("all kinds present")
    }
}

/// Routes the instance with every policy, timing each one.
pub fn run_instance(cs: &CommSet, model: &PowerModel) -> InstanceOutcome {
    run_instance_with(cs, model, &mut RouteScratch::new())
}

/// [`run_instance`] reusing `scratch`'s buffers — the campaign workers'
/// entry point, keeping the per-trial hot path free of repeated
/// allocations. Results are bit-identical to [`run_instance`].
pub fn run_instance_with(
    cs: &CommSet,
    model: &PowerModel,
    scratch: &mut RouteScratch,
) -> InstanceOutcome {
    let mut results = Vec::with_capacity(HeuristicKind::ALL.len());
    let mut best: Option<(HeuristicKind, f64)> = None;
    for kind in HeuristicKind::ALL {
        // pamr-lint: allow(D002, reason = "per-policy wall-clock timing; micros feed the stderr progress line and the bench harness, never a byte-compared report")
        let start = Instant::now();
        let routing = kind.route_with(cs, model, scratch);
        let micros = start.elapsed().as_micros() as u64;
        let (feasible, power, breakdown) = match routing.power(cs, model) {
            Ok(b) => (true, b.total(), Some(b)),
            Err(_) => (false, f64::INFINITY, None),
        };
        if feasible && best.is_none_or(|(_, bp)| power < bp) {
            best = Some((kind, power));
        }
        results.push(HeurResult {
            kind,
            feasible,
            power,
            breakdown,
            micros,
        });
    }
    InstanceOutcome {
        results,
        best_power: best.map(|(_, p)| p),
        best_kind: best.map(|(k, _)| k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamr_mesh::{Coord, Mesh};
    use pamr_routing::Comm;

    #[test]
    fn best_is_min_over_feasible() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let out = run_instance(&cs, &model);
        assert_eq!(out.results.len(), 6);
        let best = out.best_power.unwrap();
        for r in &out.results {
            if r.feasible {
                assert!(best <= r.power + 1e-12);
                assert!((r.inv_power() - 1.0 / r.power).abs() < 1e-15);
            } else {
                assert_eq!(r.inv_power(), 0.0);
            }
        }
        // On Fig. 2, best single-path power is 56.
        assert!((best - 56.0).abs() < 1e-9);
        assert_ne!(out.best_kind, Some(HeuristicKind::Xy));
    }

    #[test]
    fn impossible_instance_reports_all_failures() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(1, 1), 9.0)],
        );
        let model = PowerModel::fig2(); // BW = 4 < 9
        let out = run_instance(&cs, &model);
        assert!(out.best_power.is_none());
        assert!(out.results.iter().all(|r| !r.feasible));
    }
}
