//! Ablation studies for the design observations of §6.4:
//!
//! * "a lower value of the ratio `P_leak/P_0` would favor PR over other
//!   heuristics" — [`leak_sweep`] scales the leakage term and watches the
//!   XYI↔PR balance flip;
//! * "it may be interesting to design multi-path heuristics" (§7) —
//!   [`smp_sweep`] runs the s-MP lift of PR for growing `s` against the
//!   single-path baseline and the Frank–Wolfe max-MP bound.

use crate::runner::run_instance_with;
use pamr_mesh::Mesh;
use pamr_power::{FrequencyScale, PowerModel};
use pamr_routing::{
    frank_wolfe, Heuristic, HeuristicKind, PathRemover, RouteScratch, SortOrder, SplitMp, TwoBend,
};
use pamr_workload::UniformWorkload;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// One row of the leakage ablation.
#[derive(Debug, Clone, Copy)]
pub struct LeakRow {
    /// The `P_leak` value used (mW).
    pub p_leak: f64,
    /// Instances where PR's power beat XYI's (both feasible).
    pub pr_wins: usize,
    /// Instances where XYI beat PR.
    pub xyi_wins: usize,
    /// Instances where both produced feasible routings.
    pub both_feasible: usize,
    /// Mean P(PR)/P(XYI) over instances where both succeeded.
    pub mean_ratio: f64,
}

/// Sweeps the leakage constant and reports how often PR beats XYI on the
/// campaign's mixed workload (30 communications, U\[100, 2500\] Mb/s).
pub fn leak_sweep(mesh: &Mesh, leaks: &[f64], trials: usize, seed: u64) -> Vec<LeakRow> {
    let gen = UniformWorkload::new(30, 100.0, 2500.0);
    leaks
        .iter()
        .map(|&p_leak| {
            let model = PowerModel {
                p_leak,
                ..PowerModel::kim_horowitz()
            };
            let (pr_wins, xyi_wins, both, ratio_sum) = (0..trials)
                .into_par_iter()
                // pamr-lint: allow(D003, reason = "the vendored rayon splits into fixed chunk boundaries and combines in order, so this float accumulation is byte-identical for every thread count")
                .fold(
                    || ((0usize, 0usize, 0usize, 0.0f64), RouteScratch::new()),
                    |(acc, mut scratch), t| {
                        let mut rng =
                            SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                        let cs = gen.generate(mesh, &mut rng);
                        let out = run_instance_with(&cs, &model, &mut scratch);
                        let pr = out.of(HeuristicKind::Pr);
                        let xyi = out.of(HeuristicKind::Xyi);
                        let d = if pr.feasible && xyi.feasible {
                            let pr_better = pr.power < xyi.power;
                            (
                                pr_better as usize,
                                !pr_better as usize,
                                1usize,
                                pr.power / xyi.power,
                            )
                        } else {
                            (0, 0, 0, 0.0)
                        };
                        (
                            (acc.0 + d.0, acc.1 + d.1, acc.2 + d.2, acc.3 + d.3),
                            scratch,
                        )
                    },
                )
                .map(|(acc, _)| acc)
                // pamr-lint: allow(D003, reason = "fixed-chunk in-order combine (vendored rayon): the sums merge in chunk order, independent of thread count")
                .reduce(
                    || (0, 0, 0, 0.0),
                    |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3),
                );
            LeakRow {
                p_leak,
                pr_wins,
                xyi_wins,
                both_feasible: both,
                mean_ratio: if both == 0 {
                    0.0
                } else {
                    ratio_sum / both as f64
                },
            }
        })
        .collect()
}

/// One row of the s-MP ablation.
#[derive(Debug, Clone, Copy)]
pub struct SmpRow {
    /// Paths allowed per communication.
    pub s: usize,
    /// Feasible instances out of `trials`.
    pub successes: usize,
    /// Mean power over instances feasible at **every** s (comparable set).
    pub mean_power: f64,
}

/// Sweeps the split factor of `SplitMp<PathRemover>` on heavy traffic
/// (12 communications, U\[2000, 3400\] Mb/s) and reports success rates and
/// mean power, plus the continuous-frequency Frank–Wolfe reference.
pub fn smp_sweep(mesh: &Mesh, ss: &[usize], trials: usize, seed: u64) -> (Vec<SmpRow>, f64) {
    let gen = UniformWorkload::new(12, 2000.0, 3400.0);
    let model = PowerModel::kim_horowitz();
    // Per trial, evaluate every s on the same instance (scratch reused
    // across the trials of a chunk).
    let chunks: Vec<Vec<(Vec<Option<f64>>, f64)>> = (0..trials)
        .into_par_iter()
        // pamr-lint: allow(D003, reason = "per-trial results are collected per fixed chunk and flattened in chunk order; no cross-thread float accumulation order is observable")
        .fold(
            || (Vec::new(), RouteScratch::new()),
            |(mut out, mut scratch), t| {
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0xD1B5_4A33));
                let cs = gen.generate(mesh, &mut rng);
                let powers: Vec<Option<f64>> = ss
                    .iter()
                    .map(|&s| {
                        let r = SplitMp::new(PathRemover, s).route_with(&cs, &model, &mut scratch);
                        r.power(&cs, &model).ok().map(|p| p.total())
                    })
                    .collect();
                let fw = frank_wolfe(
                    &cs,
                    &PowerModel {
                        scale: FrequencyScale::Continuous,
                        ..model.clone()
                    },
                    100,
                );
                out.push((powers, fw.lower_bound));
                (out, scratch)
            },
        )
        .map(|(out, _)| out)
        .collect();
    let per_trial: Vec<(Vec<Option<f64>>, f64)> = chunks.into_iter().flatten().collect();
    let mut rows: Vec<SmpRow> = ss
        .iter()
        .map(|&s| SmpRow {
            s,
            successes: 0,
            mean_power: 0.0,
        })
        .collect();
    // Comparable mean: instances where every s succeeded.
    let mut comparable = 0usize;
    let mut fw_sum = 0.0;
    for (powers, fw_lb) in &per_trial {
        for (row, p) in rows.iter_mut().zip(powers) {
            if p.is_some() {
                row.successes += 1;
            }
        }
        if powers.iter().all(Option::is_some) {
            comparable += 1;
            fw_sum += fw_lb;
            for (row, p) in rows.iter_mut().zip(powers) {
                row.mean_power += p.unwrap();
            }
        }
    }
    if comparable > 0 {
        for row in &mut rows {
            row.mean_power /= comparable as f64;
        }
        fw_sum /= comparable as f64;
    }
    (rows, fw_sum)
}

/// One row of the processing-order ablation.
#[derive(Debug, Clone, Copy)]
pub struct OrderRow {
    /// The processing order.
    pub order: SortOrder,
    /// Feasible instances out of `trials`.
    pub successes: usize,
    /// Mean power over the instances where **all** orders succeeded.
    pub mean_power: f64,
}

/// Reproduces the §5 remark "it turns out that decreasing weights gives the
/// best results": runs TB under the three processing orders on the
/// campaign's mixed workload.
pub fn order_sweep(mesh: &Mesh, trials: usize, seed: u64) -> Vec<OrderRow> {
    let gen = UniformWorkload::new(30, 100.0, 2500.0);
    let model = PowerModel::kim_horowitz();
    let orders = [
        SortOrder::DecreasingWeight,
        SortOrder::DecreasingLength,
        SortOrder::DecreasingDensity,
    ];
    let chunks: Vec<Vec<Vec<Option<f64>>>> = (0..trials)
        .into_par_iter()
        // pamr-lint: allow(D003, reason = "per-trial results are collected per fixed chunk and flattened in chunk order; no cross-thread float accumulation order is observable")
        .fold(
            || (Vec::new(), RouteScratch::new()),
            |(mut out, mut scratch), t| {
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0xBF58_476D));
                let cs = gen.generate(mesh, &mut rng);
                out.push(
                    orders
                        .iter()
                        .map(|&order| {
                            let r = TwoBend { order }.route_with(&cs, &model, &mut scratch);
                            r.power(&cs, &model).ok().map(|p| p.total())
                        })
                        .collect(),
                );
                (out, scratch)
            },
        )
        .map(|(out, _)| out)
        .collect();
    let per_trial: Vec<Vec<Option<f64>>> = chunks.into_iter().flatten().collect();
    let mut rows: Vec<OrderRow> = orders
        .iter()
        .map(|&order| OrderRow {
            order,
            successes: 0,
            mean_power: 0.0,
        })
        .collect();
    let mut comparable = 0usize;
    for powers in &per_trial {
        for (row, p) in rows.iter_mut().zip(powers) {
            if p.is_some() {
                row.successes += 1;
            }
        }
        if powers.iter().all(Option::is_some) {
            comparable += 1;
            for (row, p) in rows.iter_mut().zip(powers) {
                row.mean_power += p.unwrap();
            }
        }
    }
    if comparable > 0 {
        for row in &mut rows {
            row.mean_power /= comparable as f64;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leak_sweep_flips_towards_pr_at_low_leakage() {
        let mesh = crate::paper_mesh();
        let rows = leak_sweep(&mesh, &[0.0, 80.0], 30, 11);
        assert_eq!(rows.len(), 2);
        let low = &rows[0];
        let high = &rows[1];
        assert!(low.both_feasible > 0);
        // With zero leakage PR (which ignores static power by design)
        // should win relatively more often than with heavy leakage.
        let low_rate = low.pr_wins as f64 / low.both_feasible.max(1) as f64;
        let high_rate = high.pr_wins as f64 / high.both_feasible.max(1) as f64;
        assert!(
            low_rate >= high_rate,
            "PR win rate should not increase with leakage: {low_rate} vs {high_rate}"
        );
    }

    #[test]
    fn order_sweep_shapes() {
        let mesh = crate::paper_mesh();
        let rows = order_sweep(&mesh, 25, 5);
        assert_eq!(rows.len(), 3);
        // Decreasing weight is the paper's winner: it should not lose
        // clearly on success count.
        assert!(rows[0].successes + 3 >= rows[1].successes);
        assert!(rows[0].successes + 3 >= rows[2].successes);
    }

    #[test]
    fn smp_sweep_shapes() {
        // Note: splitting relaxes the *problem*, but SplitMp<PR> is still a
        // heuristic — its success count is not guaranteed monotone in s
        // (the ablation binary shows exactly this). We only assert sanity:
        // every s finds solutions, and on the comparable set all powers sit
        // above the continuous max-MP lower bound.
        let mesh = crate::paper_mesh();
        let (rows, fw_lb) = smp_sweep(&mesh, &[1, 2, 4], 20, 3);
        assert!(rows.iter().all(|r| r.successes > 0));
        if rows.iter().all(|r| r.mean_power > 0.0) {
            assert!(fw_lb <= rows.iter().map(|r| r.mean_power).fold(f64::MAX, f64::min));
        }
    }
}
