//! Minimal argument parsing shared by the experiment binaries.

use crate::campaign::ShardSpec;

/// Options common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct Options {
    /// Random trials per sweep point.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Directory to write CSV series into, if any.
    pub csv: Option<std::path::PathBuf>,
    /// Worker-thread override (`None` = `RAYON_NUM_THREADS` or all cores).
    pub threads: Option<usize>,
    /// The slice of sweep points this process owns (`--shard i/N`).
    pub shard: ShardSpec,
    /// Output file for machine-readable results (`--out FILE`).
    pub out: Option<std::path::PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            trials: 2000,
            seed: 0xC0FFEE,
            csv: None,
            threads: None,
            shard: ShardSpec::FULL,
            out: None,
        }
    }
}

impl Options {
    /// Parses `--trials N`, `--seed S`, `--csv DIR`, `--threads N`,
    /// `--shard i/N`, `--out FILE` from `std::env::args` and applies the
    /// thread override to the work-pool. Results never depend on the
    /// thread count — only wall-clock does.
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Options {
        Self::parse_from(std::env::args().skip(1))
    }

    /// [`Options::from_args`] over an explicit argument list — shared
    /// with the `pamr shard` subcommand so every shard entry point
    /// rejects malformed values (a typo'd `--trials`/`--seed` silently
    /// falling back to a default would only surface at merge time, after
    /// the shard runs complete).
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Options {
        let mut opts = Options::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trials" => {
                    opts.trials = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--trials needs a positive integer");
                }
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--csv" => {
                    opts.csv = Some(args.next().expect("--csv needs a directory").into());
                }
                "--shard" => {
                    let spec = args.next().expect("--shard needs i/N (e.g. 0/2)");
                    opts.shard = ShardSpec::parse(&spec).unwrap_or_else(|e| panic!("{e}"));
                }
                "--out" => {
                    opts.out = Some(args.next().expect("--out needs a file path").into());
                }
                "--threads" => {
                    let n: usize = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads needs a positive integer");
                    assert!(n > 0, "--threads must be positive");
                    opts.threads = Some(n);
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: <bin> [--trials N] [--seed S] [--csv DIR] [--threads N] \
                         [--shard i/N] [--out FILE]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?} (try --help)"),
            }
        }
        assert!(opts.trials > 0, "--trials must be positive");
        if let Some(n) = opts.threads {
            rayon::set_num_threads(n);
        }
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = Options::default();
        assert_eq!(o.trials, 2000);
        assert!(o.csv.is_none());
        assert!(o.shard.is_full());
        assert!(o.out.is_none());
    }
}
