//! Minimal argument parsing shared by the experiment binaries.

/// Options common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct Options {
    /// Random trials per sweep point.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Directory to write CSV series into, if any.
    pub csv: Option<std::path::PathBuf>,
    /// Worker-thread override (`None` = `RAYON_NUM_THREADS` or all cores).
    pub threads: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            trials: 2000,
            seed: 0xC0FFEE,
            csv: None,
            threads: None,
        }
    }
}

impl Options {
    /// Parses `--trials N`, `--seed S`, `--csv DIR`, `--threads N` from
    /// `std::env::args` and applies the thread override to the work-pool.
    /// Results never depend on the thread count — only wall-clock does.
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Options {
        let mut opts = Options::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trials" => {
                    opts.trials = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--trials needs a positive integer");
                }
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--csv" => {
                    opts.csv = Some(args.next().expect("--csv needs a directory").into());
                }
                "--threads" => {
                    let n: usize = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads needs a positive integer");
                    assert!(n > 0, "--threads must be positive");
                    opts.threads = Some(n);
                }
                "--help" | "-h" => {
                    eprintln!("usage: <bin> [--trials N] [--seed S] [--csv DIR] [--threads N]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?} (try --help)"),
            }
        }
        assert!(opts.trials > 0, "--trials must be positive");
        if let Some(n) = opts.threads {
            rayon::set_num_threads(n);
        }
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = Options::default();
        assert_eq!(o.trials, 2000);
        assert!(o.csv.is_none());
    }
}
