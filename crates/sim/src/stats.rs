//! Trial accumulators for sweep points.

use crate::runner::InstanceOutcome;
use pamr_routing::HeuristicKind;
use serde::{Deserialize, Serialize};

/// Per-policy accumulator over the trials of one sweep point.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct HeurAgg {
    /// Trials on which the policy produced a feasible routing.
    pub successes: usize,
    /// Σ (P_BEST / P_heur) over trials where BEST exists (0 on failure) —
    /// the paper's normalised power inverse.
    pub sum_norm_inv: f64,
    /// Σ 1/P_heur over all trials (0 on failure) — the absolute inverse
    /// used by the §6.4 ratios.
    pub sum_inv: f64,
    /// Σ routing wall-time (µs) over all trials.
    pub sum_micros: u64,
    /// Σ static-power fraction over successful trials.
    pub sum_static_frac: f64,
}

impl HeurAgg {
    fn absorb(&mut self, other: &HeurAgg) {
        self.successes += other.successes;
        self.sum_norm_inv += other.sum_norm_inv;
        self.sum_inv += other.sum_inv;
        self.sum_micros += other.sum_micros;
        self.sum_static_frac += other.sum_static_frac;
    }
}

/// Accumulated statistics of one sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PointStats {
    /// Number of trials accumulated.
    pub trials: usize,
    /// Trials where at least one policy succeeded (BEST exists).
    pub best_successes: usize,
    /// Σ 1/P_BEST over the trials where BEST exists — BEST's absolute
    /// inverse power pooled per trial, the §6.4 ratio's true numerator
    /// (the per-policy maximum of mean ratios is only a lower bound).
    pub sum_best_inv: f64,
    /// Σ static-power fraction of the BEST routing over the trials where
    /// BEST exists (§6.4's "successful routings").
    pub sum_best_static_frac: f64,
    /// Per-policy aggregates, in [`HeuristicKind::ALL`] order.
    pub per_heur: Vec<HeurAgg>,
}

impl Default for PointStats {
    fn default() -> Self {
        PointStats {
            trials: 0,
            best_successes: 0,
            sum_best_inv: 0.0,
            sum_best_static_frac: 0.0,
            per_heur: vec![HeurAgg::default(); HeuristicKind::ALL.len()],
        }
    }
}

impl PointStats {
    /// Folds one instance outcome into the accumulator.
    pub fn add(&mut self, out: &InstanceOutcome) {
        self.trials += 1;
        if let (Some(best), Some(kind)) = (out.best_power, out.best_kind) {
            self.best_successes += 1;
            self.sum_best_inv += 1.0 / best;
            self.sum_best_static_frac +=
                out.of(kind).breakdown.map_or(0.0, |b| b.static_fraction());
        }
        for (slot, r) in self.per_heur.iter_mut().zip(&out.results) {
            slot.sum_micros += r.micros;
            slot.sum_inv += r.inv_power();
            if r.feasible {
                slot.successes += 1;
                slot.sum_static_frac += r.breakdown.map_or(0.0, |b| b.static_fraction());
            }
            if let Some(best) = out.best_power {
                // Normalised inverse: (1/P_h)/(1/P_BEST) = P_BEST / P_h.
                slot.sum_norm_inv += if r.feasible { best / r.power } else { 0.0 };
            }
        }
    }

    /// Merges two accumulators (used by rayon's reduce).
    pub fn merge(mut self, other: PointStats) -> PointStats {
        self.trials += other.trials;
        self.best_successes += other.best_successes;
        self.sum_best_inv += other.sum_best_inv;
        self.sum_best_static_frac += other.sum_best_static_frac;
        for (a, b) in self.per_heur.iter_mut().zip(&other.per_heur) {
            a.absorb(b);
        }
        self
    }

    /// Mean normalised power inverse of a policy (the y-value of the
    /// paper's upper plots), averaged over the trials where BEST exists.
    pub fn norm_inv(&self, kind: HeuristicKind) -> f64 {
        let agg = &self.per_heur[Self::idx(kind)];
        if self.best_successes == 0 {
            0.0
        } else {
            agg.sum_norm_inv / self.best_successes as f64
        }
    }

    /// Failure ratio of a policy (the y-value of the paper's lower plots).
    pub fn failure_ratio(&self, kind: HeuristicKind) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            1.0 - self.per_heur[Self::idx(kind)].successes as f64 / self.trials as f64
        }
    }

    /// Failure ratio of BEST (all policies fail).
    pub fn best_failure_ratio(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            1.0 - self.best_successes as f64 / self.trials as f64
        }
    }

    /// Mean routing time of a policy in milliseconds.
    pub fn mean_millis(&self, kind: HeuristicKind) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.per_heur[Self::idx(kind)].sum_micros as f64 / self.trials as f64 / 1000.0
        }
    }

    /// Mean absolute inverse power of a policy over all trials.
    pub fn mean_inv(&self, kind: HeuristicKind) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.per_heur[Self::idx(kind)].sum_inv / self.trials as f64
        }
    }

    /// Mean absolute inverse power of BEST over all trials (0 contribution
    /// from trials where every policy fails — same convention as
    /// [`PointStats::mean_inv`], so the §6.4 ratios compare like with like).
    pub fn best_mean_inv(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.sum_best_inv / self.trials as f64
        }
    }

    /// Mean static-power fraction of the BEST routing over the trials where
    /// a routing succeeded (§6.4's "successful routings").
    pub fn best_mean_static_fraction(&self) -> f64 {
        if self.best_successes == 0 {
            0.0
        } else {
            self.sum_best_static_frac / self.best_successes as f64
        }
    }

    /// Mean static-power fraction of a policy over its successful trials.
    pub fn mean_static_fraction(&self, kind: HeuristicKind) -> f64 {
        let agg = &self.per_heur[Self::idx(kind)];
        if agg.successes == 0 {
            0.0
        } else {
            agg.sum_static_frac / agg.successes as f64
        }
    }

    fn idx(kind: HeuristicKind) -> usize {
        HeuristicKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind in ALL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_instance;
    use pamr_mesh::{Coord, Mesh};
    use pamr_power::PowerModel;
    use pamr_routing::{Comm, CommSet};

    fn outcome() -> InstanceOutcome {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        run_instance(&cs, &PowerModel::fig2())
    }

    #[test]
    fn accumulation_and_ratios() {
        let mut ps = PointStats::default();
        ps.add(&outcome());
        ps.add(&outcome());
        assert_eq!(ps.trials, 2);
        assert_eq!(ps.best_successes, 2);
        // XY is feasible on Fig. 2 (exactly at capacity): norm inv = 56/128.
        let xy = ps.norm_inv(HeuristicKind::Xy);
        assert!((xy - 56.0 / 128.0).abs() < 1e-9, "{xy}");
        assert_eq!(ps.failure_ratio(HeuristicKind::Xy), 0.0);
        // The best policy scores exactly 1.
        let max = HeuristicKind::ALL
            .iter()
            .map(|&k| ps.norm_inv(k))
            .fold(0.0, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert_eq!(ps.best_failure_ratio(), 0.0);
        // BEST's pooled absolute inverse: both trials route at power 56.
        assert!((ps.sum_best_inv - 2.0 / 56.0).abs() < 1e-15);
        assert!((ps.best_mean_inv() - 1.0 / 56.0).abs() < 1e-15);
        // BEST's inverse dominates every policy's pooled inverse.
        for k in HeuristicKind::ALL {
            assert!(ps.best_mean_inv() >= ps.mean_inv(k) - 1e-15, "{k}");
        }
        // The BEST static fraction is a real per-trial mean (0 here: the
        // Fig. 2 model has no leakage term).
        let sf = ps.best_mean_static_fraction();
        assert!((0.0..1.0).contains(&sf), "{sf}");
    }

    #[test]
    fn merge_is_additive() {
        let mut a = PointStats::default();
        a.add(&outcome());
        let mut b = PointStats::default();
        b.add(&outcome());
        b.add(&outcome());
        let m = a.merge(b);
        assert_eq!(m.trials, 3);
        assert_eq!(m.best_successes, 3);
        assert!((m.sum_best_inv - 3.0 / 56.0).abs() < 1e-15);
    }

    #[test]
    fn zero_trials_edge_cases() {
        let ps = PointStats::default();
        assert_eq!(ps.norm_inv(HeuristicKind::Pr), 0.0);
        assert_eq!(ps.failure_ratio(HeuristicKind::Pr), 0.0);
        assert_eq!(ps.mean_millis(HeuristicKind::Pr), 0.0);
        assert_eq!(ps.mean_static_fraction(HeuristicKind::Pr), 0.0);
        assert_eq!(ps.best_mean_inv(), 0.0);
        assert_eq!(ps.best_mean_static_fraction(), 0.0);
    }
}
