//! Cross-process shard-and-merge for the §6 campaign.
//!
//! One process per shard runs [`ShardPartial::run`] over the sweep points
//! it owns (`p % count == index`, see [`ShardSpec`]) and serialises the
//! per-point statistics to JSON (`pamr shard --shard i/N --out part_i.json`).
//! A merge step ([`merge_partials`], `pamr merge part_*.json`) recombines
//! the partials and renders the identical §6.4 report.
//!
//! **Byte-determinism.** Two properties make the recombination exact, the
//! same associative-merge structure Pettersson & Ozlen (arXiv:1701.08920)
//! exploit for parallel bi-objective sweeps:
//!
//! * every trial's seed depends only on `(experiment, point, trial)`
//!   indices, so a shard's per-point [`PointStats`] are bit-equal to the
//!   single-process run's;
//! * the merge replays the single-process pooling order — canonical
//!   figure → experiment → point — rather than folding whole shards, so
//!   the floating-point addition sequence is identical, not merely
//!   mathematically equivalent;
//! * the JSON round trip is exact (shortest round-trip float formatting).
//!
//! Hence `pamr shard` × N + `pamr merge` reproduces `summary`'s stdout
//! byte-for-byte, which the CI `shard-merge` job enforces with `diff`.

use crate::campaign::{experiment_seed, Campaign, ShardSpec};
use crate::experiments::{campaign_figures, ExperimentResult};
use crate::stats::PointStats;
use crate::summary::Summary;
use pamr_mesh::Mesh;
use pamr_power::PowerModel;
use pamr_routing::HeuristicKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Format version of the partial-result JSON.
pub const PARTIAL_SCHEMA: u32 = 1;

/// One sweep point's statistics, addressed by its canonical campaign
/// coordinates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartialPoint {
    /// Figure group index (0 = fig7, 1 = fig8, 2 = fig9).
    pub figure: usize,
    /// Experiment index within the figure group.
    pub experiment: usize,
    /// Experiment id (`"fig7a"`, ...), for validation and readability.
    pub exp_id: String,
    /// Sweep-point index within the experiment.
    pub point_index: usize,
    /// The x-value the paper plots.
    pub x: f64,
    /// The accumulated trial statistics of this point.
    pub stats: PointStats,
}

/// The serialisable output of one shard of the pooled §6 campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardPartial {
    /// Format version ([`PARTIAL_SCHEMA`]).
    pub schema: u32,
    /// This shard's index.
    pub shard_index: usize,
    /// Total number of shards in the campaign.
    pub shard_count: usize,
    /// Trials per sweep point.
    pub trials: usize,
    /// Master seed of the campaign.
    pub seed: u64,
    /// Owned sweep points, in canonical figure → experiment → point order.
    pub points: Vec<PartialPoint>,
}

impl ShardPartial {
    /// Runs this shard's slice of the full §6 campaign (all nine
    /// sub-figures, every owned sweep point).
    pub fn run(
        mesh: &Mesh,
        model: &PowerModel,
        trials: usize,
        seed: u64,
        shard: ShardSpec,
    ) -> ShardPartial {
        let mut points = Vec::new();
        // One shared precompute across every figure/experiment this shard
        // owns — same sharing as the pooled campaign, with no effect on the
        // bit-identity of the partials (tables are pure per-endpoint data).
        let pre = std::sync::Arc::new(pamr_routing::MeshPrecompute::new(*mesh));
        for (fi, fig) in campaign_figures().into_iter().enumerate() {
            for (ei, exp) in fig.iter().enumerate() {
                let sub = Campaign {
                    mesh,
                    model,
                    trials,
                    seed: experiment_seed(seed, fi, ei),
                    shard,
                    pre: Some(&pre),
                    engine: pamr_routing::EngineConfig::LIVE,
                };
                for (pi, point) in exp.points.iter().enumerate() {
                    if shard.owns(pi) {
                        points.push(PartialPoint {
                            figure: fi,
                            experiment: ei,
                            exp_id: exp.id.to_string(),
                            point_index: pi,
                            x: point.x,
                            stats: sub.run_point(pi, point),
                        });
                    }
                }
            }
        }
        ShardPartial {
            schema: PARTIAL_SCHEMA,
            shard_index: shard.index,
            shard_count: shard.count,
            trials,
            seed,
            points,
        }
    }

    /// Serialises to the on-disk JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("partial serialises")
    }

    /// Parses the on-disk JSON form.
    pub fn from_json(text: &str) -> Result<ShardPartial, MergeError> {
        serde_json::from_str(text).map_err(|e| MergeError::Parse(e.to_string()))
    }
}

/// Why a set of shard partials cannot be recombined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No partials were given.
    Empty,
    /// A partial did not parse as JSON of the expected shape.
    Parse(String),
    /// A partial uses an unknown format version.
    Schema {
        /// Version found in the file.
        found: u32,
    },
    /// The partials disagree on trials, seed or shard count.
    Inconsistent(String),
    /// The same shard index appears twice.
    DuplicateShard(usize),
    /// Fewer partials than `shard_count` were given.
    MissingShards(Vec<usize>),
    /// A sweep point is missing, duplicated, or foreign to its shard.
    BadPoint(String),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no shard partials to merge"),
            MergeError::Parse(e) => write!(f, "cannot parse shard partial: {e}"),
            MergeError::Schema { found } => {
                write!(
                    f,
                    "unknown partial schema {found} (expected {PARTIAL_SCHEMA})"
                )
            }
            MergeError::Inconsistent(what) => {
                write!(f, "shard partials from different campaigns: {what}")
            }
            MergeError::DuplicateShard(i) => write!(f, "shard {i} appears more than once"),
            MergeError::MissingShards(missing) => {
                write!(f, "missing shard partial(s): {missing:?}")
            }
            MergeError::BadPoint(what) => write!(f, "bad sweep point: {what}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// The recombined campaign: the pooled accumulator plus its provenance.
#[derive(Debug, Clone)]
pub struct MergedCampaign {
    /// Trials per sweep point.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// How many shards were recombined.
    pub shard_count: usize,
    /// Every trial of every sweep point, pooled in canonical order.
    pub pooled: PointStats,
}

impl MergedCampaign {
    /// The §6.4 summary view of the recombined campaign.
    pub fn summary(self) -> Summary {
        Summary::from_pooled(self.pooled)
    }
}

/// One sweep point of the fully-validated canonical campaign grid, in
/// figure → experiment → point order.
struct GridPoint<'a> {
    figure: usize,
    experiment: usize,
    x: f64,
    stats: &'a PointStats,
}

/// Campaign header of a validated partial set: `(trials, seed, shard
/// count)`.
type CampaignHeader = (usize, u64, usize);

/// Validates a set of shard partials (same checks as [`merge_partials`])
/// and returns every sweep point of the campaign grid in canonical
/// figure → experiment → point order, together with the campaign header.
fn validate_and_order(
    partials: &[ShardPartial],
) -> Result<(CampaignHeader, Vec<GridPoint<'_>>), MergeError> {
    let first = partials.first().ok_or(MergeError::Empty)?;
    for p in partials {
        if p.schema != PARTIAL_SCHEMA {
            return Err(MergeError::Schema { found: p.schema });
        }
        if p.trials != first.trials {
            return Err(MergeError::Inconsistent(format!(
                "trials {} vs {}",
                p.trials, first.trials
            )));
        }
        if p.seed != first.seed {
            return Err(MergeError::Inconsistent(format!(
                "seed {} vs {}",
                p.seed, first.seed
            )));
        }
        if p.shard_count != first.shard_count {
            return Err(MergeError::Inconsistent(format!(
                "shard count {} vs {}",
                p.shard_count, first.shard_count
            )));
        }
        if p.shard_index >= p.shard_count {
            return Err(MergeError::Inconsistent(format!(
                "shard index {} out of range 0..{}",
                p.shard_index, p.shard_count
            )));
        }
    }
    let count = first.shard_count;
    let mut present = vec![false; count];
    for p in partials {
        if std::mem::replace(&mut present[p.shard_index], true) {
            return Err(MergeError::DuplicateShard(p.shard_index));
        }
    }
    let missing: Vec<usize> = (0..count).filter(|&i| !present[i]).collect();
    if !missing.is_empty() {
        return Err(MergeError::MissingShards(missing));
    }

    // Index every delivered point by its canonical coordinates. Ordered so
    // the stray-point error below always names the smallest coordinate.
    let mut by_coord: std::collections::BTreeMap<(usize, usize, usize), &PartialPoint> =
        std::collections::BTreeMap::new();
    for p in partials {
        let shard = ShardSpec::new(p.shard_index, count);
        for pt in &p.points {
            if !shard.owns(pt.point_index) {
                return Err(MergeError::BadPoint(format!(
                    "{} point {} delivered by shard {} which does not own it",
                    pt.exp_id, pt.point_index, p.shard_index
                )));
            }
            // Validate the statistics payload itself: a hand-edited or
            // version-skewed partial with the wrong policy count (or a
            // trial count disagreeing with the header) would otherwise
            // merge silently into a wrong report, because
            // `PointStats::merge` zips per-policy slots positionally.
            if pt.stats.per_heur.len() != HeuristicKind::ALL.len() {
                return Err(MergeError::BadPoint(format!(
                    "{} point {} carries {} per-policy aggregates, expected {}",
                    pt.exp_id,
                    pt.point_index,
                    pt.stats.per_heur.len(),
                    HeuristicKind::ALL.len()
                )));
            }
            if pt.stats.trials != first.trials {
                return Err(MergeError::BadPoint(format!(
                    "{} point {} accumulated {} trials, expected {}",
                    pt.exp_id, pt.point_index, pt.stats.trials, first.trials
                )));
            }
            if by_coord
                .insert((pt.figure, pt.experiment, pt.point_index), pt)
                .is_some()
            {
                return Err(MergeError::BadPoint(format!(
                    "{} point {} delivered twice",
                    pt.exp_id, pt.point_index
                )));
            }
        }
    }

    // Walk the canonical grid, consuming every delivered point.
    let mut ordered = Vec::with_capacity(by_coord.len());
    for (fi, fig) in campaign_figures().into_iter().enumerate() {
        for (ei, exp) in fig.iter().enumerate() {
            for (pi, point) in exp.points.iter().enumerate() {
                let pt = by_coord.remove(&(fi, ei, pi)).ok_or_else(|| {
                    MergeError::BadPoint(format!("{} point {pi} missing", exp.id))
                })?;
                if pt.exp_id != exp.id {
                    return Err(MergeError::BadPoint(format!(
                        "coordinate ({fi},{ei}) labelled {:?}, expected {:?}",
                        pt.exp_id, exp.id
                    )));
                }
                if pt.x.to_bits() != point.x.to_bits() {
                    return Err(MergeError::BadPoint(format!(
                        "{} point {pi} has x = {}, expected {}",
                        exp.id, pt.x, point.x
                    )));
                }
                ordered.push(GridPoint {
                    figure: fi,
                    experiment: ei,
                    x: pt.x,
                    stats: &pt.stats,
                });
            }
        }
    }
    if let Some(stray) = by_coord.keys().next() {
        return Err(MergeError::BadPoint(format!(
            "unknown sweep point at coordinate {stray:?}"
        )));
    }
    Ok(((first.trials, first.seed, count), ordered))
}

/// Recombines the partials of a sharded campaign.
///
/// Validates that the partials form one complete, consistent campaign
/// (same schema/trials/seed/shard count, every shard present exactly once,
/// every sweep point of every experiment covered exactly once by its
/// owning shard), then pools the per-point statistics in the canonical
/// figure → experiment → point order — the exact addition sequence of
/// [`Campaign::run_pooled`], so the result is bit-identical to the
/// single-process run.
pub fn merge_partials(partials: &[ShardPartial]) -> Result<MergedCampaign, MergeError> {
    let ((trials, seed, shard_count), ordered) = validate_and_order(partials)?;
    let mut pooled = PointStats::default();
    for pt in ordered {
        pooled = pooled.merge(pt.stats.clone());
    }
    Ok(MergedCampaign {
        trials,
        seed,
        shard_count,
        pooled,
    })
}

/// Recombines the partials of a sharded campaign into per-figure
/// [`ExperimentResult`] tables — the inputs of the Figure 7–9 renderers —
/// instead of the pooled §6.4 accumulator.
///
/// Returns one `Vec<ExperimentResult>` per figure group, in the canonical
/// fig7 → fig8 → fig9 order, after the same completeness and consistency
/// validation as [`merge_partials`]. Every per-point statistic is the
/// bit-exact value the unsharded campaign computes (per-point trial seeds
/// depend only on indices), so tables rendered from the recombined results
/// equal the unsharded tables byte for byte — `crates/sim/tests/
/// shard_figures.rs` gates this for 2- and 3-shard runs.
///
/// Note the pooled-campaign seeding: experiment `(fi, ei)` runs under
/// [`experiment_seed`]`(seed, fi, ei)`, exactly like `pamr shard` /
/// [`Campaign::run_pooled`] — not like the standalone `fig7` binary, which
/// feeds its master seed to every experiment unchanged.
pub fn merge_figures(partials: &[ShardPartial]) -> Result<Vec<Vec<ExperimentResult>>, MergeError> {
    let (_, ordered) = validate_and_order(partials)?;
    let mut figures: Vec<Vec<ExperimentResult>> = campaign_figures()
        .into_iter()
        .map(|fig| {
            fig.iter()
                .map(|exp| ExperimentResult {
                    id: exp.id,
                    points: Vec::with_capacity(exp.points.len()),
                })
                .collect()
        })
        .collect();
    for pt in ordered {
        figures[pt.figure][pt.experiment]
            .points
            .push((pt.x, pt.stats.clone()));
    }
    Ok(figures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_partial() -> ShardPartial {
        ShardPartial::run(
            &crate::paper_mesh(),
            &crate::paper_model(),
            1,
            5,
            ShardSpec::FULL,
        )
    }

    #[test]
    fn full_partial_covers_the_whole_grid() {
        let p = tiny_partial();
        let expected: usize = campaign_figures()
            .iter()
            .flatten()
            .map(|e| e.points.len())
            .sum();
        assert_eq!(p.points.len(), expected);
        let merged = merge_partials(std::slice::from_ref(&p)).unwrap();
        assert_eq!(merged.pooled.trials, expected);
    }

    #[test]
    fn merge_rejects_broken_partial_sets() {
        let p = tiny_partial();
        assert!(matches!(merge_partials(&[]), Err(MergeError::Empty)));
        // Duplicate shard.
        let err = merge_partials(&[p.clone(), p.clone()]).unwrap_err();
        assert_eq!(err, MergeError::DuplicateShard(0));
        // Missing shard.
        let mut half = p.clone();
        half.shard_count = 2;
        let err = merge_partials(std::slice::from_ref(&half)).unwrap_err();
        assert_eq!(err, MergeError::MissingShards(vec![1]));
        // Inconsistent campaigns.
        let mut other_seed = p.clone();
        other_seed.seed ^= 1;
        other_seed.shard_index = 1;
        other_seed.shard_count = 2;
        let mut first = p.clone();
        first.shard_count = 2;
        assert!(matches!(
            merge_partials(&[first, other_seed]).unwrap_err(),
            MergeError::Inconsistent(_)
        ));
        // Tampered point ownership.
        let mut bad = p.clone();
        bad.points[0].point_index += 1;
        assert!(matches!(
            merge_partials(std::slice::from_ref(&bad)).unwrap_err(),
            MergeError::BadPoint(_)
        ));
        // Tampered per-policy payload (wrong aggregate count).
        let mut skewed = p.clone();
        skewed.points[0].stats.per_heur.pop();
        assert!(matches!(
            merge_partials(std::slice::from_ref(&skewed)).unwrap_err(),
            MergeError::BadPoint(_)
        ));
        // Per-point trial count disagreeing with the header.
        let mut short = p.clone();
        short.points[0].stats.trials += 1;
        assert!(matches!(
            merge_partials(std::slice::from_ref(&short)).unwrap_err(),
            MergeError::BadPoint(_)
        ));
        // Unknown schema.
        let mut vx = p;
        vx.schema = 99;
        assert!(matches!(
            merge_partials(std::slice::from_ref(&vx)).unwrap_err(),
            MergeError::Schema { found: 99 }
        ));
    }
}
