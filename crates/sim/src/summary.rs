//! The §6.4 aggregate statistics: success rates, inverse-power ratios
//! versus XY, static-power fraction, mean runtimes.

use crate::campaign::{Campaign, ShardSpec};
use crate::stats::PointStats;
use pamr_mesh::Mesh;
use pamr_power::PowerModel;
use pamr_routing::{EngineConfig, HeuristicKind};
use std::fmt::Write as _;

/// Aggregate statistics over the union of all §6 experiments.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Pooled accumulator over every trial of every sweep point.
    pub pooled: PointStats,
}

impl Summary {
    /// Runs the full campaign (all nine sub-figures) with `trials` per
    /// sweep point and pools every trial.
    pub fn run(mesh: &Mesh, model: &PowerModel, trials: usize, seed: u64) -> Summary {
        Summary::run_with(mesh, model, trials, seed, EngineConfig::LIVE)
    }

    /// [`Summary::run`] with an explicit engine selection — the handle the
    /// differential suites use to replay the whole campaign on the
    /// reference engines and diff the reports byte-for-byte.
    pub fn run_with(
        mesh: &Mesh,
        model: &PowerModel,
        trials: usize,
        seed: u64,
        engine: EngineConfig,
    ) -> Summary {
        // One shared precompute for the whole campaign: the endpoint tables
        // built by fig7's trials are cache hits for fig8's and fig9's.
        let pre = std::sync::Arc::new(pamr_routing::MeshPrecompute::new(*mesh));
        let pooled = Campaign {
            mesh,
            model,
            trials,
            seed,
            shard: ShardSpec::FULL,
            pre: Some(&pre),
            engine,
        }
        .run_pooled();
        Summary { pooled }
    }

    /// Wraps an already-pooled accumulator (e.g. one recombined from shard
    /// partials by [`crate::shard::merge_partials`]).
    pub fn from_pooled(pooled: PointStats) -> Summary {
        Summary { pooled }
    }

    /// Success rate of a policy (the paper reports XY ≈ 15%, XYI ≈ 46%,
    /// PR ≈ 50%).
    pub fn success_rate(&self, kind: HeuristicKind) -> f64 {
        1.0 - self.pooled.failure_ratio(kind)
    }

    /// Success rate of BEST (paper: ≈ 51%).
    pub fn best_success_rate(&self) -> f64 {
        1.0 - self.pooled.best_failure_ratio()
    }

    /// Ratio of a policy's mean absolute inverse power to XY's (paper:
    /// XYI ≈ 2.44, PR ≈ 2.57).
    pub fn inv_power_ratio_vs_xy(&self, kind: HeuristicKind) -> f64 {
        let xy = self.pooled.mean_inv(HeuristicKind::Xy);
        if xy == 0.0 {
            f64::INFINITY
        } else {
            self.pooled.mean_inv(kind) / xy
        }
    }

    /// Ratio of BEST's mean inverse power to XY's (paper: ≈ 2.95).
    ///
    /// BEST's absolute inverse power (1/P_BEST, 0 when every policy fails)
    /// is pooled per trial in [`PointStats::sum_best_inv`]; the ratio of
    /// per-trial means is the paper's statistic. The maximum over the
    /// per-policy ratios — the previous implementation — is only a lower
    /// bound: on each trial BEST takes the per-policy max *before*
    /// averaging, so it strictly dominates whenever different policies win
    /// different trials.
    pub fn best_inv_power_ratio_vs_xy(&self) -> f64 {
        let xy = self.pooled.mean_inv(HeuristicKind::Xy);
        if xy == 0.0 {
            f64::INFINITY
        } else {
            self.pooled.best_mean_inv() / xy
        }
    }

    /// Mean static-power fraction over successful routings (paper: ≈ 1/7).
    ///
    /// §6.4 reports the fraction "over the successful routings": one
    /// routing per solved instance — the BEST one — not one sample per
    /// policy per instance. Pooling every policy's successful attempt (the
    /// previous denominator) over-weights instances that many policies
    /// solve and skews the mean toward the easy cases.
    pub fn static_fraction(&self) -> f64 {
        self.pooled.best_mean_static_fraction()
    }

    /// Renders the §6.4 comparison table: paper value vs measured.
    ///
    /// Contains only seed-determined quantities: given the same seed the
    /// text is byte-identical at any thread count. Wall-clock figures live
    /// in [`Summary::render_timings`], which the binary prints to stderr.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "§6.4 summary statistics (paper → measured)");
        let _ = writeln!(s, "------------------------------------------");
        let rows = [
            (
                "XY success rate",
                0.15,
                self.success_rate(HeuristicKind::Xy),
            ),
            (
                "XYI success rate",
                0.46,
                self.success_rate(HeuristicKind::Xyi),
            ),
            (
                "PR success rate",
                0.50,
                self.success_rate(HeuristicKind::Pr),
            ),
            ("BEST success rate", 0.51, self.best_success_rate()),
            (
                "XYI inv-power ratio vs XY",
                2.44,
                self.inv_power_ratio_vs_xy(HeuristicKind::Xyi),
            ),
            (
                "PR inv-power ratio vs XY",
                2.57,
                self.inv_power_ratio_vs_xy(HeuristicKind::Pr),
            ),
            (
                "BEST inv-power ratio vs XY",
                2.95,
                self.best_inv_power_ratio_vs_xy(),
            ),
            ("static power fraction", 1.0 / 7.0, self.static_fraction()),
        ];
        for (name, paper, ours) in rows {
            let _ = writeln!(s, "{name:<30} {paper:>8.3} → {ours:>8.3}");
        }
        s
    }

    /// The full deterministic stdout report of the `summary` binary: the
    /// §6.4 table plus the pooled-instance count. `pamr merge` prints the
    /// same string, so a sharded campaign reproduces the single-process
    /// report byte-for-byte (the CI `shard-merge` job diffs the two).
    pub fn render_report(&self) -> String {
        format!(
            "{}\npooled over {} instances\n",
            self.render(),
            self.pooled.trials
        )
    }

    /// Renders the measured mean routing times. Kept apart from
    /// [`Summary::render`] because wall-clock numbers vary run to run and
    /// would break the byte-identical determinism contract of the report.
    pub fn render_timings(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "mean routing time (paper: XYI 24 ms, PR 38 ms; different hardware)"
        );
        for k in [HeuristicKind::Xyi, HeuristicKind::Pr] {
            let _ = writeln!(s, "{:<30} {:>8.3} ms", k.name(), self.pooled.mean_millis(k));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_summary_has_paper_shape() {
        let mesh = crate::paper_mesh();
        let model = crate::paper_model();
        // Tiny trial count: we check orderings, not absolute values.
        let s = Summary::run(&mesh, &model, 3, 7);
        assert!(s.pooled.trials > 0);
        // The paper's headline hierarchy: XY finds far fewer solutions than
        // the Manhattan heuristics; BEST dominates everything.
        let xy = s.success_rate(HeuristicKind::Xy);
        let pr = s.success_rate(HeuristicKind::Pr);
        let best = s.best_success_rate();
        assert!(pr > xy, "PR ({pr}) should beat XY ({xy})");
        assert!(best + 1e-12 >= pr);
        for k in HeuristicKind::ALL {
            assert!(s.success_rate(k) <= best + 1e-12);
        }
        // Inverse-power ratios vs XY exceed 1 for the good heuristics.
        assert!(s.inv_power_ratio_vs_xy(HeuristicKind::Pr) > 1.0);
        // The pooled BEST ratio dominates every per-policy ratio (it was
        // previously silently substituted by their maximum — a lower
        // bound).
        let best_ratio = s.best_inv_power_ratio_vs_xy();
        for k in HeuristicKind::ALL {
            assert!(
                best_ratio + 1e-12 >= s.inv_power_ratio_vs_xy(k),
                "BEST ratio {best_ratio} below {k}'s"
            );
        }
        // Static fraction lands in a plausible band around 1/7.
        let sf = s.static_fraction();
        assert!(sf > 0.02 && sf < 0.5, "static fraction {sf}");
        let rendered = s.render();
        assert!(rendered.contains("BEST inv-power ratio"));
    }
}
