//! The figure definitions of §6 (the sweep runner lives in
//! [`crate::campaign`]).

use crate::campaign::{Campaign, ShardSpec};
use crate::stats::PointStats;
use pamr_mesh::Mesh;
use pamr_power::PowerModel;
use pamr_routing::CommSet;
use pamr_workload::{LengthTargetedWorkload, UniformWorkload};
use rand::rngs::SmallRng;
use serde::Serialize;

/// The workload of one sweep point.
#[derive(Debug, Clone, Copy, Serialize)]
pub enum WorkloadSpec {
    /// Uniform random sources/sinks and weights (Figures 7 & 8).
    Uniform(UniformWorkload),
    /// Length-targeted source/sink pairs (Figure 9).
    Length(LengthTargetedWorkload),
}

impl WorkloadSpec {
    /// Draws one instance.
    pub fn generate(&self, mesh: &Mesh, rng: &mut SmallRng) -> CommSet {
        match self {
            WorkloadSpec::Uniform(w) => w.generate(mesh, rng),
            WorkloadSpec::Length(w) => w.generate(mesh, rng),
        }
    }
}

/// One x-position of a figure.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SweepPoint {
    /// The x-value the paper plots (number / average weight / length).
    pub x: f64,
    /// The generator at this x.
    pub workload: WorkloadSpec,
}

/// One sub-figure: an id, a description and its sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Experiment {
    /// Short id, e.g. `"fig7a"`.
    pub id: &'static str,
    /// Human-readable title (the paper's caption).
    pub title: &'static str,
    /// Label of the swept parameter.
    pub xlabel: &'static str,
    /// The sweep.
    pub points: Vec<SweepPoint>,
}

/// Results of a full sweep: per point, the accumulated statistics.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// The experiment id.
    pub id: &'static str,
    /// `(x, stats)` per sweep point.
    pub points: Vec<(f64, PointStats)>,
}

/// Figure 7: sensitivity to the **number** of communications.
///
/// * (a) small weights U\[100, 1500\] Mb/s, n ∈ 10..140;
/// * (b) mixed weights U\[100, 2500\], n ∈ 5..70;
/// * (c) big weights U\[2500, 3500\], n ∈ 2..30.
pub fn fig7() -> Vec<Experiment> {
    let mk = |id, title, w_min, w_max, ns: Vec<usize>| Experiment {
        id,
        title,
        xlabel: "number of communications",
        points: ns
            .into_iter()
            .map(|n| SweepPoint {
                x: n as f64,
                workload: WorkloadSpec::Uniform(UniformWorkload::new(n, w_min, w_max)),
            })
            .collect(),
    };
    vec![
        mk(
            "fig7a",
            "small communications (U[100,1500] Mb/s)",
            100.0,
            1500.0,
            (1..=14).map(|k| 10 * k).collect(),
        ),
        mk(
            "fig7b",
            "mixed communications (U[100,2500] Mb/s)",
            100.0,
            2500.0,
            (1..=14).map(|k| 5 * k).collect(),
        ),
        mk(
            "fig7c",
            "big communications (U[2500,3500] Mb/s)",
            2500.0,
            3500.0,
            (1..=15).map(|k| 2 * k).collect(),
        ),
    ]
}

/// Figure 8: sensitivity to the **size** (weight) of communications.
///
/// The paper's sharp performance cliff at 1750 Mb/s ("as soon as the weight
/// of every communication reaches 1751 Mb/s, two communications cannot
/// share the same link") implies a narrow weight distribution per point; we
/// draw every weight exactly at the swept average (documented in
/// DESIGN.md).
///
/// * (a) 10 communications, w̄ ∈ 100..3500;
/// * (b) 20 communications, same sweep;
/// * (c) 40 communications, w̄ ∈ 100..1800.
pub fn fig8() -> Vec<Experiment> {
    let mk = |id, title, n: usize, ws: Vec<usize>| Experiment {
        id,
        title,
        xlabel: "average weight (Mb/s)",
        points: ws
            .into_iter()
            .map(|w| SweepPoint {
                x: w as f64,
                workload: WorkloadSpec::Uniform(UniformWorkload::new(n, w as f64, w as f64)),
            })
            .collect(),
    };
    vec![
        mk(
            "fig8a",
            "few communications (10)",
            10,
            (1..=14).map(|k| 250 * k).collect(),
        ),
        mk(
            "fig8b",
            "some communications (20)",
            20,
            (1..=14).map(|k| 250 * k).collect(),
        ),
        mk(
            "fig8c",
            "numerous communications (40)",
            40,
            (1..=12).map(|k| 150 * k).collect(),
        ),
    ]
}

/// Figure 9: sensitivity to the average **length** of communications.
///
/// * (a) 100 small communications U\[200, 800\];
/// * (b) 25 mixed communications U\[100, 3500\];
/// * (c) 12 big communications U\[2700, 3300\];
///
/// lengths swept over 2..14 (the 8×8 diameter).
pub fn fig9() -> Vec<Experiment> {
    let mk = |id, title, n: usize, w_min: f64, w_max: f64| Experiment {
        id,
        title,
        xlabel: "average length",
        points: (2..=14)
            .map(|len| SweepPoint {
                x: len as f64,
                workload: WorkloadSpec::Length(LengthTargetedWorkload::new(n, w_min, w_max, len)),
            })
            .collect(),
    };
    vec![
        mk(
            "fig9a",
            "numerous small communications (100, U[200,800])",
            100,
            200.0,
            800.0,
        ),
        mk(
            "fig9b",
            "some mid-weighted communications (25, U[100,3500])",
            25,
            100.0,
            3500.0,
        ),
        mk(
            "fig9c",
            "few big communications (12, U[2700,3300])",
            12,
            2700.0,
            3300.0,
        ),
    ]
}

/// The canonical figure groups of the pooled §6 campaign, in pooling
/// order. Single source of truth for [`Campaign::run_pooled`] and the
/// shard merge ([`crate::shard`]): both must walk the identical
/// figure → experiment → point sequence for the byte-identity contract
/// to hold.
pub fn campaign_figures() -> [Vec<Experiment>; 3] {
    [fig7(), fig8(), fig9()]
}

/// Runs one experiment: `trials` random instances per sweep point, in
/// parallel, deterministically derived from `seed` (a thin wrapper over
/// [`Campaign::run_experiment`]).
pub fn run_experiment(
    exp: &Experiment,
    mesh: &Mesh,
    model: &PowerModel,
    trials: usize,
    seed: u64,
) -> ExperimentResult {
    run_experiment_sharded(exp, mesh, model, trials, seed, ShardSpec::FULL)
}

/// [`run_experiment`] restricted to the sweep points owned by `shard`
/// (`p % shard.count == shard.index`). Per-point statistics are bit-equal
/// to the unsharded run's; only the non-owned points are absent.
pub fn run_experiment_sharded(
    exp: &Experiment,
    mesh: &Mesh,
    model: &PowerModel,
    trials: usize,
    seed: u64,
    shard: ShardSpec,
) -> ExperimentResult {
    let pre = std::sync::Arc::new(pamr_routing::MeshPrecompute::new(*mesh));
    Campaign {
        mesh,
        model,
        trials,
        seed,
        shard,
        pre: Some(&pre),
        engine: pamr_routing::EngineConfig::LIVE,
    }
    .run_experiment(exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamr_routing::HeuristicKind;

    #[test]
    fn figure_definitions_cover_paper_ranges() {
        let f7 = fig7();
        assert_eq!(f7.len(), 3);
        assert_eq!(f7[0].points.last().unwrap().x, 140.0);
        assert_eq!(f7[1].points.last().unwrap().x, 70.0);
        assert_eq!(f7[2].points.last().unwrap().x, 30.0);
        let f8 = fig8();
        assert_eq!(f8[0].points.last().unwrap().x, 3500.0);
        assert_eq!(f8[2].points.last().unwrap().x, 1800.0);
        let f9 = fig9();
        for e in &f9 {
            assert_eq!(e.points.first().unwrap().x, 2.0);
            assert_eq!(e.points.last().unwrap().x, 14.0);
        }
    }

    #[test]
    fn small_sweep_runs_and_is_deterministic() {
        let mesh = crate::paper_mesh();
        let model = crate::paper_model();
        let exp = Experiment {
            id: "test",
            title: "test",
            xlabel: "n",
            points: vec![SweepPoint {
                x: 10.0,
                workload: WorkloadSpec::Uniform(UniformWorkload::new(10, 100.0, 1500.0)),
            }],
        };
        let a = run_experiment(&exp, &mesh, &model, 8, 42);
        let b = run_experiment(&exp, &mesh, &model, 8, 42);
        let (x, sa) = &a.points[0];
        let (_, sb) = &b.points[0];
        assert_eq!(*x, 10.0);
        assert_eq!(sa.trials, 8);
        for k in HeuristicKind::ALL {
            assert_eq!(sa.norm_inv(k), sb.norm_inv(k), "{k} non-deterministic");
            assert!(sa.norm_inv(k) <= 1.0 + 1e-12);
        }
        // With 10 small comms, Manhattan heuristics should essentially
        // always find a solution.
        assert!(sa.best_failure_ratio() < 0.5);
    }
}
