//! The multi-threaded campaign engine: fans the trials of every sweep
//! point out over the rayon work-pool, with per-trial seeds and per-worker
//! scratch reuse.
//!
//! The §6 campaign is embarrassingly parallel — every trial draws its own
//! instance from a seed derived from `(experiment, point, trial)` and folds
//! into a [`PointStats`] accumulator whose merge is associative — the same
//! structure Pettersson & Ozlen (arXiv:1701.08920) exploit for parallel
//! bi-objective sweeps. Two properties make the fan-out safe:
//!
//! * **Determinism.** Seeds depend only on indices, never on scheduling,
//!   and the work-pool combines chunk results in a fixed order, so the
//!   campaign output is byte-identical at any thread count.
//! * **Allocation discipline.** Each fold chunk carries a
//!   [`RouteScratch`], so the routing hot paths reuse load maps, sorted
//!   link lists and reachability buffers across all trials of the chunk
//!   instead of reallocating them per heuristic call.

use crate::experiments::{fig7, fig8, fig9, Experiment, ExperimentResult, SweepPoint};
use crate::runner::run_instance_with;
use crate::stats::PointStats;
use pamr_mesh::Mesh;
use pamr_power::PowerModel;
use pamr_routing::RouteScratch;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// One campaign: a platform, a trial budget and a master seed.
#[derive(Debug, Clone, Copy)]
pub struct Campaign<'a> {
    /// The mesh every instance lives on.
    pub mesh: &'a Mesh,
    /// The link power model.
    pub model: &'a PowerModel,
    /// Random trials per sweep point.
    pub trials: usize,
    /// Master seed; every trial derives its own stream from it.
    pub seed: u64,
}

/// Seed of one `(sweep point, trial)` pair: distinct odd-multiplier mixes
/// keep the streams disjoint (the layout the sequential engine used, so
/// seeded results carry over).
pub fn trial_seed(campaign_seed: u64, point_index: usize, trial: usize) -> u64 {
    campaign_seed
        ^ (point_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (trial as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Seed of one experiment within the pooled summary campaign.
pub fn experiment_seed(campaign_seed: u64, figure_index: usize, exp_index: usize) -> u64 {
    campaign_seed ^ ((figure_index * 16 + exp_index) as u64).wrapping_mul(0xA076_1D64_78BD_642F)
}

/// Per-chunk fold state: the statistics accumulator plus the reusable
/// routing buffers (one `RouteScratch` per chunk, reused by all its trials).
struct ChunkAcc {
    stats: PointStats,
    scratch: RouteScratch,
}

impl Default for ChunkAcc {
    fn default() -> Self {
        ChunkAcc {
            stats: PointStats::default(),
            scratch: RouteScratch::new(),
        }
    }
}

impl Campaign<'_> {
    /// Runs all trials of one sweep point in parallel and merges their
    /// statistics deterministically.
    pub fn run_point(&self, point_index: usize, point: &SweepPoint) -> PointStats {
        let (mesh, model, seed) = (self.mesh, self.model, self.seed);
        (0..self.trials)
            .into_par_iter()
            .fold(ChunkAcc::default, |mut acc, t| {
                let mut rng = SmallRng::seed_from_u64(trial_seed(seed, point_index, t));
                let cs = point.workload.generate(mesh, &mut rng);
                acc.stats
                    .add(&run_instance_with(&cs, model, &mut acc.scratch));
                acc
            })
            .map(|acc| acc.stats)
            .reduce(PointStats::default, PointStats::merge)
    }

    /// Runs one experiment: `trials` instances per sweep point.
    pub fn run_experiment(&self, exp: &Experiment) -> ExperimentResult {
        let points = exp
            .points
            .iter()
            .enumerate()
            .map(|(pi, point)| (point.x, self.run_point(pi, point)))
            .collect();
        ExperimentResult { id: exp.id, points }
    }

    /// Runs the full §6 campaign (all nine sub-figures) and pools every
    /// trial into one accumulator — the summary statistics' input.
    pub fn run_pooled(&self) -> PointStats {
        let mut pooled = PointStats::default();
        for (fi, fig) in [fig7(), fig8(), fig9()].into_iter().enumerate() {
            for (ei, exp) in fig.iter().enumerate() {
                let sub = Campaign {
                    seed: experiment_seed(self.seed, fi, ei),
                    ..*self
                };
                let res = sub.run_experiment(exp);
                for (_, stats) in res.points {
                    pooled = pooled.merge(stats);
                }
            }
        }
        pooled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::WorkloadSpec;
    use pamr_workload::UniformWorkload;

    fn tiny_experiment() -> Experiment {
        Experiment {
            id: "tiny",
            title: "tiny",
            xlabel: "n",
            points: vec![
                SweepPoint {
                    x: 6.0,
                    workload: WorkloadSpec::Uniform(UniformWorkload::new(6, 100.0, 1500.0)),
                },
                SweepPoint {
                    x: 12.0,
                    workload: WorkloadSpec::Uniform(UniformWorkload::new(12, 100.0, 2500.0)),
                },
            ],
        }
    }

    /// Serialises the stats fields that must match bit-for-bit.
    fn fingerprint(stats: &PointStats) -> String {
        let mut s = format!("{}/{}", stats.trials, stats.best_successes);
        for agg in &stats.per_heur {
            s.push_str(&format!(
                "|{}:{}:{}:{}",
                agg.successes,
                agg.sum_norm_inv.to_bits(),
                agg.sum_inv.to_bits(),
                agg.sum_static_frac.to_bits(),
            ));
        }
        s
    }

    #[test]
    fn campaign_bit_identical_across_thread_counts() {
        let mesh = crate::paper_mesh();
        let model = crate::paper_model();
        let exp = tiny_experiment();
        let campaign = Campaign {
            mesh: &mesh,
            model: &model,
            trials: 20,
            seed: 42,
        };
        let run = |threads: usize| {
            rayon::set_num_threads(threads);
            let out = campaign.run_experiment(&exp);
            rayon::set_num_threads(0);
            out
        };
        let one = run(1);
        for threads in [2, 4, 9] {
            let many = run(threads);
            for ((xa, sa), (xb, sb)) in one.points.iter().zip(&many.points) {
                assert_eq!(xa, xb);
                assert_eq!(
                    fingerprint(sa),
                    fingerprint(sb),
                    "{threads}-thread campaign diverged from 1-thread"
                );
            }
        }
    }

    #[test]
    fn trial_seeds_are_disjoint_streams() {
        let mut seen = std::collections::HashSet::new();
        for pi in 0..20 {
            for t in 0..100 {
                assert!(
                    seen.insert(trial_seed(7, pi, t)),
                    "seed collision at ({pi},{t})"
                );
            }
        }
    }

    #[test]
    fn pooled_campaign_counts_every_trial() {
        let mesh = crate::paper_mesh();
        let model = crate::paper_model();
        let campaign = Campaign {
            mesh: &mesh,
            model: &model,
            trials: 1,
            seed: 3,
        };
        let pooled = campaign.run_pooled();
        // Nine sub-figures, each with its sweep points, one trial each.
        let expected: usize = [fig7(), fig8(), fig9()]
            .iter()
            .flatten()
            .map(|e| e.points.len())
            .sum();
        assert_eq!(pooled.trials, expected);
    }
}
