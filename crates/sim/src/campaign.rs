//! The multi-threaded campaign engine: fans the trials of every sweep
//! point out over the rayon work-pool, with per-trial seeds and per-worker
//! scratch reuse.
//!
//! The §6 campaign is embarrassingly parallel — every trial draws its own
//! instance from a seed derived from `(experiment, point, trial)` and folds
//! into a [`PointStats`] accumulator whose merge is associative — the same
//! structure Pettersson & Ozlen (arXiv:1701.08920) exploit for parallel
//! bi-objective sweeps. Two properties make the fan-out safe:
//!
//! * **Determinism.** Seeds depend only on indices, never on scheduling,
//!   and the work-pool combines chunk results in a fixed order, so the
//!   campaign output is byte-identical at any thread count.
//! * **Allocation discipline.** Each fold chunk carries a
//!   [`RouteScratch`], so the routing hot paths reuse load maps, sorted
//!   link lists and reachability buffers across all trials of the chunk
//!   instead of reallocating them per heuristic call.

use crate::experiments::{campaign_figures, Experiment, ExperimentResult, SweepPoint};
use crate::runner::run_instance_with;
use crate::stats::PointStats;
use pamr_mesh::Mesh;
use pamr_power::PowerModel;
use pamr_routing::{EngineConfig, MeshPrecompute, RouteScratch};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The slice of sweep points one process owns in a multi-process campaign.
///
/// Shard `(index, count)` owns every sweep point `p` with
/// `p % count == index` (indices are per experiment). Because every trial's
/// seed depends only on `(experiment, point, trial)` indices, a shard
/// computes exactly the per-point statistics the single-process run would,
/// bit for bit — recombining the shards in point order reproduces the
/// unsharded campaign byte-identically (see [`crate::shard`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This shard's index, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// The trivial shard: one process owns every sweep point.
    pub const FULL: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// Creates a shard spec, validating `index < count`.
    pub fn new(index: usize, count: usize) -> ShardSpec {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        ShardSpec { index, count }
    }

    /// Parses the CLI form `i/N` (e.g. `0/2`).
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard spec {s:?}: expected i/N (e.g. 0/2)"))?;
        let index: usize = i
            .parse()
            .map_err(|_| format!("bad shard index {i:?} in {s:?}"))?;
        let count: usize = n
            .parse()
            .map_err(|_| format!("bad shard count {n:?} in {s:?}"))?;
        if count == 0 {
            return Err(format!("bad shard spec {s:?}: count must be positive"));
        }
        if index >= count {
            return Err(format!("bad shard spec {s:?}: index must be < count"));
        }
        Ok(ShardSpec { index, count })
    }

    /// Does this shard own sweep point `point_index`?
    pub fn owns(&self, point_index: usize) -> bool {
        point_index % self.count == self.index
    }

    /// Is this the trivial single-process shard?
    pub fn is_full(&self) -> bool {
        self.count == 1
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One campaign: a platform, a trial budget, a master seed and the shard of
/// sweep points this process owns.
#[derive(Debug, Clone, Copy)]
pub struct Campaign<'a> {
    /// The mesh every instance lives on.
    pub mesh: &'a Mesh,
    /// The link power model.
    pub model: &'a PowerModel,
    /// Random trials per sweep point.
    pub trials: usize,
    /// Master seed; every trial derives its own stream from it.
    pub seed: u64,
    /// The sweep points this process owns ([`ShardSpec::FULL`] = all).
    pub shard: ShardSpec,
    /// Shared per-mesh precompute handed (as `Arc` clones) to every worker
    /// chunk, so endpoint tables are built once per `(src, snk)` pair for
    /// the whole campaign. `None` builds a fresh one per sweep point.
    /// Caching never changes results — the tables are pure functions of
    /// `(mesh, src, snk)` — so determinism and shard/merge byte-identity
    /// are untouched.
    pub pre: Option<&'a Arc<MeshPrecompute>>,
    /// Engine selection pinned onto every worker's scratch (all-`Live` in
    /// production; the differential suites run whole campaigns on
    /// [`EngineConfig::REFERENCE`]).
    pub engine: EngineConfig,
}

/// SplitMix64 finalizer: a full-avalanche bijection on `u64` (every input
/// bit flips every output bit with probability ≈ 1/2).
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of one `(sweep point, trial)` pair.
///
/// The index mix is finalized through two SplitMix64 avalanche rounds:
/// a bare XOR of index products (the previous layout) hands `SmallRng`
/// linearly-related seeds whose low bits move in lock-step across
/// neighbouring trials. The double finalization decorrelates the stages, so
/// neighbouring `(point, trial)` pairs get statistically independent
/// streams.
pub fn trial_seed(campaign_seed: u64, point_index: usize, trial: usize) -> u64 {
    let stage = splitmix64(
        campaign_seed.wrapping_add((point_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    splitmix64(stage.wrapping_add((trial as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)))
}

/// Seed of one experiment within the pooled summary campaign, finalized
/// through the same avalanche as [`trial_seed`].
pub fn experiment_seed(campaign_seed: u64, figure_index: usize, exp_index: usize) -> u64 {
    splitmix64(
        campaign_seed.wrapping_add(
            ((figure_index * 16 + exp_index) as u64).wrapping_mul(0xA076_1D64_78BD_642F),
        ),
    )
}

/// Per-chunk fold state: the statistics accumulator plus the reusable
/// routing buffers (one `RouteScratch` per chunk, reused by all its trials).
struct ChunkAcc {
    stats: PointStats,
    scratch: RouteScratch,
}

impl Default for ChunkAcc {
    fn default() -> Self {
        ChunkAcc {
            stats: PointStats::default(),
            scratch: RouteScratch::new(),
        }
    }
}

impl Campaign<'_> {
    /// Runs all trials of one sweep point in parallel and merges their
    /// statistics deterministically.
    pub fn run_point(&self, point_index: usize, point: &SweepPoint) -> PointStats {
        let (mesh, model, seed) = (self.mesh, self.model, self.seed);
        let shared = match self.pre {
            Some(p) => Arc::clone(p),
            None => Arc::new(MeshPrecompute::new(*mesh)),
        };
        (0..self.trials)
            .into_par_iter()
            // pamr-lint: allow(D003, reason = "the vendored rayon splits into fixed chunk boundaries and combines in order, so this float accumulation is byte-identical for every thread count")
            .fold(
                || {
                    let mut acc = ChunkAcc::default();
                    acc.scratch.set_engine(self.engine);
                    acc.scratch.attach_precompute(Arc::clone(&shared));
                    acc
                },
                |mut acc, t| {
                    let mut rng = SmallRng::seed_from_u64(trial_seed(seed, point_index, t));
                    let cs = point.workload.generate(mesh, &mut rng);
                    acc.stats
                        .add(&run_instance_with(&cs, model, &mut acc.scratch));
                    acc
                },
            )
            .map(|acc| acc.stats)
            // pamr-lint: allow(D003, reason = "fixed-chunk in-order combine (vendored rayon): merge order is the chunk order, independent of thread count")
            .reduce(PointStats::default, PointStats::merge)
    }

    /// Runs one experiment: `trials` instances per sweep point owned by
    /// this campaign's shard (all points under [`ShardSpec::FULL`]).
    pub fn run_experiment(&self, exp: &Experiment) -> ExperimentResult {
        let points = exp
            .points
            .iter()
            .enumerate()
            .filter(|(pi, _)| self.shard.owns(*pi))
            .map(|(pi, point)| (point.x, self.run_point(pi, point)))
            .collect();
        ExperimentResult { id: exp.id, points }
    }

    /// Runs the full §6 campaign (all nine sub-figures) and pools every
    /// trial of every owned sweep point into one accumulator — the summary
    /// statistics' input.
    ///
    /// Under a partial shard this pools only the owned points; recombining
    /// the per-point partials of all shards in point order (not the pooled
    /// accumulators!) reproduces the unsharded pooled value bit-for-bit —
    /// that interleaving is what [`crate::shard::merge_partials`] does.
    pub fn run_pooled(&self) -> PointStats {
        let mut pooled = PointStats::default();
        for (fi, fig) in campaign_figures().into_iter().enumerate() {
            for (ei, exp) in fig.iter().enumerate() {
                let sub = Campaign {
                    seed: experiment_seed(self.seed, fi, ei),
                    ..*self
                };
                let res = sub.run_experiment(exp);
                for (_, stats) in res.points {
                    pooled = pooled.merge(stats);
                }
            }
        }
        pooled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::WorkloadSpec;
    use pamr_workload::UniformWorkload;

    fn tiny_experiment() -> Experiment {
        Experiment {
            id: "tiny",
            title: "tiny",
            xlabel: "n",
            points: vec![
                SweepPoint {
                    x: 6.0,
                    workload: WorkloadSpec::Uniform(UniformWorkload::new(6, 100.0, 1500.0)),
                },
                SweepPoint {
                    x: 12.0,
                    workload: WorkloadSpec::Uniform(UniformWorkload::new(12, 100.0, 2500.0)),
                },
            ],
        }
    }

    /// Serialises the stats fields that must match bit-for-bit.
    fn fingerprint(stats: &PointStats) -> String {
        let mut s = format!(
            "{}/{}/{}/{}",
            stats.trials,
            stats.best_successes,
            stats.sum_best_inv.to_bits(),
            stats.sum_best_static_frac.to_bits()
        );
        for agg in &stats.per_heur {
            s.push_str(&format!(
                "|{}:{}:{}:{}",
                agg.successes,
                agg.sum_norm_inv.to_bits(),
                agg.sum_inv.to_bits(),
                agg.sum_static_frac.to_bits(),
            ));
        }
        s
    }

    #[test]
    fn campaign_bit_identical_across_thread_counts() {
        let mesh = crate::paper_mesh();
        let model = crate::paper_model();
        let exp = tiny_experiment();
        let campaign = Campaign {
            mesh: &mesh,
            model: &model,
            trials: 20,
            seed: 42,
            shard: ShardSpec::FULL,
            pre: None,
            engine: EngineConfig::LIVE,
        };
        let run = |threads: usize| {
            rayon::set_num_threads(threads);
            let out = campaign.run_experiment(&exp);
            rayon::set_num_threads(0);
            out
        };
        let one = run(1);
        for threads in [2, 4, 9] {
            let many = run(threads);
            for ((xa, sa), (xb, sb)) in one.points.iter().zip(&many.points) {
                assert_eq!(xa, xb);
                assert_eq!(
                    fingerprint(sa),
                    fingerprint(sb),
                    "{threads}-thread campaign diverged from 1-thread"
                );
            }
        }
    }

    #[test]
    fn trial_seeds_are_disjoint_streams() {
        // No collisions across a grid of points × trials, nor against the
        // experiment seeds the pooled campaign derives from the same master.
        let mut seen = std::collections::HashSet::new();
        for pi in 0..40 {
            for t in 0..200 {
                assert!(
                    seen.insert(trial_seed(7, pi, t)),
                    "seed collision at ({pi},{t})"
                );
            }
        }
        for fi in 0..3 {
            for ei in 0..3 {
                assert!(
                    seen.insert(experiment_seed(7, fi, ei)),
                    "experiment seed collision at ({fi},{ei})"
                );
            }
        }
    }

    #[test]
    fn trial_seeds_avalanche() {
        // Neighbouring indices must produce statistically unrelated seeds:
        // roughly half the 64 bits flip, and the deltas between consecutive
        // trial seeds are not constant (the old XOR-of-products layout
        // handed SmallRng linearly-related seeds).
        let mut deltas = std::collections::HashSet::new();
        for t in 0..64usize {
            let a = trial_seed(7, 3, t);
            let b = trial_seed(7, 3, t + 1);
            let flipped = (a ^ b).count_ones();
            assert!(
                (16..=48).contains(&flipped),
                "weak avalanche between trials {t} and {}: {flipped} bits",
                t + 1
            );
            deltas.insert(b.wrapping_sub(a));
        }
        assert!(
            deltas.len() > 60,
            "consecutive trial seeds look affine: only {} distinct deltas",
            deltas.len()
        );
        // Same for a single-bit change of the master seed.
        let flipped = (trial_seed(7, 3, 5) ^ trial_seed(6, 3, 5)).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "master-seed avalanche: {flipped}"
        );
    }

    #[test]
    fn sharded_points_are_bit_equal_to_the_full_run() {
        let mesh = crate::paper_mesh();
        let model = crate::paper_model();
        let exp = tiny_experiment();
        let full = Campaign {
            mesh: &mesh,
            model: &model,
            trials: 8,
            seed: 11,
            shard: ShardSpec::FULL,
            pre: None,
            engine: EngineConfig::LIVE,
        };
        let all = full.run_experiment(&exp);
        for count in [2, 3] {
            let mut got: Vec<Option<(f64, PointStats)>> = vec![None; exp.points.len()];
            for index in 0..count {
                let sharded = Campaign {
                    shard: ShardSpec::new(index, count),
                    ..full
                };
                let part = sharded.run_experiment(&exp);
                for (k, (x, stats)) in part.points.into_iter().enumerate() {
                    let pi = index + k * count;
                    assert!(got[pi].replace((x, stats)).is_none(), "point {pi} twice");
                }
            }
            for (pi, ((xa, sa), slot)) in all.points.iter().zip(&got).enumerate() {
                let (xb, sb) = slot
                    .as_ref()
                    .unwrap_or_else(|| panic!("point {pi} missing"));
                assert_eq!(xa, xb);
                assert_eq!(
                    fingerprint(sa),
                    fingerprint(sb),
                    "shard {count}-way diverged at point {pi}"
                );
            }
        }
    }

    #[test]
    fn pooled_campaign_counts_every_trial() {
        let mesh = crate::paper_mesh();
        let model = crate::paper_model();
        let campaign = Campaign {
            mesh: &mesh,
            model: &model,
            trials: 1,
            seed: 3,
            shard: ShardSpec::FULL,
            pre: None,
            engine: EngineConfig::LIVE,
        };
        let pooled = campaign.run_pooled();
        // Nine sub-figures, each with its sweep points, one trial each.
        let expected: usize = campaign_figures()
            .iter()
            .flatten()
            .map(|e| e.points.len())
            .sum();
        assert_eq!(pooled.trials, expected);
    }
}
