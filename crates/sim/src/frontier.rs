//! The `pamr frontier` pipeline: fan the ε-constraint segments of a
//! [`FrontierProblem`] out over the work pool, optionally sharded across
//! processes, and merge the per-segment point lists into the
//! dominance-filtered Pareto report.
//!
//! The parallel structure mirrors the §6 campaign ([`crate::campaign`]) and
//! its shard pipeline ([`crate::shard`]): segments are pure functions of
//! `(instance, model, segment budget)`, the pool combines them in segment
//! order, and a shard owns every segment `s` with `s % count == index` —
//! so the merged multi-process frontier is **byte-identical** to the
//! single-process [`frontier_points`](pamr_routing::frontier_points) run.
//! The `frontier` suite in `crates/sim/tests` gates both properties.

use pamr_power::PowerModel;
use pamr_routing::frontier::pareto_filter;
use pamr_routing::{CommSet, FrontierPoint, FrontierProblem, RouteScratch, Segment};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

use crate::campaign::ShardSpec;
use crate::shard::MergeError;

/// On-disk format version of [`FrontierPartial`]. Bump on any change to
/// the partial's shape so stale files fail loudly at merge time.
pub const FRONTIER_SCHEMA: u32 = 1;

/// The points of one solved ε-constraint segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentPoints {
    /// The segment (index + latency budget).
    pub segment: Segment,
    /// One point per candidate that met the budget.
    pub points: Vec<FrontierPoint>,
}

/// One process's slice of a sharded frontier sweep: the segments it owns,
/// solved, plus enough provenance to validate recombination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontierPartial {
    /// Format version ([`FRONTIER_SCHEMA`]).
    pub schema: u32,
    /// This shard's index.
    pub shard_index: usize,
    /// Total number of shards in the sweep.
    pub shard_count: usize,
    /// Total number of ε-constraint segments (across all shards).
    pub segments: usize,
    /// Path bound of the FW-MP candidate (`< 2` = 1-MP portfolio only).
    pub split: usize,
    /// Owned segments in ascending index order, each with its points.
    pub owned: Vec<SegmentPoints>,
}

impl FrontierPartial {
    /// Solves this shard's slice of the sweep: candidates and budgets are
    /// recomputed deterministically (they are pure functions of the
    /// instance), then every owned segment is solved on the work pool.
    pub fn run(
        cs: &CommSet,
        model: &PowerModel,
        segments: usize,
        split: usize,
        shard: ShardSpec,
    ) -> FrontierPartial {
        let problem = FrontierProblem {
            cs,
            model,
            segments,
            split,
        };
        let mut scratch = RouteScratch::new();
        let candidates = problem.candidates(&mut scratch);
        let owned_segments: Vec<Segment> = problem
            .segment_budgets(&candidates)
            .into_iter()
            .filter(|seg| shard.owns(seg.index))
            .collect();
        // Segments are pure and independent; the pool's in-order combine
        // keeps the collected vector in segment order at any thread count.
        let owned: Vec<SegmentPoints> = owned_segments
            .into_par_iter()
            .map(|segment| SegmentPoints {
                points: problem.solve_segment(&candidates, segment),
                segment,
            })
            .collect();
        FrontierPartial {
            schema: FRONTIER_SCHEMA,
            shard_index: shard.index,
            shard_count: shard.count,
            segments,
            split,
            owned,
        }
    }

    /// Serialises to the on-disk JSON form. `serde_json` prints the
    /// shortest round-trip float form, so equal partials are equal bytes.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("partial serialises")
    }

    /// Parses the on-disk JSON form.
    pub fn from_json(text: &str) -> Result<FrontierPartial, MergeError> {
        serde_json::from_str(text).map_err(|e| MergeError::Parse(e.to_string()))
    }
}

/// Recombines the partials of a sharded frontier sweep into the report the
/// single-process run prints.
///
/// Validates that the partials form one complete, consistent sweep (same
/// schema/segments/split/shard count, every shard present exactly once,
/// every segment covered exactly once by its owning shard, budgets
/// bit-consistent across shards), then concatenates the per-segment points
/// in ascending segment order — the exact order
/// [`frontier_points`](pamr_routing::frontier_points) uses —
/// and dominance-filters, so the result is bit-identical to the unsharded
/// sweep.
pub fn merge_frontier(partials: &[FrontierPartial]) -> Result<FrontierReport, MergeError> {
    let first = partials.first().ok_or(MergeError::Empty)?;
    for p in partials {
        if p.schema != FRONTIER_SCHEMA {
            return Err(MergeError::Schema { found: p.schema });
        }
        if p.segments != first.segments {
            return Err(MergeError::Inconsistent(format!(
                "segments {} vs {}",
                p.segments, first.segments
            )));
        }
        if p.split != first.split {
            return Err(MergeError::Inconsistent(format!(
                "split {} vs {}",
                p.split, first.split
            )));
        }
        if p.shard_count != first.shard_count {
            return Err(MergeError::Inconsistent(format!(
                "shard count {} vs {}",
                p.shard_count, first.shard_count
            )));
        }
        if p.shard_index >= p.shard_count {
            return Err(MergeError::Inconsistent(format!(
                "shard index {} out of range 0..{}",
                p.shard_index, p.shard_count
            )));
        }
    }
    let count = first.shard_count;
    let mut present = vec![false; count];
    for p in partials {
        if std::mem::replace(&mut present[p.shard_index], true) {
            return Err(MergeError::DuplicateShard(p.shard_index));
        }
    }
    let missing: Vec<usize> = (0..count).filter(|&i| !present[i]).collect();
    if !missing.is_empty() {
        return Err(MergeError::MissingShards(missing));
    }

    // Index the delivered segments by index, validating ownership and
    // uniqueness; budgets must agree bit-for-bit where shards overlap in
    // provenance (they recompute the same linear spacing).
    let mut by_index: std::collections::BTreeMap<usize, &SegmentPoints> =
        std::collections::BTreeMap::new();
    for p in partials {
        let shard = ShardSpec::new(p.shard_index, count);
        for sp in &p.owned {
            if sp.segment.index >= first.segments {
                return Err(MergeError::BadPoint(format!(
                    "segment {} out of range 0..{}",
                    sp.segment.index, first.segments
                )));
            }
            if !shard.owns(sp.segment.index) {
                return Err(MergeError::BadPoint(format!(
                    "segment {} delivered by shard {} which does not own it",
                    sp.segment.index, p.shard_index
                )));
            }
            if by_index.insert(sp.segment.index, sp).is_some() {
                return Err(MergeError::BadPoint(format!(
                    "segment {} delivered twice",
                    sp.segment.index
                )));
            }
        }
    }
    // Either the sweep was empty for every shard (infeasible instance) or
    // every segment must be present.
    let mut all = Vec::new();
    if !by_index.is_empty() {
        for index in 0..first.segments {
            let sp = by_index
                .get(&index)
                .ok_or_else(|| MergeError::BadPoint(format!("segment {index} missing")))?;
            all.extend(sp.points.iter().cloned());
        }
    }
    Ok(FrontierReport {
        segments: first.segments,
        split: first.split,
        shard_count: count,
        pareto: pareto_filter(all),
    })
}

/// The deliverable of `pamr frontier`: the dominance-filtered Pareto set
/// plus the sweep's provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierReport {
    /// Number of ε-constraint segments swept.
    pub segments: usize,
    /// Path bound of the FW-MP candidate.
    pub split: usize,
    /// How many shards contributed (1 for a single-process run).
    pub shard_count: usize,
    /// The Pareto points, ascending latency / strictly descending power.
    pub pareto: Vec<FrontierPoint>,
}

impl FrontierReport {
    /// Computes the full frontier in one process, fanning the segments out
    /// over the work pool. Byte-identical to the sequential
    /// [`frontier_points`](pamr_routing::frontier_points) (the `frontier`
    /// suite asserts it) and to a
    /// sharded run recombined by [`merge_frontier`].
    pub fn compute(
        cs: &CommSet,
        model: &PowerModel,
        segments: usize,
        split: usize,
    ) -> FrontierReport {
        let partial = FrontierPartial::run(cs, model, segments, split, ShardSpec::FULL);
        merge_frontier(std::slice::from_ref(&partial)).expect("full partial merges")
    }

    /// The fig-style text rendering: one row per Pareto point, tightest
    /// latency first. Deterministic — every quantity is seed-determined.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "power × latency frontier ({} segments, split {}, {} Pareto point(s))",
            self.segments,
            self.split,
            self.pareto.len()
        );
        let _ = writeln!(s, "{:>12} {:>12}  policy", "latency", "power mW");
        for p in &self.pareto {
            let _ = writeln!(s, "{:>12.6} {:>12.3}  {}", p.latency, p.power, p.label);
        }
        s
    }

    /// CSV rows (`latency,power,label`), one per Pareto point.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("latency,power,label\n");
        for p in &self.pareto {
            let _ = writeln!(s, "{},{},{}", p.latency, p.power, p.label);
        }
        s
    }

    /// The machine-readable JSON form of the whole report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Structural self-check: the Pareto set must ascend in latency and
    /// strictly descend in power. `Err` names the offending pair.
    pub fn check(&self) -> Result<(), String> {
        for (k, w) in self.pareto.windows(2).enumerate() {
            if w[0].latency > w[1].latency {
                return Err(format!("points {k},{} out of latency order", k + 1));
            }
            if w[1].power >= w[0].power {
                return Err(format!("point {} does not improve power", k + 1));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamr_mesh::{Coord, Mesh};
    use pamr_routing::{frontier_points, Comm};

    fn instance() -> CommSet {
        CommSet::new(
            Mesh::new(4, 4),
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 900.0),
                Comm::new(Coord::new(0, 3), Coord::new(3, 0), 1400.0),
                Comm::new(Coord::new(1, 0), Coord::new(2, 3), 600.0),
            ],
        )
    }

    #[test]
    fn pooled_frontier_matches_the_sequential_solver() {
        let cs = instance();
        let model = crate::paper_model();
        let report = FrontierReport::compute(&cs, &model, 8, 2);
        let sequential = frontier_points(&FrontierProblem {
            cs: &cs,
            model: &model,
            segments: 8,
            split: 2,
        });
        assert_eq!(report.pareto, sequential);
        assert!(report.check().is_ok());
    }

    #[test]
    fn sharded_merge_is_byte_identical_to_one_process() {
        let cs = instance();
        let model = crate::paper_model();
        let full = FrontierReport::compute(&cs, &model, 9, 2);
        for count in [2, 3] {
            let partials: Vec<FrontierPartial> = (0..count)
                .map(|i| FrontierPartial::run(&cs, &model, 9, 2, ShardSpec::new(i, count)))
                .collect();
            let merged = merge_frontier(&partials).expect("complete shard set merges");
            assert_eq!(
                merged.render(),
                FrontierReport {
                    shard_count: count,
                    ..full.clone()
                }
                .render(),
                "{count}-shard frontier diverged from the 1-process run"
            );
            assert_eq!(merged.pareto, full.pareto);
        }
    }

    #[test]
    fn merge_rejects_incomplete_and_inconsistent_sets() {
        let cs = instance();
        let model = crate::paper_model();
        let half = FrontierPartial::run(&cs, &model, 6, 2, ShardSpec::new(0, 2));
        assert_eq!(
            merge_frontier(std::slice::from_ref(&half)).unwrap_err(),
            MergeError::MissingShards(vec![1])
        );
        assert!(matches!(merge_frontier(&[]), Err(MergeError::Empty)));
        let other = FrontierPartial::run(&cs, &model, 6, 4, ShardSpec::new(1, 2));
        assert!(matches!(
            merge_frontier(&[half, other]),
            Err(MergeError::Inconsistent(_))
        ));
    }

    #[test]
    fn partial_json_round_trips() {
        let cs = instance();
        let model = crate::paper_model();
        let partial = FrontierPartial::run(&cs, &model, 5, 2, ShardSpec::new(1, 2));
        let back = FrontierPartial::from_json(&partial.to_json()).expect("round trip");
        assert_eq!(back.to_json(), partial.to_json());
    }
}
