//! ASCII visualisation of meshes, routings and link loads.
//!
//! Renders the mesh as a grid of cores with the horizontal and vertical
//! link loads between them, e.g. for a 3×3 mesh:
//!
//! ```text
//! ●  ─1500─  ●  ──0──  ●
//! │          │         │
//! 500        0         0
//! │          │         │
//! ●  ──0───  ●  ─2000─  ●
//! ```
//!
//! Opposite unidirectional links are summed for display (the paper's
//! figures draw one edge per neighbour pair too).

use pamr_mesh::{Coord, LoadMap, Mesh, Step};

/// Renders the per-link loads of `loads` on `mesh` as an ASCII grid.
/// Loads are printed rounded to integers; idle links show `·`.
pub fn render_loads(mesh: &Mesh, loads: &LoadMap) -> String {
    let cell = 7usize; // width allotted per horizontal link label
    let mut out = String::new();
    for u in 0..mesh.rows() {
        // Core row: cores and horizontal links.
        for v in 0..mesh.cols() {
            out.push('●');
            if v + 1 < mesh.cols() {
                let a = Coord::new(u, v);
                let fwd = mesh.link_id(a, Step::Right).map_or(0.0, |l| loads.get(l));
                let bwd = mesh
                    .link_id(Coord::new(u, v + 1), Step::Left)
                    .map_or(0.0, |l| loads.get(l));
                out.push_str(&format!("{:^cell$}", label(fwd + bwd)));
            }
        }
        out.push('\n');
        // Vertical-link row.
        if u + 1 < mesh.rows() {
            for v in 0..mesh.cols() {
                let a = Coord::new(u, v);
                let down = mesh.link_id(a, Step::Down).map_or(0.0, |l| loads.get(l));
                let up = mesh
                    .link_id(Coord::new(u + 1, v), Step::Up)
                    .map_or(0.0, |l| loads.get(l));
                out.push_str(&format!("{:<w$}", label(down + up), w = cell + 1));
            }
            out.push('\n');
        }
    }
    out
}

fn label(load: f64) -> String {
    if load == 0.0 {
        "·".to_string()
    } else {
        format!("{}", load.round() as i64)
    }
}

/// Renders a compact per-link utilisation heatmap (one character per
/// neighbour pair): ` .:-=+*#%@` from idle to ≥ `capacity`.
pub fn render_heatmap(mesh: &Mesh, loads: &LoadMap, capacity: f64) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let shade = |load: f64| {
        let frac = (load / capacity).clamp(0.0, 1.0);
        RAMP[((frac * (RAMP.len() - 1) as f64).round()) as usize] as char
    };
    let mut out = String::new();
    for u in 0..mesh.rows() {
        for v in 0..mesh.cols() {
            out.push('●');
            if v + 1 < mesh.cols() {
                let fwd = mesh
                    .link_id(Coord::new(u, v), Step::Right)
                    .map_or(0.0, |l| loads.get(l));
                let bwd = mesh
                    .link_id(Coord::new(u, v + 1), Step::Left)
                    .map_or(0.0, |l| loads.get(l));
                out.push(shade(fwd.max(bwd)));
            }
        }
        out.push('\n');
        if u + 1 < mesh.rows() {
            for v in 0..mesh.cols() {
                let down = mesh
                    .link_id(Coord::new(u, v), Step::Down)
                    .map_or(0.0, |l| loads.get(l));
                let up = mesh
                    .link_id(Coord::new(u + 1, v), Step::Up)
                    .map_or(0.0, |l| loads.get(l));
                out.push(shade(down.max(up)));
                if v + 1 < mesh.cols() {
                    out.push(' ');
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamr_mesh::Path;

    #[test]
    fn render_shows_loads_on_used_links() {
        let mesh = Mesh::new(2, 2);
        let mut loads = LoadMap::new(&mesh);
        loads.add_path(&mesh, &Path::xy(Coord::new(0, 0), Coord::new(1, 1)), 1500.0);
        let s = render_loads(&mesh, &loads);
        assert!(s.contains("1500"), "{s}");
        assert!(s.contains('·'), "idle links should show ·\n{s}");
        assert_eq!(s.lines().count(), 3); // core row, link row, core row
    }

    #[test]
    fn heatmap_shades_by_utilisation() {
        let mesh = Mesh::new(2, 3);
        let mut loads = LoadMap::new(&mesh);
        loads.add_path(&mesh, &Path::xy(Coord::new(0, 0), Coord::new(1, 2)), 3500.0);
        let s = render_heatmap(&mesh, &loads, 3500.0);
        assert!(s.contains('@'), "saturated links should be @\n{s}");
        assert!(s.contains(' ') || s.contains('●'));
    }

    #[test]
    fn opposite_links_are_summed_in_load_view() {
        let mesh = Mesh::new(1, 2);
        let mut loads = LoadMap::new(&mesh);
        loads.add(mesh.link_id(Coord::new(0, 0), Step::Right).unwrap(), 100.0);
        loads.add(mesh.link_id(Coord::new(0, 1), Step::Left).unwrap(), 50.0);
        let s = render_loads(&mesh, &loads);
        assert!(s.contains("150"), "{s}");
    }
}
