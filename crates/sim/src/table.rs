//! Text-table and CSV rendering of experiment results.

use crate::experiments::ExperimentResult;
use pamr_routing::HeuristicKind;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders the normalised-power-inverse series of an experiment (the upper
/// plot of each paper sub-figure) as an aligned text table.
pub fn norm_inv_table(res: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>10}", "x");
    for k in HeuristicKind::ALL {
        let _ = write!(out, "{:>8}", k.name());
    }
    let _ = writeln!(out, "{:>8}", "BEST");
    for (x, stats) in &res.points {
        let _ = write!(out, "{x:>10.0}");
        for k in HeuristicKind::ALL {
            let _ = write!(out, "{:>8.3}", stats.norm_inv(k));
        }
        // BEST's normalised inverse is 1 by definition whenever it exists.
        let best = if stats.best_successes > 0 { 1.0 } else { 0.0 };
        let _ = writeln!(out, "{best:>8.3}");
    }
    out
}

/// Renders the failure-ratio series (the lower plot of each sub-figure).
pub fn failure_table(res: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>10}", "x");
    for k in HeuristicKind::ALL {
        let _ = write!(out, "{:>8}", k.name());
    }
    let _ = writeln!(out, "{:>8}", "BEST");
    for (x, stats) in &res.points {
        let _ = write!(out, "{x:>10.0}");
        for k in HeuristicKind::ALL {
            let _ = write!(out, "{:>8.3}", stats.failure_ratio(k));
        }
        let _ = writeln!(out, "{:>8.3}", stats.best_failure_ratio());
    }
    out
}

/// Writes both series of an experiment to `dir/<id>.csv`.
pub fn write_csv(res: &ExperimentResult, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut s = String::from("x");
    for k in HeuristicKind::ALL {
        let _ = write!(s, ",norm_inv_{}", k.name());
    }
    s.push_str(",norm_inv_BEST");
    for k in HeuristicKind::ALL {
        let _ = write!(s, ",fail_{}", k.name());
    }
    s.push_str(",fail_BEST,trials\n");
    for (x, stats) in &res.points {
        let _ = write!(s, "{x}");
        for k in HeuristicKind::ALL {
            let _ = write!(s, ",{:.6}", stats.norm_inv(k));
        }
        let best = if stats.best_successes > 0 { 1.0 } else { 0.0 };
        let _ = write!(s, ",{best:.6}");
        for k in HeuristicKind::ALL {
            let _ = write!(s, ",{:.6}", stats.failure_ratio(k));
        }
        let _ = writeln!(s, ",{:.6},{}", stats.best_failure_ratio(), stats.trials);
    }
    std::fs::write(dir.join(format!("{}.csv", res.id)), s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_experiment, Experiment, SweepPoint, WorkloadSpec};
    use pamr_workload::UniformWorkload;

    fn tiny_result() -> ExperimentResult {
        let mesh = crate::paper_mesh();
        let model = crate::paper_model();
        let exp = Experiment {
            id: "tiny",
            title: "tiny",
            xlabel: "n",
            points: vec![
                SweepPoint {
                    x: 5.0,
                    workload: WorkloadSpec::Uniform(UniformWorkload::new(5, 100.0, 1500.0)),
                },
                SweepPoint {
                    x: 10.0,
                    workload: WorkloadSpec::Uniform(UniformWorkload::new(10, 100.0, 1500.0)),
                },
            ],
        };
        run_experiment(&exp, &mesh, &model, 4, 1)
    }

    #[test]
    fn tables_have_expected_shape() {
        let res = tiny_result();
        let t = norm_inv_table(&res);
        assert_eq!(t.lines().count(), 3); // header + 2 points
        assert!(t.contains("XYI"));
        let f = failure_table(&res);
        assert_eq!(f.lines().count(), 3);
    }

    #[test]
    fn csv_round_trip() {
        let res = tiny_result();
        let dir = std::env::temp_dir().join("pamr_table_test");
        write_csv(&res, &dir).unwrap();
        let content = std::fs::read_to_string(dir.join("tiny.csv")).unwrap();
        assert_eq!(content.lines().count(), 3);
        assert!(content.starts_with("x,norm_inv_XY"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
