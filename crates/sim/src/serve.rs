//! The `pamr serve` wire protocol: newline-delimited JSON requests over
//! stdin/stdout (or a TCP socket) against a resident
//! [`RoutingSession`].
//!
//! One request per line, one response per line, in order. Requests are
//! JSON objects dispatched on their `"op"` field:
//!
//! | op             | request fields                          |
//! |----------------|-----------------------------------------|
//! | `add_comm`     | `id`, `src {u,v}`, `snk {u,v}`, `weight`|
//! | `remove_comm`  | `id`                                    |
//! | `reroute`      | —                                       |
//! | `power_report` | —                                       |
//! | `snapshot`     | —                                       |
//!
//! Every response carries `"ok"` and echoes `"op"`; failures are
//! **structured errors** (`{"ok":false,"op":…,"error":"…"}`), never a
//! process death — malformed JSON, unknown ops, duplicate or unknown ids,
//! off-mesh endpoints and invalid weights all come back as error lines
//! while the session keeps serving. The exact bytes of the protocol are
//! pinned by `crates/sim/tests/fixtures/session_golden.jsonl`
//! (`PAMR_BLESS=1` regenerates) and the shrinking scripts of
//! `crates/sim/tests/session_prop.rs`.

use pamr_mesh::Coord;
use pamr_power::PowerModel;
use pamr_routing::{Comm, MeshPrecompute, RoutingSession, SessionConfig, SlotId};
use serde::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// A protocol server: a [`RoutingSession`] plus the wire-level id space
/// (client-chosen string ids mapped to session slots).
#[derive(Debug)]
pub struct Server {
    session: RoutingSession,
    /// Live wire ids → session handles.
    ids: BTreeMap<String, SlotId>,
    /// Slot-indexed wire ids of the live communications (for snapshots).
    names: Vec<Option<String>>,
}

impl Server {
    /// A server over an empty session, sharing one [`MeshPrecompute`]
    /// across every request it will serve: the band geometry and endpoint
    /// tables an `add_comm` builds are cache hits for all later requests on
    /// the same `(src, snk)` pair.
    pub fn new(mesh: pamr_mesh::Mesh, model: PowerModel, config: SessionConfig) -> Self {
        let pre = Arc::new(MeshPrecompute::new(mesh));
        Server {
            session: RoutingSession::with_precompute(pre, model, config),
            ids: BTreeMap::new(),
            names: Vec::new(),
        }
    }

    /// The underlying session (tests inspect its resident indices).
    pub fn session(&self) -> &RoutingSession {
        &self.session
    }

    /// Handles one request line and returns the response line (no trailing
    /// newline). Never panics on untrusted input: every failure is a
    /// structured `{"ok":false,…}` response.
    pub fn handle_line(&mut self, line: &str) -> String {
        let (op, result) = match serde_json::from_str::<Value>(line) {
            Err(e) => (None, Err(format!("invalid JSON: {e}"))),
            Ok(req) => {
                let op = req.get("op").and_then(|v| match v {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                });
                let result = match op.as_deref() {
                    None => Err("missing string field `op`".to_string()),
                    Some("add_comm") => self.op_add_comm(&req),
                    Some("remove_comm") => self.op_remove_comm(&req),
                    Some("reroute") => Ok(self.op_reroute()),
                    Some("power_report") => Ok(self.op_power_report()),
                    Some("snapshot") => Ok(self.op_snapshot()),
                    Some(other) => Err(format!(
                        "unknown op {other:?} (add_comm | remove_comm | reroute | \
                         power_report | snapshot)"
                    )),
                };
                (op, result)
            }
        };
        let value = match result {
            Ok(v) => v,
            Err(error) => obj(vec![
                ("ok", Value::Bool(false)),
                ("op", op.map_or(Value::Null, Value::Str)),
                ("error", Value::Str(error)),
            ]),
        };
        serde_json::to_string(&value).expect("responses are plain JSON values")
    }

    fn op_add_comm(&mut self, req: &Value) -> Result<Value, String> {
        let id = str_field(req, "id")?;
        if self.ids.contains_key(&id) {
            return Err(format!("duplicate id {id:?}"));
        }
        let src = coord_field(req, "src")?;
        let snk = coord_field(req, "snk")?;
        let weight = f64_field(req, "weight")?;
        if !(weight > 0.0 && weight.is_finite()) {
            return Err(format!(
                "weight must be strictly positive and finite, got {weight}"
            ));
        }
        let mesh = *self.session.mesh();
        for (name, c) in [("src", src), ("snk", snk)] {
            if !mesh.contains(c) {
                return Err(format!(
                    "{name} ({},{}) is outside the {}x{} mesh",
                    c.u,
                    c.v,
                    mesh.rows(),
                    mesh.cols()
                ));
            }
        }
        let slot = self.session.add_comm(Comm::new(src, snk, weight));
        if self.names.len() <= slot.index() {
            self.names.resize(slot.index() + 1, None);
        }
        self.names[slot.index()] = Some(id.clone());
        self.ids.insert(id.clone(), slot);
        let path_len = self.session.path(slot).expect("slot is live").len();
        Ok(obj(vec![
            ("ok", Value::Bool(true)),
            ("op", s("add_comm")),
            ("id", Value::Str(id)),
            ("path_len", u(path_len)),
            ("n_comms", u(self.session.len())),
            ("max_load", Value::Float(self.session.max_load())),
            ("feasible", Value::Bool(self.session.power().is_ok())),
        ]))
    }

    fn op_remove_comm(&mut self, req: &Value) -> Result<Value, String> {
        let id = str_field(req, "id")?;
        let slot = self
            .ids
            .remove(&id)
            .ok_or_else(|| format!("unknown id {id:?}"))?;
        self.names[slot.index()] = None;
        self.session
            .remove_comm(slot)
            .expect("the id map only holds live slots");
        Ok(obj(vec![
            ("ok", Value::Bool(true)),
            ("op", s("remove_comm")),
            ("id", Value::Str(id)),
            ("n_comms", u(self.session.len())),
            ("max_load", Value::Float(self.session.max_load())),
            ("feasible", Value::Bool(self.session.power().is_ok())),
        ]))
    }

    fn op_reroute(&mut self) -> Value {
        self.session.reroute();
        obj(vec![
            ("ok", Value::Bool(true)),
            ("op", s("reroute")),
            ("n_comms", u(self.session.len())),
            ("max_load", Value::Float(self.session.max_load())),
            ("feasible", Value::Bool(self.session.power().is_ok())),
        ])
    }

    fn op_power_report(&self) -> Value {
        let power = self.session.power();
        let (total, leakage, dynamic, active) = match &power {
            Ok(b) => (
                Value::Float(b.total()),
                Value::Float(b.leakage),
                Value::Float(b.dynamic),
                u(b.active_links),
            ),
            Err(_) => (Value::Null, Value::Null, Value::Null, Value::Null),
        };
        obj(vec![
            ("ok", Value::Bool(true)),
            ("op", s("power_report")),
            ("n_comms", u(self.session.len())),
            ("feasible", Value::Bool(power.is_ok())),
            ("total_mw", total),
            ("leakage_mw", leakage),
            ("dynamic_mw", dynamic),
            ("active_links", active),
            ("max_load", Value::Float(self.session.max_load())),
            ("total_load", Value::Float(self.session.loads().total())),
        ])
    }

    fn op_snapshot(&self) -> Value {
        let mesh = self.session.mesh();
        let comms: Vec<Value> = self
            .session
            .live()
            .map(|(slot, c, p)| {
                let id = self.names[slot.index()]
                    .clone()
                    .expect("live slots carry a wire id");
                obj(vec![
                    ("id", Value::Str(id)),
                    ("src", coord_value(c.src)),
                    ("snk", coord_value(c.snk)),
                    ("weight", Value::Float(c.weight)),
                    ("path", Value::Str(p.to_string())),
                ])
            })
            .collect();
        obj(vec![
            ("ok", Value::Bool(true)),
            ("op", s("snapshot")),
            (
                "mesh",
                obj(vec![("rows", u(mesh.rows())), ("cols", u(mesh.cols()))]),
            ),
            ("n_comms", u(self.session.len())),
            ("comms", Value::Array(comms)),
        ])
    }
}

/// Serves requests line by line from `input` to `out`, one response per
/// request, flushing after each (a piped client sees its answer
/// immediately). Blank lines are ignored.
pub fn serve_lines<R: BufRead, W: Write>(
    server: &mut Server,
    input: R,
    mut out: W,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(out, "{}", server.handle_line(&line))?;
        out.flush()?;
    }
    Ok(())
}

/// Binds `addr` and serves clients sequentially, the session persisting
/// across connections. A client I/O error drops that client and keeps the
/// listener alive; runs until the process is killed.
pub fn serve_tcp(server: &mut Server, addr: &str) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    eprintln!(
        "pamr serve: listening on {}",
        listener
            .local_addr()
            .map_or(addr.to_string(), |a| a.to_string())
    );
    for stream in listener.incoming() {
        let result = stream.and_then(|stream| {
            let reader = std::io::BufReader::new(stream.try_clone()?);
            serve_lines(server, reader, stream)
        });
        if let Err(e) = result {
            eprintln!("pamr serve: client error: {e}");
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Wire-value helpers
// ---------------------------------------------------------------------------

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

fn u(n: usize) -> Value {
    Value::UInt(n as u64)
}

fn coord_value(c: Coord) -> Value {
    obj(vec![("u", u(c.u)), ("v", u(c.v))])
}

fn field<'a>(req: &'a Value, key: &str) -> Result<&'a Value, String> {
    req.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn str_field(req: &Value, key: &str) -> Result<String, String> {
    match field(req, key)? {
        Value::Str(text) => Ok(text.clone()),
        other => Err(format!(
            "field `{key}` must be a string, got {}",
            other.kind()
        )),
    }
}

fn f64_field(req: &Value, key: &str) -> Result<f64, String> {
    match field(req, key)? {
        Value::Float(x) => Ok(*x),
        Value::Int(n) => Ok(*n as f64),
        Value::UInt(n) => Ok(*n as f64),
        other => Err(format!(
            "field `{key}` must be a number, got {}",
            other.kind()
        )),
    }
}

fn usize_field(req: &Value, key: &str) -> Result<usize, String> {
    match field(req, key)? {
        Value::UInt(n) => usize::try_from(*n).map_err(|_| format!("field `{key}` out of range")),
        Value::Int(n) if *n >= 0 => {
            usize::try_from(*n).map_err(|_| format!("field `{key}` out of range"))
        }
        other => Err(format!(
            "field `{key}` must be a non-negative integer, got {}",
            other.kind()
        )),
    }
}

fn coord_field(req: &Value, key: &str) -> Result<Coord, String> {
    let v = field(req, key)?;
    if v.as_object().is_none() {
        return Err(format!(
            "field `{key}` must be a {{\"u\":…,\"v\":…}} object, got {}",
            v.kind()
        ));
    }
    Ok(Coord::new(usize_field(v, "u")?, usize_field(v, "v")?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamr_mesh::Mesh;

    fn server() -> Server {
        Server::new(
            Mesh::new(4, 4),
            PowerModel::kim_horowitz(),
            SessionConfig::default(),
        )
    }

    #[test]
    fn add_report_remove_round_trip() {
        let mut srv = server();
        let add = srv.handle_line(
            r#"{"op":"add_comm","id":"a","src":{"u":0,"v":0},"snk":{"u":2,"v":3},"weight":100}"#,
        );
        assert!(
            add.starts_with(r#"{"ok":true,"op":"add_comm","id":"a","path_len":5"#),
            "{add}"
        );
        let report = srv.handle_line(r#"{"op":"power_report"}"#);
        assert!(report.contains(r#""feasible":true"#), "{report}");
        assert!(report.contains(r#""n_comms":1"#), "{report}");
        let remove = srv.handle_line(r#"{"op":"remove_comm","id":"a"}"#);
        assert!(remove.contains(r#""ok":true"#), "{remove}");
        assert!(remove.contains(r#""n_comms":0"#), "{remove}");
    }

    #[test]
    fn errors_are_structured_not_fatal() {
        let mut srv = server();
        for (line, expect) in [
            ("{not json", "invalid JSON"),
            (r#"{"id":"a"}"#, "missing string field `op`"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"op":"add_comm","id":"a"}"#, "missing field `src`"),
            (
                r#"{"op":"add_comm","id":"a","src":{"u":0,"v":0},"snk":{"u":9,"v":0},"weight":1}"#,
                "outside the 4x4 mesh",
            ),
            (
                r#"{"op":"add_comm","id":"a","src":{"u":0,"v":0},"snk":{"u":1,"v":0},"weight":-3}"#,
                "strictly positive",
            ),
            (r#"{"op":"remove_comm","id":"ghost"}"#, "unknown id"),
        ] {
            let resp = srv.handle_line(line);
            assert!(resp.starts_with(r#"{"ok":false"#), "{line} -> {resp}");
            assert!(resp.contains(expect), "{line} -> {resp}");
        }
        // The session survived every error and still serves.
        let ok = srv.handle_line(
            r#"{"op":"add_comm","id":"a","src":{"u":0,"v":0},"snk":{"u":1,"v":1},"weight":5.5}"#,
        );
        assert!(ok.starts_with(r#"{"ok":true"#), "{ok}");
        let dup = srv.handle_line(
            r#"{"op":"add_comm","id":"a","src":{"u":0,"v":0},"snk":{"u":1,"v":1},"weight":5.5}"#,
        );
        assert!(dup.contains("duplicate id"), "{dup}");
    }

    #[test]
    fn snapshot_lists_live_comms_with_paths() {
        let mut srv = server();
        srv.handle_line(
            r#"{"op":"add_comm","id":"x","src":{"u":0,"v":0},"snk":{"u":1,"v":1},"weight":10}"#,
        );
        srv.handle_line(
            r#"{"op":"add_comm","id":"y","src":{"u":3,"v":3},"snk":{"u":3,"v":3},"weight":1}"#,
        );
        let snap = srv.handle_line(r#"{"op":"snapshot"}"#);
        assert!(snap.contains(r#""mesh":{"rows":4,"cols":4}"#), "{snap}");
        assert!(
            snap.contains(r#""id":"x""#) && snap.contains(r#""id":"y""#),
            "{snap}"
        );
        assert!(snap.contains(r#""n_comms":2"#), "{snap}");
    }

    #[test]
    fn serve_lines_answers_every_request_in_order() {
        let mut srv = server();
        let input = "\
{\"op\":\"add_comm\",\"id\":\"a\",\"src\":{\"u\":0,\"v\":0},\"snk\":{\"u\":2,\"v\":2},\"weight\":7}\n\
\n\
{\"op\":\"power_report\"}\n";
        let mut out = Vec::new();
        serve_lines(&mut srv, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "blank request lines are skipped: {text}");
        assert!(lines[0].contains("add_comm"));
        assert!(lines[1].contains("power_report"));
    }
}
