//! # pamr-sim — the paper's simulation campaign, reproducible
//!
//! Reproduces every figure and statistic of Section 6 of *Power-aware
//! Manhattan routing on chip multiprocessors*:
//!
//! * [`experiments::fig7`] — sensitivity to the **number** of
//!   communications (small / mixed / big weights);
//! * [`experiments::fig8`] — sensitivity to the **size** (average weight)
//!   of communications (10 / 20 / 40 communications);
//! * [`experiments::fig9`] — sensitivity to the average **length** of
//!   communications (three weight regimes);
//! * [`summary`] — the §6.4 aggregate statistics: per-heuristic success
//!   rates, inverse-power ratios versus XY, the static-power fraction and
//!   mean heuristic runtimes.
//!
//! Every experiment runs on the paper's platform: an 8×8 CMP with the
//! Kim–Horowitz discrete link model (`P_leak` = 16.9 mW, `P_0` = 5.41,
//! `α` = 2.95, frequencies {1, 2.5, 3.5} Gb/s). Trials are seeded and
//! fanned out over the multi-threaded [`campaign`] engine (byte-identical
//! results at any thread count — see [`campaign::Campaign`]); plotted
//! quantities match the paper's: the **inverse** of the power of each
//! heuristic (0 on failure), normalised by the inverse of the power of
//! BEST, plus the failure ratio.
//!
//! Binaries: `fig2`, `fig7`, `fig8`, `fig9`, `summary`, `theory` — one per
//! paper artefact, each printing the series the corresponding figure
//! plots (and writing CSV when `--csv DIR` is given). All campaign
//! binaries accept `--threads N`; `RAYON_NUM_THREADS` works too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod campaign;
pub mod cli;
pub mod experiments;
pub mod frontier;
pub mod runner;
pub mod serve;
pub mod shard;
pub mod stats;
pub mod summary;
pub mod table;
pub mod testutil;
pub mod viz;

pub use campaign::{experiment_seed, trial_seed, Campaign, ShardSpec};
pub use experiments::{Experiment, ExperimentResult, SweepPoint, WorkloadSpec};
pub use frontier::{merge_frontier, FrontierPartial, FrontierReport, FRONTIER_SCHEMA};
pub use runner::{run_instance, run_instance_with, HeurResult, InstanceOutcome};
pub use shard::{merge_partials, MergeError, MergedCampaign, PartialPoint, ShardPartial};
pub use stats::{HeurAgg, PointStats};

/// The campaign platform: the paper's 8×8 CMP.
pub fn paper_mesh() -> pamr_mesh::Mesh {
    pamr_mesh::Mesh::new(8, 8)
}

/// The campaign power model (Kim–Horowitz fit, discrete frequencies).
pub fn paper_model() -> pamr_power::PowerModel {
    pamr_power::PowerModel::kim_horowitz()
}
