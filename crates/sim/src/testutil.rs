//! Shared workload sweeps for the differential-oracle test suites.
//!
//! The PR, XYI and session oracles all sweep the same §6-style instance
//! families (uniform draws across mesh shapes and weight regimes, the
//! Figure 9 length-targeted generator, merged task-graph applications).
//! This module is the single definition of those sweeps; the seeds and
//! draw order are part of the oracles' contracts, so changing anything
//! here intentionally shifts every differential suite at once.

use pamr_mesh::Mesh;
use pamr_routing::CommSet;
use pamr_workload::taskgraph::merge_applications;
use pamr_workload::{LengthTargetedWorkload, Mapping, TaskGraph, UniformWorkload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The §6.1–6.2 generator (Figures 7 and 8: uniform endpoints and
/// weights) over square and rectangular meshes and the paper's weight
/// regimes, including the degenerate fixed-weight fig8 draws. Calls
/// `visit` with each instance and a replay label.
pub fn uniform_sweep(mut visit: impl FnMut(&CommSet, &str)) {
    for (p, q) in [(2, 2), (3, 5), (5, 3), (8, 8), (1, 6), (6, 1)] {
        let mesh = Mesh::new(p, q);
        let max_n = (4 * p * q).min(80);
        for (w_min, w_max) in [(100.0, 1500.0), (100.0, 2500.0), (1750.0, 1750.0)] {
            for seed in 0..4u64 {
                let mut rng = SmallRng::seed_from_u64(seed ^ (p as u64) << 8 ^ (q as u64) << 16);
                let n = rng.gen_range(1..=max_n);
                let cs = UniformWorkload::new(n, w_min, w_max).generate(&mesh, &mut rng);
                visit(&cs, &format!("{p}x{q} uniform n={n} seed={seed}"));
            }
        }
    }
}

/// The Figure 9 generator: source/sink pairs drawn at a target Manhattan
/// distance — exercises long thin bands and corner-to-corner traffic.
pub fn length_targeted_sweep(mut visit: impl FnMut(&CommSet, &str)) {
    let mesh = Mesh::new(8, 8);
    for len in [2, 5, 9, 14] {
        for seed in 0..4u64 {
            let mut rng = SmallRng::seed_from_u64(seed * 31 + len as u64);
            let cs = LengthTargetedWorkload::new(25, 100.0, 3500.0, len).generate(&mesh, &mut rng);
            visit(&cs, &format!("length-targeted len={len} seed={seed}"));
        }
    }
}

/// System-level instances: several mapped applications merged into one
/// communication set (§3.2), with structured traffic patterns (pipeline,
/// stencil, transpose, hotspot, butterfly) instead of uniform draws.
pub fn task_graph_sweep(mut visit: impl FnMut(&CommSet, &str)) {
    let mesh = Mesh::new(8, 8);
    for seed in 0..6u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pipeline = TaskGraph::pipeline(10, 800.0);
        let stencil = TaskGraph::stencil(4, 5, 400.0);
        let transpose = TaskGraph::transpose(4, 1200.0);
        let hotspot = TaskGraph::hotspot(9, 600.0);
        let butterfly = TaskGraph::butterfly(3, 300.0);
        let maps: Vec<Mapping> = [
            pipeline.n_tasks(),
            stencil.n_tasks(),
            transpose.n_tasks(),
            hotspot.n_tasks(),
            butterfly.n_tasks(),
        ]
        .iter()
        .map(|&n| Mapping::random(&mesh, n, &mut rng))
        .collect();
        let cs = merge_applications(
            &mesh,
            &[
                (&pipeline, &maps[0]),
                (&stencil, &maps[1]),
                (&transpose, &maps[2]),
                (&hotspot, &maps[3]),
                (&butterfly, &maps[4]),
            ],
        );
        visit(&cs, &format!("task-graph seed={seed}"));
    }
}

/// All three deterministic sweeps in their canonical order.
pub fn standard_sweep(mut visit: impl FnMut(&CommSet, &str)) {
    uniform_sweep(&mut visit);
    length_targeted_sweep(&mut visit);
    task_graph_sweep(&mut visit);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_deterministic_and_non_trivial() {
        let mut labels = Vec::new();
        let mut total_comms = 0usize;
        standard_sweep(|cs, label| {
            labels.push(label.to_string());
            total_comms += cs.len();
        });
        let mut again = Vec::new();
        standard_sweep(|_, label| again.push(label.to_string()));
        assert_eq!(labels, again, "sweep labels must be reproducible");
        // 6 meshes × 3 regimes × 4 seeds + 4 lengths × 4 seeds + 6 graphs.
        assert_eq!(labels.len(), 6 * 3 * 4 + 4 * 4 + 6);
        assert!(total_comms > 1000, "sweeps should exercise real instances");
    }
}
