//! Demonstrates the Section 4 theoretical results numerically:
//! Lemma 1 (path counting), Theorem 1 (Fig. 4 pattern, ratio Θ(p)),
//! Lemma 2 (YX vs XY, ratio Θ(p^{α−1})) and Theorem 3 (2-PARTITION
//! reduction).

use pamr_power::PowerModel;
use pamr_theory::{
    fig4_pattern, lemma2_ratio, manhattan_path_count, partition_exists, reduction_instance,
    xy_corner_power,
};

fn main() {
    println!("== Lemma 1: Manhattan path counts C(p+q-2, p-1) ==");
    for (p, q) in [(2, 2), (4, 4), (8, 8), (8, 16)] {
        println!("{p:>3}×{q:<3} → {}", manhattan_path_count(p, q));
    }

    let model = PowerModel::theory(3.0);
    println!("\n== Theorem 1: P_XY / P_maxMP on the Fig. 4 pattern (α = 3) ==");
    println!("{:>5} {:>12} {:>12} {:>8}", "p", "P_XY", "P_maxMP", "ratio");
    for p_prime in [1usize, 2, 4, 8, 16, 32] {
        let pat = fig4_pattern(p_prime, 1.0);
        assert!(pat.verify_conservation(1e-9));
        let pmax = pat.power(&model);
        let pxy = xy_corner_power(2 * p_prime, 1.0, &model);
        println!(
            "{:>5} {:>12.4} {:>12.4} {:>8.2}",
            2 * p_prime,
            pxy,
            pmax,
            pxy / pmax
        );
    }
    println!("(ratio grows linearly in p — the Θ(p) of Theorem 1)");

    println!("\n== Lemma 2: single-path YX vs XY on the anti-diagonal instance ==");
    println!("{:>5} {:>14} {:>12} {:>10}", "p'", "P_XY", "P_YX", "ratio");
    for p_prime in [2usize, 4, 8, 16, 32] {
        let (pxy, pyx) = lemma2_ratio(p_prime, &model);
        println!("{p_prime:>5} {pxy:>14.1} {pyx:>12.1} {:>10.2}", pxy / pyx);
    }
    println!("(ratio grows as p^(α−1) = p² for α = 3 — Lemma 2 / Theorem 2)");

    println!("\n== Theorem 3: 2-PARTITION reduction ==");
    for a in [vec![1u64, 2, 1, 2, 1, 1], vec![2, 2, 2]] {
        let inst = reduction_instance(&a, 2);
        let part = partition_exists(&a);
        println!(
            "a = {a:?}: q = {}, BW = {}, partition {} → s-MP routing {}",
            inst.q(),
            inst.bw,
            if part.is_some() { "EXISTS" } else { "none" },
            if part.is_some() {
                "feasible"
            } else {
                "infeasible"
            },
        );
    }
}
