//! Ablation studies: the §6.4 leakage-ratio observation and the §7
//! multi-path future-work item.

use pamr_sim::ablation::{leak_sweep, order_sweep, smp_sweep};
use pamr_sim::cli::Options;

fn main() {
    let opts = Options::from_args();
    let mesh = pamr_sim::paper_mesh();

    println!("== leakage ablation: does a lower P_leak/P_0 favour PR over XYI? ==");
    println!("(30 mixed communications, {} trials per row)", opts.trials);
    println!(
        "{:>10} {:>9} {:>9} {:>14} {:>14}",
        "P_leak mW", "PR wins", "XYI wins", "both feasible", "P(PR)/P(XYI)"
    );
    for row in leak_sweep(&mesh, &[0.0, 4.0, 16.9, 40.0, 80.0], opts.trials, opts.seed) {
        println!(
            "{:>10.1} {:>9} {:>9} {:>14} {:>14.4}",
            row.p_leak, row.pr_wins, row.xyi_wins, row.both_feasible, row.mean_ratio
        );
    }

    println!("\n== s-MP ablation: SplitMp<PathRemover> on heavy traffic ==");
    println!(
        "(12 communications U[2000,3400] Mb/s, {} trials)",
        opts.trials
    );
    println!("{:>4} {:>10} {:>14}", "s", "successes", "mean power mW");
    let (rows, fw_lb) = smp_sweep(&mesh, &[1, 2, 3, 4], opts.trials, opts.seed);
    for row in &rows {
        println!(
            "{:>4} {:>10} {:>14.1}",
            row.s, row.successes, row.mean_power
        );
    }
    println!("continuous max-MP lower bound on the comparable set: {fw_lb:.1} mW");

    println!("\n== processing-order ablation: 'decreasing weights gives the best results' (§5) ==");
    println!("(TB on 30 mixed communications, {} trials)", opts.trials);
    println!(
        "{:>20} {:>10} {:>14}",
        "order", "successes", "mean power mW"
    );
    for row in order_sweep(&mesh, opts.trials, opts.seed) {
        println!(
            "{:>20} {:>10} {:>14.1}",
            format!("{:?}", row.order),
            row.successes,
            row.mean_power
        );
    }
}
