//! Regenerates Figure 7: sensitivity to the number of communications
//! (normalised power inverse + failure ratio, three weight regimes).

use pamr_sim::cli::Options;
use pamr_sim::experiments::{fig7, run_experiment_sharded};
use pamr_sim::table::{failure_table, norm_inv_table, write_csv};

fn main() {
    let opts = Options::from_args();
    let mesh = pamr_sim::paper_mesh();
    let model = pamr_sim::paper_model();
    for exp in fig7() {
        println!("== {} — {} ==", exp.id, exp.title);
        let res = run_experiment_sharded(&exp, &mesh, &model, opts.trials, opts.seed, opts.shard);
        println!(
            "normalised power inverse (x = {}, {} trials/point)",
            exp.xlabel, opts.trials
        );
        print!("{}", norm_inv_table(&res));
        println!("failure ratio");
        print!("{}", failure_table(&res));
        println!();
        if let Some(dir) = &opts.csv {
            write_csv(&res, dir).expect("writing CSV");
        }
    }
}
