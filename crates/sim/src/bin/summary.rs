//! Regenerates the §6.4 summary statistics: success rates, inverse-power
//! ratios versus XY, the static-power fraction and mean runtimes.
//!
//! Stdout carries only seed-determined text (byte-identical at any thread
//! count — the determinism CI lane diffs 1-thread vs N-thread runs);
//! wall-clock-dependent lines (progress, mean routing times) go to stderr.

use pamr_sim::cli::Options;
use pamr_sim::summary::Summary;

fn main() {
    let opts = Options::from_args();
    let mesh = pamr_sim::paper_mesh();
    let model = pamr_sim::paper_model();
    eprintln!(
        "running the full campaign ({} trials per sweep point, {} worker thread(s)) ...",
        opts.trials,
        rayon::current_num_threads()
    );
    let s = Summary::run(&mesh, &model, opts.trials, opts.seed);
    println!("{}", s.render());
    println!("pooled over {} instances", s.pooled.trials);
    eprint!("{}", s.render_timings());
}
