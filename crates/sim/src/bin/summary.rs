//! Regenerates the §6.4 summary statistics: success rates, inverse-power
//! ratios versus XY, the static-power fraction and mean runtimes.
//!
//! Stdout carries only seed-determined text (byte-identical at any thread
//! count — the determinism CI lane diffs 1-thread vs N-thread runs);
//! wall-clock-dependent lines (progress, mean routing times) go to stderr.
//!
//! With `--shard i/N --out FILE` the binary instead runs only its shard of
//! the campaign and writes the partial-result JSON for `pamr merge`
//! (equivalent to `pamr shard`).

use pamr_sim::cli::Options;
use pamr_sim::shard::ShardPartial;
use pamr_sim::summary::Summary;

fn main() {
    let opts = Options::from_args();
    let mesh = pamr_sim::paper_mesh();
    let model = pamr_sim::paper_model();
    if !opts.shard.is_full() {
        let out = opts.out.unwrap_or_else(|| {
            eprintln!("--shard i/N needs --out FILE to receive the partial results");
            std::process::exit(2);
        });
        eprintln!(
            "running shard {} of the campaign ({} trials per sweep point, {} worker thread(s)) ...",
            opts.shard,
            opts.trials,
            rayon::current_num_threads()
        );
        let partial = ShardPartial::run(&mesh, &model, opts.trials, opts.seed, opts.shard);
        std::fs::write(&out, partial.to_json())
            .unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
        eprintln!(
            "wrote {} sweep points to {} (recombine with `pamr merge`)",
            partial.points.len(),
            out.display()
        );
        return;
    }
    eprintln!(
        "running the full campaign ({} trials per sweep point, {} worker thread(s)) ...",
        opts.trials,
        rayon::current_num_threads()
    );
    let s = Summary::run(&mesh, &model, opts.trials, opts.seed);
    print!("{}", s.render_report());
    eprint!("{}", s.render_timings());
}
