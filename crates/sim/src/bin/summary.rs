//! Regenerates the §6.4 summary statistics: success rates, inverse-power
//! ratios versus XY, the static-power fraction and mean runtimes.

use pamr_sim::cli::Options;
use pamr_sim::summary::Summary;

fn main() {
    let opts = Options::from_args();
    let mesh = pamr_sim::paper_mesh();
    let model = pamr_sim::paper_model();
    eprintln!(
        "running the full campaign ({} trials per sweep point) ...",
        opts.trials
    );
    let s = Summary::run(&mesh, &model, opts.trials, opts.seed);
    println!("{}", s.render());
    println!("pooled over {} instances", s.pooled.trials);
}
