//! Reproduces Figure 2: the XY / 1-MP / 2-MP comparison on the paper's toy
//! instance (`P_leak = 0`, `P_0 = 1`, `α = 3`, `BW = 4`, two communications
//! of sizes 1 and 3 between opposite corners of a 2×2 mesh).

use pamr_mesh::{Coord, Mesh, Path};
use pamr_power::PowerModel;
use pamr_routing::{Comm, CommSet, Routing};

fn main() {
    let mesh = Mesh::new(2, 2);
    let src = Coord::new(0, 0);
    let snk = Coord::new(1, 1);
    let cs = CommSet::new(
        mesh,
        vec![Comm::new(src, snk, 1.0), Comm::new(src, snk, 3.0)],
    );
    let model = PowerModel::fig2();

    let xy = Routing::single(&cs, vec![Path::xy(src, snk), Path::xy(src, snk)]);
    let mp1 = Routing::single(&cs, vec![Path::xy(src, snk), Path::yx(src, snk)]);
    let mp2 = Routing::multi(vec![
        vec![(Path::xy(src, snk), 1.0)],
        vec![(Path::xy(src, snk), 1.0), (Path::yx(src, snk), 2.0)],
    ]);

    println!("Figure 2 — comparison of routing rules (paper values: 128 / 56 / 32)");
    for (name, routing, paper) in [
        ("XY  ", &xy, 128.0),
        ("1-MP", &mp1, 56.0),
        ("2-MP", &mp2, 32.0),
    ] {
        let p = routing
            .power(&cs, &model)
            .expect("Fig. 2 routings are feasible")
            .total();
        println!("P_{name} = {p:7.2}   (paper: {paper})");
        assert!((p - paper).abs() < 1e-9, "mismatch vs the paper");
    }
    println!("all three match the paper exactly");
}
