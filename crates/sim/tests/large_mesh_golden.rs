//! Large-mesh golden fixture for the flat-CSR engine family.
//!
//! `tests/fixtures/large_mesh_golden.json` pins a seeded 64×64 instance
//! (10³ length-targeted communications, the `pamr-bench scaling` lane's
//! traffic shape) routed through the three CSR-backed heuristics. The
//! committed fingerprint covers, per engine, the full power breakdown
//! and a bit-exact checksum of every per-link load — a band-arithmetic
//! or crossing-index regression that only surfaces past the 8×8 paper
//! mesh (long diagonals, thousands of index rows) changes these bits and
//! fails here, while `tests/scaling_differential.rs` localises it
//! against the reference engines.
//!
//! When a change *intentionally* alters routing decisions, regenerate
//! and review the diff:
//!
//! ```text
//! PAMR_BLESS=1 cargo test -p pamr-sim --test large_mesh_golden --release
//! ```

use pamr_mesh::Mesh;
use pamr_routing::{CommSet, HeuristicKind};
use pamr_workload::LengthTargetedWorkload;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The pinned instance: the scaling lane's traffic shape (length-8 local
/// draws keep band memory linear in the count) at the lane's golden size.
const ROWS: usize = 64;
const COLS: usize = 64;
const COMMS: usize = 1000;
const PATH_LEN: usize = 8;
const SEED: u64 = 0x60_1D64;

/// The engines the fixture pins — the three with rewritten CSR hot paths.
const ENGINES: [HeuristicKind; 3] = [HeuristicKind::Ig, HeuristicKind::Xyi, HeuristicKind::Pr];

/// Schema of `fixtures/large_mesh_golden.json`.
#[derive(Debug, Serialize, Deserialize)]
struct Golden {
    schema: u32,
    rows: usize,
    cols: usize,
    comms: usize,
    path_len: usize,
    seed: u64,
    /// One fingerprint per entry of [`ENGINES`], in order.
    engines: Vec<EngineGolden>,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct EngineGolden {
    name: String,
    /// Power breakdown, bit for bit.
    power_total: u64,
    leakage: u64,
    dynamic: u64,
    active_links: usize,
    /// Order-sensitive FNV-1a over `(link index, load bits)` of every
    /// link — any single-link divergence flips this.
    load_digest: u64,
    max_load: u64,
}

fn instance() -> CommSet {
    let mesh = Mesh::new(ROWS, COLS);
    let mut rng = SmallRng::seed_from_u64(SEED);
    LengthTargetedWorkload::new(COMMS, 100.0, 800.0, PATH_LEN).generate(&mesh, &mut rng)
}

fn fingerprint(kind: HeuristicKind, cs: &CommSet) -> EngineGolden {
    let model = pamr_sim::paper_model();
    let routing = kind.route(cs, &model);
    let power = routing
        .power(cs, &model)
        .expect("the pinned instance is feasible under every engine");
    let loads = routing.loads(cs);
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut max_load: f64 = 0.0;
    for l in cs.mesh().links() {
        let v = loads.get(l);
        for word in [l.index() as u64, v.to_bits()] {
            digest = (digest ^ word).wrapping_mul(0x0000_0100_0000_01b3);
        }
        max_load = max_load.max(v);
    }
    EngineGolden {
        name: format!("{kind:?}"),
        power_total: power.total().to_bits(),
        leakage: power.leakage.to_bits(),
        dynamic: power.dynamic.to_bits(),
        active_links: power.active_links,
        load_digest: digest,
        max_load: max_load.to_bits(),
    }
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/large_mesh_golden.json")
}

#[test]
fn csr_engines_reproduce_the_committed_large_mesh_fixture() {
    let cs = instance();
    let current = Golden {
        schema: 1,
        rows: ROWS,
        cols: COLS,
        comms: COMMS,
        path_len: PATH_LEN,
        seed: SEED,
        engines: ENGINES.iter().map(|&k| fingerprint(k, &cs)).collect(),
    };

    let path = fixture_path();
    if std::env::var_os("PAMR_BLESS").is_some() {
        let json = serde_json::to_string_pretty(&current).expect("fixture serialises");
        std::fs::write(&path, json + "\n").expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with PAMR_BLESS=1 to create it",
            path.display()
        )
    });
    let golden: Golden = serde_json::from_str(&text).expect("fixture parses");
    assert_eq!(golden.schema, 1, "unknown fixture schema");
    assert_eq!(
        (
            golden.rows,
            golden.cols,
            golden.comms,
            golden.path_len,
            golden.seed
        ),
        (ROWS, COLS, COMMS, PATH_LEN, SEED),
        "fixture from a different instance"
    );
    for (want, got) in golden.engines.iter().zip(&current.engines) {
        assert_eq!(
            want, got,
            "{} diverged on the 64x64 golden instance (if intentional: \
             PAMR_BLESS=1 cargo test -p pamr-sim --test large_mesh_golden --release)",
            got.name
        );
    }
    assert_eq!(golden.engines.len(), current.engines.len());
}
