//! Golden-fixture pin of the `pamr serve` wire protocol, byte for byte.
//!
//! `fixtures/session_script.jsonl` is a hand-written request script (its
//! first three lines double as the CI smoke test's input) and
//! `fixtures/session_golden.jsonl` holds the expected response lines.
//! Any change to the response schema — field names, field order, number
//! formatting, error wording — shows up here as a byte diff. To accept an
//! intentional change, regenerate with:
//!
//! ```text
//! PAMR_BLESS=1 cargo test -p pamr-sim --test session_golden
//! ```
//!
//! and review the fixture diff like any other code change.

use pamr_power::PowerModel;
use pamr_routing::SessionConfig;
use pamr_sim::serve::Server;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn wire_protocol_matches_golden_fixture() {
    // The CI smoke test and the README example both run this exact
    // configuration: the paper's 8×8 mesh, Kim–Horowitz model, default
    // (bounded XYI) repair.
    let mut server = Server::new(
        pamr_sim::paper_mesh(),
        PowerModel::kim_horowitz(),
        SessionConfig::default(),
    );
    let script = std::fs::read_to_string(fixture("session_script.jsonl"))
        .expect("fixtures/session_script.jsonl is checked in");
    let mut produced = String::new();
    for line in script.lines().filter(|l| !l.trim().is_empty()) {
        produced.push_str(&server.handle_line(line));
        produced.push('\n');
    }

    let golden_path = fixture("session_golden.jsonl");
    if std::env::var_os("PAMR_BLESS").is_some() {
        std::fs::write(&golden_path, &produced).expect("write golden fixture");
        eprintln!("blessed {}", golden_path.display());
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with PAMR_BLESS=1",
            golden_path.display()
        )
    });
    assert_eq!(
        produced, golden,
        "serve responses drifted from the golden fixture; if intentional, \
         regenerate with PAMR_BLESS=1 and review the diff"
    );
}

#[test]
fn golden_responses_line_up_with_script_requests() {
    // Structural sanity independent of exact bytes: one response per
    // request, every response is parseable JSON with a boolean `ok`, and
    // responses echo the request `op` they answer (parse errors echo null).
    let script = std::fs::read_to_string(fixture("session_script.jsonl")).unwrap();
    let golden = std::fs::read_to_string(fixture("session_golden.jsonl")).unwrap();
    let requests: Vec<&str> = script.lines().filter(|l| !l.trim().is_empty()).collect();
    let responses: Vec<&str> = golden.lines().collect();
    assert_eq!(requests.len(), responses.len());
    for (req, resp) in requests.iter().zip(&responses) {
        let r: serde::Value = serde_json::from_str(resp).expect("golden line parses");
        assert!(
            matches!(r.get("ok"), Some(serde::Value::Bool(_))),
            "{resp}: missing boolean ok"
        );
        if let Ok(rq) = serde_json::from_str::<serde::Value>(req) {
            let req_op = rq.get("op").cloned().unwrap_or(serde::Value::Null);
            if let serde::Value::Str(_) = req_op {
                assert_eq!(r.get("op"), Some(&req_op), "{resp}: op echo");
            }
        }
    }
}
