//! Property tests for [`PointStats::merge`] — the reduction operator the
//! parallel campaign engine relies on.
//!
//! The work-pool splits a sweep point's trials into chunks, folds each
//! chunk with [`PointStats::add`]-style accumulation and merges the chunk
//! accumulators in chunk order. That is sound because `merge` is:
//!
//! * **commutative** — exact, including the floating-point sums (IEEE
//!   addition commutes bit-for-bit);
//! * **associative** — exact on every counter, and within floating-point
//!   tolerance on the `f64` sums (IEEE addition does not associate
//!   bit-for-bit, which is precisely why the engine also fixes the chunk
//!   boundaries and the combine order: determinism comes from the fixed
//!   schedule, statistical correctness from the properties checked here);
//! * **unital** — the default accumulator is an identity.
//!
//! The chunking property puts it together: accumulating any sequence of
//! trials under *arbitrary* chunk boundaries and merging in order agrees
//! with the sequential left fold.

use pamr_sim::{HeurAgg, PointStats};
use proptest::prelude::*;

/// Number of per-policy slots ([`pamr_routing::HeuristicKind::ALL`]).
const POLICIES: usize = 6;

/// Strategy: one synthetic trial's contribution to the accumulator.
///
/// Values are drawn directly (not by routing real instances) so the tests
/// explore far more of the state space than real campaigns would.
fn trial() -> impl Strategy<Value = PointStats> {
    prop::collection::vec(
        (
            0u32..2,
            0.0f64..1.0,
            0.0f64..0.01,
            0u64..50_000,
            0.0f64..1.0,
        ),
        POLICIES,
    )
    .prop_map(|per| {
        let best = per.iter().any(|&(s, ..)| s == 1);
        // BEST's per-trial pooled quantities: the winning policy's inverse
        // power dominates every member's, its static fraction is one of
        // theirs — any representative values exercise the merge the same.
        let sum_best_inv = if best {
            per.iter()
                .map(|&(_, _, inv, ..)| inv)
                .fold(0.0f64, f64::max)
        } else {
            0.0
        };
        let sum_best_static_frac = if best {
            per.iter().map(|&(.., frac)| frac).fold(0.0f64, f64::max)
        } else {
            0.0
        };
        PointStats {
            trials: 1,
            best_successes: best as usize,
            sum_best_inv,
            sum_best_static_frac,
            per_heur: per
                .into_iter()
                .map(|(succ, norm_inv, inv, micros, frac)| HeurAgg {
                    successes: succ as usize,
                    sum_norm_inv: norm_inv,
                    sum_inv: inv,
                    sum_micros: micros,
                    sum_static_frac: frac,
                })
                .collect(),
        }
    })
}

/// Exact equality on the counters, relative tolerance on the f64 sums.
fn assert_stats_eq(a: &PointStats, b: &PointStats, what: &str) -> Result<(), String> {
    prop_assert_eq!(a.trials, b.trials, "{}: trials", what);
    prop_assert_eq!(a.best_successes, b.best_successes, "{}: best", what);
    for (u, v, field) in [
        (a.sum_best_inv, b.sum_best_inv, "sum_best_inv"),
        (
            a.sum_best_static_frac,
            b.sum_best_static_frac,
            "sum_best_static_frac",
        ),
    ] {
        let tol = 1e-12 * (1.0 + u.abs().max(v.abs()));
        prop_assert!((u - v).abs() <= tol, "{what}: {field} {u} vs {v}");
    }
    for (i, (x, y)) in a.per_heur.iter().zip(&b.per_heur).enumerate() {
        prop_assert_eq!(x.successes, y.successes, "{}: successes[{}]", what, i);
        prop_assert_eq!(x.sum_micros, y.sum_micros, "{}: micros[{}]", what, i);
        for (u, v, field) in [
            (x.sum_norm_inv, y.sum_norm_inv, "sum_norm_inv"),
            (x.sum_inv, y.sum_inv, "sum_inv"),
            (x.sum_static_frac, y.sum_static_frac, "sum_static_frac"),
        ] {
            let tol = 1e-12 * (1.0 + u.abs().max(v.abs()));
            prop_assert!((u - v).abs() <= tol, "{what}: {field}[{i}] {u} vs {v}");
        }
    }
    Ok(())
}

/// Bitwise equality of every field (for properties that must hold exactly).
fn fingerprint(s: &PointStats) -> Vec<u64> {
    let mut out = vec![
        s.trials as u64,
        s.best_successes as u64,
        s.sum_best_inv.to_bits(),
        s.sum_best_static_frac.to_bits(),
    ];
    for agg in &s.per_heur {
        out.push(agg.successes as u64);
        out.push(agg.sum_norm_inv.to_bits());
        out.push(agg.sum_inv.to_bits());
        out.push(agg.sum_micros);
        out.push(agg.sum_static_frac.to_bits());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn merge_commutes_exactly(a in trial(), b in trial()) {
        let ab = a.clone().merge(b.clone());
        let ba = b.merge(a);
        prop_assert_eq!(fingerprint(&ab), fingerprint(&ba));
    }

    #[test]
    fn merge_associates(a in trial(), b in trial(), c in trial()) {
        let left = a.clone().merge(b.clone()).merge(c.clone());
        let right = a.merge(b.merge(c));
        assert_stats_eq(&left, &right, "associativity")?;
    }

    #[test]
    fn default_is_identity(a in trial()) {
        let left = PointStats::default().merge(a.clone());
        let right = a.clone().merge(PointStats::default());
        prop_assert_eq!(fingerprint(&left), fingerprint(&a));
        prop_assert_eq!(fingerprint(&right), fingerprint(&a));
    }

    #[test]
    fn arbitrary_chunkings_agree_with_sequential_fold(
        trials in prop::collection::vec(trial(), 1..40),
        cuts in prop::collection::vec(0usize..40, 0..6),
    ) {
        // Sequential reference: one left fold over every trial.
        let sequential = trials
            .iter()
            .fold(PointStats::default(), |acc, t| acc.merge(t.clone()));
        // Chunked: split at arbitrary (sorted, deduplicated) boundaries,
        // fold each chunk independently, merge chunk accumulators in order
        // — exactly the parallel engine's shape.
        let mut bounds: Vec<usize> = cuts
            .into_iter()
            .map(|c| c % (trials.len() + 1))
            .collect();
        bounds.push(0);
        bounds.push(trials.len());
        bounds.sort_unstable();
        bounds.dedup();
        let chunked = bounds
            .windows(2)
            .map(|w| {
                trials[w[0]..w[1]]
                    .iter()
                    .fold(PointStats::default(), |acc, t| acc.merge(t.clone()))
            })
            .fold(PointStats::default(), PointStats::merge);
        assert_stats_eq(&chunked, &sequential, "chunking")?;
    }

    #[test]
    fn same_chunking_is_bit_reproducible(
        trials in prop::collection::vec(trial(), 1..40),
        chunk in 1usize..9,
    ) {
        // The determinism contract: identical chunk boundaries yield a
        // bit-identical result no matter how often the fold is repeated.
        let run = || {
            trials
                .chunks(chunk)
                .map(|c| c.iter().fold(PointStats::default(), |acc, t| acc.merge(t.clone())))
                .fold(PointStats::default(), PointStats::merge)
        };
        prop_assert_eq!(fingerprint(&run()), fingerprint(&run()));
    }
}
