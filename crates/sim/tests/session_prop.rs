//! Shrinking property tests for the `pamr serve` protocol: arbitrary
//! request scripts — duplicate ids, removals of absent communications,
//! off-mesh endpoints, non-positive weights, garbage lines, 1×1 meshes —
//! must never panic the server, never desync its resident load indices
//! from a naive recomputation, and always answer structured JSON.
//!
//! Replay any failure with `PAMR_PROPTEST_SEED=<seed>`.

use pamr_mesh::LoadMap;
use pamr_power::PowerModel;
use pamr_routing::SessionConfig;
use pamr_sim::serve::Server;
use proptest::prelude::*;
use serde::Value;
use std::collections::HashMap;

/// One raw script step, encoded as plain integers so the shrinker can
/// minimise scripts without a bespoke `Arbitrary` impl.
type Step = (u8, u8, (usize, usize), (usize, usize), i32);

/// Renders a step as a request line. Selector 5 produces garbage that is
/// not JSON at all.
fn render(step: &Step) -> String {
    let (sel, id, (u1, v1), (u2, v2), w) = *step;
    let id = format!("c{}", id % 6);
    match sel % 6 {
        0 => format!(
            "{{\"op\":\"add_comm\",\"id\":\"{id}\",\"src\":{{\"u\":{u1},\"v\":{v1}}},\
             \"snk\":{{\"u\":{u2},\"v\":{v2}}},\"weight\":{w}}}"
        ),
        1 => format!("{{\"op\":\"remove_comm\",\"id\":\"{id}\"}}"),
        2 => "{\"op\":\"reroute\"}".to_string(),
        3 => "{\"op\":\"power_report\"}".to_string(),
        4 => "{\"op\":\"snapshot\"}".to_string(),
        _ => format!("op=add id={id} w={w}"),
    }
}

/// What a correct server must answer for this step, given the set of live
/// ids: `true` = success, `false` = structured error. Also updates the
/// mirror.
fn expect(step: &Step, rows: usize, cols: usize, live: &mut HashMap<String, ()>) -> bool {
    let (sel, id, (u1, v1), (u2, v2), w) = *step;
    let id = format!("c{}", id % 6);
    match sel % 6 {
        0 => {
            let ok = !live.contains_key(&id)
                && w > 0
                && u1 < rows
                && v1 < cols
                && u2 < rows
                && v2 < cols;
            if ok {
                live.insert(id, ());
            }
            ok
        }
        1 => live.remove(&id).is_some(),
        2..=4 => true,
        _ => false,
    }
}

fn script() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (
            0u8..=5,
            0u8..=7,
            ((0usize..8), (0usize..8)),
            ((0usize..8), (0usize..8)),
            -50i32..=3000,
        ),
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_scripts_never_panic_or_desync(
        (rows, cols) in (1usize..=5, 1usize..=5),
        steps in script(),
    ) {
        let mesh = pamr_mesh::Mesh::new(rows, cols);
        let mut server = Server::new(mesh, PowerModel::kim_horowitz(), SessionConfig::default());
        let mut live: HashMap<String, ()> = HashMap::new();
        for step in &steps {
            let line = render(step);
            let should_succeed = expect(step, rows, cols, &mut live);
            let resp = server.handle_line(&line);
            // Structured JSON, never process death: the response parses and
            // carries a boolean `ok` matching the mirror's prediction.
            let value: Value = serde_json::from_str(&resp)
                .unwrap_or_else(|e| panic!("unparseable response {resp:?}: {e}"));
            let ok = match value.get("ok") {
                Some(Value::Bool(b)) => *b,
                other => panic!("response {resp:?} has no boolean ok: {other:?}"),
            };
            prop_assert_eq!(ok, should_succeed, "{} -> {}", line, resp);
            if !ok {
                let is_err_shape = matches!(value.get("error"), Some(Value::Str(_)));
                prop_assert!(is_err_shape, "error response without message: {}", resp);
            }
        }
        // The resident indices survived the whole script bit-exactly.
        let session = server.session();
        prop_assert_eq!(session.len(), live.len());
        let mut naive = LoadMap::new(session.mesh());
        for (_, c, p) in session.live() {
            naive.add_path(session.mesh(), p, c.weight);
        }
        for l in session.mesh().links() {
            prop_assert_eq!(
                session.loads().get(l).to_bits(),
                naive.get(l).to_bits(),
                "resident load of {} desynced", l
            );
        }
        prop_assert_eq!(session.max_load().to_bits(), naive.max_load().to_bits());
    }

    #[test]
    fn empty_and_local_comms_are_harmless(
        n in 0usize..10,
    ) {
        // Core-local communications on a 1×1 mesh: the only legal adds.
        let mesh = pamr_mesh::Mesh::new(1, 1);
        let mut server = Server::new(mesh, PowerModel::kim_horowitz(), SessionConfig::default());
        for i in 0..n {
            let resp = server.handle_line(&format!(
                "{{\"op\":\"add_comm\",\"id\":\"c{i}\",\"src\":{{\"u\":0,\"v\":0}},\
                 \"snk\":{{\"u\":0,\"v\":0}},\"weight\":10}}"
            ));
            prop_assert!(resp.starts_with("{\"ok\":true"), "{}", resp);
        }
        let report = server.handle_line("{\"op\":\"power_report\"}");
        prop_assert!(report.contains("\"feasible\":true"), "{}", report);
        prop_assert!(report.contains("\"max_load\":0.0"), "{}", report);
        prop_assert_eq!(server.session().len(), n);
    }
}

#[test]
fn coord_field_rejects_scalars() {
    let mesh = pamr_mesh::Mesh::new(3, 3);
    let mut server = Server::new(mesh, PowerModel::kim_horowitz(), SessionConfig::default());
    let resp =
        server.handle_line(r#"{"op":"add_comm","id":"a","src":7,"snk":{"u":0,"v":0},"weight":1}"#);
    assert!(resp.contains(r#""ok":false"#), "{resp}");
    assert!(resp.contains("must be a"), "{resp}");
}
