//! Cross-process sharding contract: splitting the pooled §6 campaign into
//! N shards and recombining the partials must reproduce the single-process
//! run bit-for-bit — the property that makes multi-host fan-out safe — and
//! the partial-result JSON must round-trip exactly.

use pamr_sim::shard::{merge_partials, ShardPartial};
use pamr_sim::summary::Summary;
use pamr_sim::{PointStats, ShardSpec};

/// Every deterministic field of the pooled accumulator, bit for bit.
fn fingerprint(s: &PointStats) -> Vec<u64> {
    let mut out = vec![
        s.trials as u64,
        s.best_successes as u64,
        s.sum_best_inv.to_bits(),
        s.sum_best_static_frac.to_bits(),
    ];
    for agg in &s.per_heur {
        out.push(agg.successes as u64);
        out.push(agg.sum_norm_inv.to_bits());
        out.push(agg.sum_inv.to_bits());
        out.push(agg.sum_static_frac.to_bits());
        // sum_micros is wall-clock-dependent and deliberately excluded.
    }
    out
}

#[test]
fn sharded_campaign_is_byte_identical_to_single_process() {
    let mesh = pamr_sim::paper_mesh();
    let model = pamr_sim::paper_model();
    let (trials, seed) = (1, 42);
    let single = Summary::run(&mesh, &model, trials, seed);
    for count in [2, 3] {
        let partials: Vec<ShardPartial> = (0..count)
            .map(|i| ShardPartial::run(&mesh, &model, trials, seed, ShardSpec::new(i, count)))
            .collect();
        // Shards partition the sweep-point grid.
        let total: usize = partials.iter().map(|p| p.points.len()).sum();
        assert_eq!(
            total,
            single.pooled.trials / trials,
            "{count} shards do not partition the grid"
        );
        let merged = merge_partials(&partials).expect("complete shard set merges");
        assert_eq!(
            fingerprint(&merged.pooled),
            fingerprint(&single.pooled),
            "{count}-shard merge diverged from the single-process pooled stats"
        );
        // The rendered §6.4 report is the user-facing byte-identity.
        assert_eq!(
            merged.summary().render_report(),
            single.render_report(),
            "{count}-shard report diverged"
        );
    }
}

#[test]
fn partial_json_round_trips_exactly() {
    let mesh = pamr_sim::paper_mesh();
    let model = pamr_sim::paper_model();
    let partial = ShardPartial::run(&mesh, &model, 1, 7, ShardSpec::new(1, 3));
    let json = partial.to_json();
    let back = ShardPartial::from_json(&json).expect("partial JSON parses");
    assert_eq!(back.schema, partial.schema);
    assert_eq!(back.shard_index, 1);
    assert_eq!(back.shard_count, 3);
    assert_eq!(back.trials, partial.trials);
    assert_eq!(back.seed, partial.seed);
    assert_eq!(back.points.len(), partial.points.len());
    for (a, b) in partial.points.iter().zip(&back.points) {
        assert_eq!(a.exp_id, b.exp_id);
        assert_eq!(
            (a.figure, a.experiment, a.point_index),
            (b.figure, b.experiment, b.point_index)
        );
        assert_eq!(a.x.to_bits(), b.x.to_bits(), "x of {}", a.exp_id);
        assert_eq!(
            fingerprint(&a.stats),
            fingerprint(&b.stats),
            "stats of {} point {} did not round-trip bit-exactly",
            a.exp_id,
            a.point_index
        );
        // The timing sum round-trips too (it is a plain u64).
        for (x, y) in a.stats.per_heur.iter().zip(&b.stats.per_heur) {
            assert_eq!(x.sum_micros, y.sum_micros);
        }
    }
    // And the re-serialised text is byte-identical.
    assert_eq!(json, back.to_json());
}

#[test]
fn merging_partials_from_different_campaigns_fails() {
    let mesh = pamr_sim::paper_mesh();
    let model = pamr_sim::paper_model();
    let a = ShardPartial::run(&mesh, &model, 1, 7, ShardSpec::new(0, 2));
    let b = ShardPartial::run(&mesh, &model, 1, 8, ShardSpec::new(1, 2));
    assert!(
        merge_partials(&[a, b]).is_err(),
        "partials with different seeds must not merge"
    );
}
