//! Smoke tests: every figure/summary binary must run end to end on a tiny
//! budget (few trials, fixed seed) without panicking, so the figure
//! pipeline is exercised by `cargo test`, not only by hand or in benches.

use std::path::Path;
use std::process::Command;

fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("binary output is UTF-8")
}

#[test]
fn fig2_matches_paper_values() {
    let out = run(env!("CARGO_BIN_EXE_fig2"), &[]);
    assert!(out.contains("128.00"), "XY power missing:\n{out}");
    assert!(out.contains("32.00"), "2-MP power missing:\n{out}");
    assert!(out.contains("match the paper exactly"), "{out}");
}

#[test]
fn fig7_runs_and_writes_csv() {
    let dir = std::env::temp_dir().join("pamr_smoke_fig7");
    let _ = std::fs::remove_dir_all(&dir);
    let out = run(
        env!("CARGO_BIN_EXE_fig7"),
        &[
            "--trials",
            "2",
            "--seed",
            "7",
            "--csv",
            dir.to_str().unwrap(),
        ],
    );
    assert!(out.contains("fig7"), "{out}");
    assert!(out.contains("failure ratio"), "{out}");
    let csvs: Vec<_> = std::fs::read_dir(&dir)
        .expect("--csv directory was created")
        .filter_map(|e| e.ok())
        .filter(|e| {
            Path::new(&e.file_name())
                .extension()
                .is_some_and(|x| x == "csv")
        })
        .collect();
    assert!(!csvs.is_empty(), "fig7 --csv wrote no CSV files");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig8_runs() {
    let out = run(
        env!("CARGO_BIN_EXE_fig8"),
        &["--trials", "2", "--seed", "8"],
    );
    assert!(out.contains("fig8"), "{out}");
}

#[test]
fn fig9_runs() {
    let out = run(
        env!("CARGO_BIN_EXE_fig9"),
        &["--trials", "2", "--seed", "9"],
    );
    assert!(out.contains("fig9"), "{out}");
}

#[test]
fn summary_runs() {
    let out = run(
        env!("CARGO_BIN_EXE_summary"),
        &["--trials", "1", "--seed", "64"],
    );
    assert!(out.contains("success rate"), "{out}");
    assert!(out.contains("pooled over"), "{out}");
}

#[test]
fn summary_shard_mode_writes_partial_json() {
    let dir = std::env::temp_dir().join("pamr_smoke_summary_shard");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out_file = dir.join("part0.json");
    let stdout = run(
        env!("CARGO_BIN_EXE_summary"),
        &[
            "--trials",
            "1",
            "--seed",
            "64",
            "--shard",
            "0/3",
            "--out",
            out_file.to_str().unwrap(),
        ],
    );
    // Shard mode prints nothing deterministic to stdout; the partial
    // lands in the output file instead.
    assert!(stdout.is_empty(), "shard mode wrote to stdout: {stdout}");
    let text = std::fs::read_to_string(&out_file).expect("partial written");
    assert!(text.contains("\"shard_index\": 0"), "{text}");
    assert!(text.contains("\"shard_count\": 3"), "{text}");
    assert!(text.contains("\"exp_id\": \"fig7a\""), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig7_shard_renders_only_owned_points() {
    let all = run(
        env!("CARGO_BIN_EXE_fig7"),
        &["--trials", "1", "--seed", "7"],
    );
    let owned = run(
        env!("CARGO_BIN_EXE_fig7"),
        &["--trials", "1", "--seed", "7", "--shard", "1/2"],
    );
    // Shard 1/2 of fig7a owns the even x-rows 20, 40, ... (indices 1, 3,
    // ...) — fewer lines than the full sweep, drawn from the same table.
    assert!(owned.len() < all.len(), "sharded output not smaller");
    assert!(owned.contains("fig7a"), "{owned}");
}

#[test]
fn ablation_runs() {
    let out = run(
        env!("CARGO_BIN_EXE_ablation"),
        &["--trials", "2", "--seed", "3"],
    );
    assert!(out.contains("leakage ablation"), "{out}");
}

#[test]
fn theory_runs() {
    let out = run(env!("CARGO_BIN_EXE_theory"), &[]);
    assert!(out.contains("Lemma 1"), "{out}");
    assert!(out.contains("Theorem 1"), "{out}");
}

#[test]
fn seeds_are_reproducible() {
    let a = run(
        env!("CARGO_BIN_EXE_fig8"),
        &["--trials", "2", "--seed", "5"],
    );
    let b = run(
        env!("CARGO_BIN_EXE_fig8"),
        &["--trials", "2", "--seed", "5"],
    );
    assert_eq!(a, b, "same seed must reproduce identical output");
}
