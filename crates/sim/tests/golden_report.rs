//! Golden-report regression gate for the §6.4 summary pipeline.
//!
//! A committed fixture pins the **byte-exact** summary report and the
//! bit-exact pooled accumulator of a small seeded campaign. Statistics
//! regressions — like the pre-shard-PR BEST pooling bug, where the §6.4
//! BEST ratio silently degraded to a max-of-means lower bound — change
//! these bytes and fail here instead of landing unnoticed.
//!
//! When a change *intentionally* alters the statistics (new pooling rule,
//! different seeding), regenerate the fixture and review the diff:
//!
//! ```text
//! PAMR_BLESS=1 cargo test -p pamr-sim --test golden_report
//! ```

use pamr_sim::summary::Summary;
use pamr_sim::PointStats;
use serde::{Deserialize, Serialize};

/// The campaign the fixture pins: small enough for CI, big enough to pool
/// every §6 sub-figure.
const TRIALS: usize = 2;
const SEED: u64 = 0x6011D;

/// Schema of `fixtures/summary_golden.json`.
#[derive(Debug, Serialize, Deserialize)]
struct Golden {
    schema: u32,
    trials: usize,
    seed: u64,
    /// Every deterministic field of the pooled accumulator, bit for bit
    /// (wall-clock `sum_micros` excluded).
    fingerprint: Vec<u64>,
    /// The full `render_report()` stdout, byte for byte.
    report: String,
}

fn fingerprint(s: &PointStats) -> Vec<u64> {
    let mut out = vec![
        s.trials as u64,
        s.best_successes as u64,
        s.sum_best_inv.to_bits(),
        s.sum_best_static_frac.to_bits(),
    ];
    for agg in &s.per_heur {
        out.push(agg.successes as u64);
        out.push(agg.sum_norm_inv.to_bits());
        out.push(agg.sum_inv.to_bits());
        out.push(agg.sum_static_frac.to_bits());
    }
    out
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/summary_golden.json")
}

#[test]
fn summary_pipeline_reproduces_the_committed_golden_report() {
    let mesh = pamr_sim::paper_mesh();
    let model = pamr_sim::paper_model();
    let summary = Summary::run(&mesh, &model, TRIALS, SEED);
    let current = Golden {
        schema: 1,
        trials: TRIALS,
        seed: SEED,
        fingerprint: fingerprint(&summary.pooled),
        report: summary.render_report(),
    };

    let path = fixture_path();
    if std::env::var_os("PAMR_BLESS").is_some() {
        let json = serde_json::to_string_pretty(&current).expect("fixture serialises");
        std::fs::write(&path, json + "\n").expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with PAMR_BLESS=1 to create it",
            path.display()
        )
    });
    let golden: Golden = serde_json::from_str(&text).expect("fixture parses");
    assert_eq!(golden.schema, 1, "unknown fixture schema");
    assert_eq!(golden.trials, TRIALS, "fixture from a different campaign");
    assert_eq!(golden.seed, SEED, "fixture from a different campaign");
    assert_eq!(
        golden.fingerprint, current.fingerprint,
        "pooled §6.4 statistics diverged bit-exactly from the committed fixture \
         (if intentional: PAMR_BLESS=1 cargo test -p pamr-sim --test golden_report)"
    );
    assert_eq!(
        golden.report, current.report,
        "rendered §6.4 report diverged byte-for-byte from the committed fixture"
    );
}

#[test]
fn golden_report_has_the_expected_shape() {
    // Guard the fixture itself against accidental hand edits: it must
    // parse, carry the pinned campaign parameters, and contain the §6.4
    // table headline.
    if std::env::var_os("PAMR_BLESS").is_some() {
        // The sibling test is rewriting the fixture concurrently.
        return;
    }
    let text = std::fs::read_to_string(fixture_path()).expect("fixture exists");
    let golden: Golden = serde_json::from_str(&text).expect("fixture parses");
    assert_eq!((golden.trials, golden.seed), (TRIALS, SEED));
    assert!(golden.report.contains("§6.4 summary statistics"));
    assert!(golden.report.contains("BEST inv-power ratio"));
    assert!(golden.report.contains("pooled over"));
    // 4 pooled fields + 4 per policy × 6 policies.
    assert_eq!(golden.fingerprint.len(), 4 + 4 * 6);
}
