//! Sharded figure recombination: `merge_figures` must rebuild the
//! Figure 7–9 `ExperimentResult` tables from 2- and 3-shard runs so that
//! the rendered text tables equal the unsharded ones byte for byte — the
//! per-figure counterpart of the pooled §6.4 byte-identity gate in
//! `shard_merge.rs`.

use pamr_sim::campaign::{experiment_seed, Campaign};
use pamr_sim::experiments::campaign_figures;
use pamr_sim::shard::{merge_figures, merge_partials, MergeError, ShardPartial};
use pamr_sim::table::{failure_table, norm_inv_table};
use pamr_sim::ShardSpec;

#[test]
fn sharded_figures_render_identically_to_the_unsharded_run() {
    let mesh = pamr_sim::paper_mesh();
    let model = pamr_sim::paper_model();
    let (trials, seed) = (1, 42);

    // The unsharded reference: one full partial, recombined trivially.
    let single = ShardPartial::run(&mesh, &model, trials, seed, ShardSpec::FULL);
    let reference = merge_figures(std::slice::from_ref(&single)).expect("full partial merges");
    assert_eq!(reference.len(), 3, "fig7, fig8, fig9");

    // The recombined tables must also equal a direct (non-shard-pipeline)
    // campaign run under the pooled-campaign seeding — the ground truth
    // the shard pipeline is supposed to reproduce.
    for (fi, fig) in campaign_figures().into_iter().enumerate() {
        for (ei, exp) in fig.iter().enumerate() {
            let direct = Campaign {
                mesh: &mesh,
                model: &model,
                trials,
                seed: experiment_seed(seed, fi, ei),
                shard: ShardSpec::FULL,
                pre: None,
                engine: pamr_routing::EngineConfig::LIVE,
            }
            .run_experiment(exp);
            assert_eq!(direct.id, reference[fi][ei].id);
            assert_eq!(
                norm_inv_table(&direct),
                norm_inv_table(&reference[fi][ei]),
                "direct {} norm-inv table diverged from the recombined one",
                exp.id
            );
            assert_eq!(
                failure_table(&direct),
                failure_table(&reference[fi][ei]),
                "direct {} failure table diverged from the recombined one",
                exp.id
            );
        }
    }

    // 2- and 3-shard runs recombine to byte-identical tables.
    for count in [2, 3] {
        let partials: Vec<ShardPartial> = (0..count)
            .map(|i| ShardPartial::run(&mesh, &model, trials, seed, ShardSpec::new(i, count)))
            .collect();
        let merged = merge_figures(&partials).expect("complete shard set merges");
        for (fi, group) in merged.iter().enumerate() {
            for (ei, res) in group.iter().enumerate() {
                let expect = &reference[fi][ei];
                assert_eq!(res.id, expect.id);
                assert_eq!(
                    res.points.len(),
                    expect.points.len(),
                    "{}-shard {} lost sweep points",
                    count,
                    res.id
                );
                assert_eq!(
                    norm_inv_table(res),
                    norm_inv_table(expect),
                    "{}-shard {} norm-inv table diverged",
                    count,
                    res.id
                );
                assert_eq!(
                    failure_table(res),
                    failure_table(expect),
                    "{}-shard {} failure table diverged",
                    count,
                    res.id
                );
            }
        }
        // The same partials still pool to the same §6.4 accumulator, so
        // one shard run serves both the summary and the figures.
        let pooled = merge_partials(&partials).expect("pooled merge");
        assert_eq!(
            pooled.pooled.trials,
            merged.iter().flatten().flat_map(|r| &r.points).count() * trials
        );
    }
}

#[test]
fn merge_figures_rejects_incomplete_shard_sets() {
    let mesh = pamr_sim::paper_mesh();
    let model = pamr_sim::paper_model();
    let half = ShardPartial::run(&mesh, &model, 1, 7, ShardSpec::new(0, 2));
    let err = merge_figures(std::slice::from_ref(&half)).unwrap_err();
    assert_eq!(err, MergeError::MissingShards(vec![1]));
    assert!(matches!(merge_figures(&[]), Err(MergeError::Empty)));
}
