//! Frank–Wolfe convex multi-commodity-flow solver: an approximately
//! optimal **max-MP** routing under continuous frequency scaling.
//!
//! The paper leaves "a bound on the optimal solution" as future work
//! (§7). With `P_leak = 0` and continuous frequencies the multi-path
//! problem is a convex min-cost multi-commodity flow over per-communication
//! DAGs (the staircase bands), which Frank–Wolfe solves to arbitrary
//! precision: each iteration routes every communication entirely on its
//! cheapest path under the *marginal* link costs and moves a shrinking step
//! towards that assignment. The duality gap gives a certified lower bound
//! on the optimal dynamic power of **any** Manhattan routing (single- or
//! multi-path), which the simulation harness uses to situate the heuristics
//! in absolute terms.

use crate::comm::CommSet;
use crate::routing::Routing;
use pamr_mesh::{Band, Coord, LoadMap, Mesh, Path, Step};
use pamr_power::PowerModel;
use std::collections::BTreeMap;

/// Result of a Frank–Wolfe run.
#[derive(Debug, Clone)]
pub struct FrankWolfeResult {
    /// The fractional multi-path routing found.
    pub routing: Routing,
    /// Its per-link loads.
    pub loads: LoadMap,
    /// Its dynamic power (the objective; leakage ignored).
    pub dynamic_power: f64,
    /// Certified lower bound on the optimal dynamic power of any
    /// Manhattan routing (from the final duality gap).
    pub lower_bound: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// Marginal dynamic cost of a link at the given load, under continuous
/// scaling: `d/dload [P_0 · (load · unit)^α] = α·P_0·unit^α·load^(α−1)`.
fn marginal(model: &PowerModel, load: f64) -> f64 {
    model.alpha * model.p0 * model.load_unit.powf(model.alpha) * load.powf(model.alpha - 1.0)
}

/// Dynamic power of a load map under continuous scaling (no capacity).
fn dynamic_power(model: &PowerModel, loads: &LoadMap) -> f64 {
    loads
        .iter_active()
        .map(|(_, l)| model.p0 * (l * model.load_unit).powf(model.alpha))
        .sum()
}

/// Cheapest Manhattan path for `src → snk` under per-link costs, by dynamic
/// programming over the band (diagonal order).
fn cheapest_path(mesh: &Mesh, costs: &LoadMap, model: &PowerModel, src: Coord, snk: Coord) -> Path {
    if src == snk {
        return Path::from_moves(src, vec![]);
    }
    let band = Band::new(mesh, src, snk);
    // dist[core] = cheapest marginal cost from src; pred[core] = best step.
    let mut dist: BTreeMap<usize, f64> = BTreeMap::new();
    let mut pred: BTreeMap<usize, (usize, Step)> = BTreeMap::new();
    dist.insert(mesh.core_index(src), 0.0);
    for g in band.groups() {
        for &l in g {
            let (from, to) = mesh.link_endpoints(l);
            let (fi, ti) = (mesh.core_index(from), mesh.core_index(to));
            if let Some(&df) = dist.get(&fi) {
                let cand = df + marginal(model, costs.get(l));
                if dist.get(&ti).is_none_or(|&dt| cand < dt) {
                    dist.insert(ti, cand);
                    pred.insert(ti, (fi, mesh.link_step(l)));
                }
            }
        }
    }
    // Reconstruct the move sequence backwards from the sink.
    let mut moves: Vec<Step> = Vec::with_capacity(band.len());
    let mut cur = mesh.core_index(snk);
    while cur != mesh.core_index(src) {
        let (prev, step) = pred[&cur];
        moves.push(step);
        cur = prev;
    }
    moves.reverse();
    Path::from_moves(src, moves)
}

/// Runs Frank–Wolfe for `iterations` steps (the classic `2/(k+2)` step
/// size) and returns the fractional multi-path routing, its dynamic power
/// and a certified lower bound on the optimum.
///
/// Only meaningful under **continuous** frequency scaling with negligible
/// leakage; the solver ignores capacities and the discrete levels (it is a
/// bound/ablation tool, not one of the paper's heuristics).
pub fn frank_wolfe(cs: &CommSet, model: &PowerModel, iterations: usize) -> FrankWolfeResult {
    let mesh = cs.mesh();
    // flows[i]: move-sequence → rate. Ordered so that rate sums, support
    // pruning and the final flow listing are independent of hasher state.
    let mut flows: Vec<BTreeMap<Vec<Step>, f64>> = vec![BTreeMap::new(); cs.len()];
    let mut loads = LoadMap::new(mesh);
    // Initial all-or-nothing assignment on XY paths.
    for (i, c) in cs.comms().iter().enumerate() {
        let p = Path::xy(c.src, c.snk);
        loads.add_path(mesh, &p, c.weight);
        flows[i].insert(p.moves().to_vec(), c.weight);
    }
    let mut lower_bound: f64 = 0.0;
    let mut iters_done = 0;
    for k in 0..iterations {
        // All-or-nothing target under current marginal costs.
        let mut target = LoadMap::new(mesh);
        let mut target_paths: Vec<Path> = Vec::with_capacity(cs.len());
        for c in cs.comms() {
            let p = cheapest_path(mesh, &loads, model, c.src, c.snk);
            target.add_path(mesh, &p, c.weight);
            target_paths.push(p);
        }
        // Duality-gap lower bound: f(x) + ∇f(x)·(y − x) ≤ f(x*).
        let f = dynamic_power(model, &loads);
        let mut gap = 0.0;
        for id in mesh.links() {
            let g = marginal(model, loads.get(id));
            gap += g * (target.get(id) - loads.get(id));
        }
        lower_bound = lower_bound.max(f + gap);
        iters_done = k + 1;
        if -gap <= 1e-12 * f.max(1.0) {
            break; // converged
        }
        let gamma = 2.0 / (k as f64 + 2.0);
        // loads ← (1−γ)·loads + γ·target, and likewise for the flows.
        let mut next = LoadMap::new(mesh);
        for id in mesh.links() {
            let v = (1.0 - gamma) * loads.get(id) + gamma * target.get(id);
            if v > 0.0 {
                next.add(id, v);
            }
        }
        loads = next;
        for (i, c) in cs.comms().iter().enumerate() {
            for rate in flows[i].values_mut() {
                *rate *= 1.0 - gamma;
            }
            *flows[i]
                .entry(target_paths[i].moves().to_vec())
                .or_insert(0.0) += gamma * c.weight;
            // Drop numerically dead flows to keep the support small.
            flows[i].retain(|_, r| *r > 1e-12 * c.weight);
            // Renormalise the surviving rates to sum exactly to δ.
            let sum: f64 = flows[i].values().sum();
            let scale = c.weight / sum;
            for rate in flows[i].values_mut() {
                *rate *= scale;
            }
        }
    }
    let routing = Routing::multi(
        flows
            .iter()
            .zip(cs.comms())
            .map(|(fl, c)| {
                let mut v: Vec<(Path, f64)> = fl
                    .iter()
                    .map(|(m, &r)| (Path::from_moves(c.src, m.clone()), r))
                    .collect();
                // total_cmp: bit-identical to partial_cmp on these finite
                // rates, with no NaN panic path; ties keep move-order (the
                // BTreeMap iteration order), so the listing is reproducible.
                v.sort_by(|a, b| b.1.total_cmp(&a.1));
                v
            })
            .collect(),
    );
    let dynamic = dynamic_power(model, &loads);
    FrankWolfeResult {
        routing,
        loads,
        dynamic_power: dynamic,
        lower_bound,
        iterations: iters_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use pamr_mesh::Mesh;

    #[test]
    fn fw_converges_to_even_split_on_fig2() {
        // One communication of weight 4 on a 2×2 mesh: the multi-path
        // optimum splits 2/2 over XY and YX, giving 4·2³ = 32 (with
        // δ = 4 = γ1 + γ2 merged, this is the Fig. 2(c) bound).
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(1, 1), 4.0)],
        );
        let model = PowerModel::theory(3.0);
        let res = frank_wolfe(&cs, &model, 400);
        assert!(
            (res.dynamic_power - 32.0).abs() < 0.5,
            "FW power {} far from optimum 32",
            res.dynamic_power
        );
        assert!(res.lower_bound <= res.dynamic_power + 1e-9);
        assert!(
            res.lower_bound > 31.0,
            "lower bound {} too loose",
            res.lower_bound
        );
        assert!(res.routing.is_structurally_valid(&cs, usize::MAX));
    }

    #[test]
    fn fw_lower_bound_below_single_path_heuristics() {
        use crate::heuristic::Heuristic;
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 2.0),
                Comm::new(Coord::new(0, 3), Coord::new(3, 0), 2.0),
                Comm::new(Coord::new(1, 0), Coord::new(2, 3), 1.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let res = frank_wolfe(&cs, &model, 200);
        let pr = crate::pr::PathRemover.route(&cs, &model);
        let p_pr = pr.power(&cs, &model).unwrap().total();
        assert!(res.lower_bound <= p_pr + 1e-9);
        assert!(
            res.dynamic_power <= p_pr + 1e-9,
            "multi-path must beat single-path"
        );
    }

    #[test]
    fn fw_flow_conservation() {
        let mesh = Mesh::new(3, 5);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(2, 4), 7.0),
                Comm::new(Coord::new(2, 0), Coord::new(0, 4), 3.0),
            ],
        );
        let model = PowerModel::theory(2.5);
        let res = frank_wolfe(&cs, &model, 100);
        for (i, c) in cs.comms().iter().enumerate() {
            let sum: f64 = res.routing.flows(i).iter().map(|(_, r)| r).sum();
            assert!((sum - c.weight).abs() < 1e-6 * c.weight);
        }
    }

    #[test]
    fn cheapest_path_prefers_empty_links() {
        let mesh = Mesh::new(3, 3);
        let model = PowerModel::theory(3.0);
        let mut costs = LoadMap::new(&mesh);
        // Saturate the XY path; the DP must route around it.
        let xy = Path::xy(Coord::new(0, 0), Coord::new(2, 2));
        costs.add_path(&mesh, &xy, 10.0);
        let p = cheapest_path(&mesh, &costs, &model, Coord::new(0, 0), Coord::new(2, 2));
        assert!(p.is_manhattan(&mesh));
        let crossing: Vec<_> = p.links(&mesh).filter(|l| costs.get(*l) > 0.0).collect();
        assert!(
            crossing.is_empty(),
            "cheapest path re-used loaded links {crossing:?}"
        );
    }
}
