//! Reusable buffers for the heuristics' hot paths.
//!
//! One §6 campaign trial routes the same instance with all six policies,
//! and a full campaign runs hundreds of thousands of trials. Before this
//! module every `route` call allocated its own [`LoadMap`], sorted-link
//! lists, reachability flags and per-link user tables; a [`RouteScratch`]
//! owns those buffers instead, so a worker thread allocates once and reuses
//! them for every subsequent trial ([`Heuristic::route_with`]).
//!
//! [`Heuristic::route_with`]: crate::heuristic::Heuristic::route_with

use pamr_mesh::{LinkId, LoadMap};

/// Reusable working memory for [`Heuristic::route_with`].
///
/// Buffers grow to the largest mesh/instance seen and stay allocated. A
/// scratch carries **no state between calls** — every heuristic fully
/// re-initialises what it uses, so routing through a reused scratch is
/// bit-identical to routing through a fresh one.
///
/// [`Heuristic::route_with`]: crate::heuristic::Heuristic::route_with
#[derive(Debug, Default)]
pub struct RouteScratch {
    /// Link-load accumulator (sized per mesh by `LoadMap::fit`).
    pub(crate) loads: LoadMap,
    /// Sorted `(link, load)` working list (XYI's and PR's loaded-link scan).
    pub(crate) active: Vec<(LinkId, f64)>,
    /// Forward-reachability flags, one per core (PR's path cleaning).
    pub(crate) fwd: Vec<bool>,
    /// Backward-reachability flags, one per core (PR's path cleaning).
    pub(crate) bwd: Vec<bool>,
    /// Per-link list of communications whose band contains the link (PR).
    pub(crate) users: Vec<Vec<usize>>,
    /// Candidate-communication index buffer (PR's per-link scan).
    pub(crate) cands: Vec<usize>,
    /// Per-link count of *unresolved* communications whose band contains
    /// the link (banded PR): links with no unresolved user can never host a
    /// removal, so the loaded-link scan skips them wholesale.
    pub(crate) live_users: Vec<u32>,
    /// Loaded-link priority queue (banded PR): keys are
    /// `(load bits, Reverse(link index))`, so reverse iteration yields
    /// decreasing load with ties towards the smaller link id — exactly the
    /// [`select_max`] order. IEEE-754 bit patterns of strictly positive
    /// floats sort like the floats themselves, and the queue only ever
    /// holds strictly positive loads of links with unresolved users.
    pub(crate) queue: std::collections::BTreeSet<(u64, std::cmp::Reverse<usize>)>,
    /// Per-diagonal forward reachable-interval run (banded PR): the row
    /// intervals recomputed downstream of a removed link.
    pub(crate) fwd_iv: Vec<(usize, usize)>,
    /// Per-diagonal backward reachable-interval run (banded PR).
    pub(crate) bwd_iv: Vec<(usize, usize)>,
    /// Row-coverage marks for one diagonal (banded PR's contiguity check).
    pub(crate) rows: Vec<bool>,
}

impl RouteScratch {
    /// A new, empty scratch. Buffers are grown on first use.
    pub fn new() -> Self {
        RouteScratch::default()
    }
}

/// Resets a flag buffer to `n` `false` entries, keeping its allocation.
pub(crate) fn reset_flags(buf: &mut Vec<bool>, n: usize) {
    buf.clear();
    buf.resize(n, false);
}

/// Selection-scan: moves the entry of `active[k..]` with the highest load
/// (ties broken towards the smallest link id) into `active[k]` and returns
/// it; `None` when `k` is past the end.
///
/// PR and XYI examine loaded links in decreasing-load order but almost
/// always act on the first few, so lazily selecting each next maximum
/// (`O(n)` per examined link) beats sorting the whole list (`O(n log n)`)
/// on every iteration of their improvement loops. Consuming `k = 0, 1, …`
/// yields exactly the fully-sorted order.
pub(crate) fn select_max(active: &mut [(LinkId, f64)], k: usize) -> Option<(LinkId, f64)> {
    if k >= active.len() {
        return None;
    }
    let mut best = k;
    for i in k + 1..active.len() {
        let (bl, bv) = active[best];
        let (il, iv) = active[i];
        if iv > bv || (iv == bv && il < bl) {
            best = i;
        }
    }
    active.swap(k, best);
    Some(active[k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{Comm, CommSet};
    use crate::heuristic::{Heuristic, HeuristicKind};
    use pamr_mesh::{Coord, Mesh};
    use pamr_power::PowerModel;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(mesh: Mesh, n: usize, seed: u64) -> CommSet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (p, q) = (mesh.rows(), mesh.cols());
        let comms = (0..n)
            .map(|_| {
                let a = Coord::new(rng.gen_range(0..p), rng.gen_range(0..q));
                let b = Coord::new(rng.gen_range(0..p), rng.gen_range(0..q));
                Comm::new(a, b, rng.gen_range(100.0..2500.0))
            })
            .collect();
        CommSet::new(mesh, comms)
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_fresh() {
        let model = PowerModel::kim_horowitz();
        let mut scratch = RouteScratch::new();
        for seed in 0..8u64 {
            // Alternate mesh sizes so buffers must re-fit between calls.
            let mesh = if seed % 2 == 0 {
                Mesh::new(8, 8)
            } else {
                Mesh::new(5, 6)
            };
            let cs = random_instance(mesh, 12 + seed as usize, seed);
            for kind in HeuristicKind::ALL {
                let fresh = kind.route(&cs, &model);
                let reused = kind.route_with(&cs, &model, &mut scratch);
                assert_eq!(
                    fresh.loads(&cs),
                    reused.loads(&cs),
                    "seed {seed}: {kind} differs between fresh and reused scratch"
                );
            }
        }
    }

    #[test]
    fn scratch_usable_across_heuristics_interleaved() {
        let mesh = Mesh::new(6, 6);
        let model = PowerModel::kim_horowitz();
        let mut scratch = RouteScratch::new();
        let a = random_instance(mesh, 20, 3);
        let b = random_instance(mesh, 4, 4);
        // PR (uses every buffer) then SG (uses only loads) then PR again.
        let pr1 = crate::pr::PathRemover.route_with(&a, &model, &mut scratch);
        let _sg = crate::greedy::SimpleGreedy::default().route_with(&b, &model, &mut scratch);
        let pr2 = crate::pr::PathRemover.route_with(&a, &model, &mut scratch);
        assert_eq!(pr1.loads(&a), pr2.loads(&a));
    }

    #[test]
    fn select_max_yields_sorted_order() {
        let mk = |i: usize| LinkId(i);
        let mut active = vec![(mk(3), 1.0), (mk(1), 5.0), (mk(0), 5.0), (mk(2), 3.0)];
        let mut order = Vec::new();
        let mut k = 0;
        while let Some((l, v)) = select_max(&mut active, k) {
            order.push((l, v));
            k += 1;
        }
        // Decreasing load, ties towards the smaller link id.
        assert_eq!(
            order,
            vec![(mk(0), 5.0), (mk(1), 5.0), (mk(2), 3.0), (mk(3), 1.0)]
        );
        assert!(select_max(&mut active, 4).is_none());
    }

    #[test]
    fn reset_flags_clears_previous_state() {
        let mut buf = vec![true; 10];
        reset_flags(&mut buf, 4);
        assert_eq!(buf, vec![false; 4]);
        reset_flags(&mut buf, 12);
        assert_eq!(buf.len(), 12);
        assert!(buf.iter().all(|&b| !b));
    }
}
