//! Reusable buffers for the heuristics' hot paths.
//!
//! One §6 campaign trial routes the same instance with all six policies,
//! and a full campaign runs hundreds of thousands of trials. Before this
//! module every `route` call allocated its own [`LoadMap`], sorted-link
//! lists, reachability flags and per-link user tables; a [`RouteScratch`]
//! owns those buffers instead, so a worker thread allocates once and reuses
//! them for every subsequent trial ([`Heuristic::route_with`]).
//!
//! [`Heuristic::route_with`]: crate::heuristic::Heuristic::route_with

use crate::comm::CommSet;
use crate::csr::CrossingIndex;
use crate::engine::{self, EngineConfig};
use crate::loadq::LoadQueue;
use crate::precompute::{CostLadder, CustomizedInstance, MeshPrecompute};
use pamr_mesh::{LinkId, LoadMap};
use pamr_power::PowerModel;
use std::sync::Arc;

/// Reusable working memory for [`Heuristic::route_with`].
///
/// Buffers grow to the largest mesh/instance seen and stay allocated. A
/// scratch carries **no result-bearing state between calls** — every
/// heuristic fully re-initialises what it uses, so routing through a
/// reused scratch is bit-identical to routing through a fresh one. The one
/// thing deliberately carried across calls is the attached
/// [`MeshPrecompute`] and its per-instance [`CustomizedInstance`]: those
/// cache pure functions of `(mesh, src, snk)` — values the engines would
/// otherwise recompute to the same bits — so reuse affects speed only
/// (pinned by `tests/precompute_differential.rs`).
///
/// [`Heuristic::route_with`]: crate::heuristic::Heuristic::route_with
#[derive(Debug, Default)]
pub struct RouteScratch {
    /// Link-load accumulator (sized per mesh by `LoadMap::fit`).
    pub(crate) loads: LoadMap,
    /// Sorted `(link, load)` working list (the reference oracles'
    /// `select_max` loaded-link scan).
    pub(crate) active: Vec<(LinkId, f64)>,
    /// Forward-reachability flags, one per core (PR's path cleaning).
    pub(crate) fwd: Vec<bool>,
    /// Backward-reachability flags, one per core (PR's path cleaning).
    pub(crate) bwd: Vec<bool>,
    /// Per-link list of communications using the link — the reference
    /// oracles key it by band membership (PR) or by the current path
    /// crossing the link (XYI). The optimized engines use the flat
    /// [`CrossingIndex`] in `xusers` instead; this Vec-of-Vec twin survives
    /// as the oracle-side representation the differential suite compares
    /// against.
    pub(crate) users: Vec<Vec<usize>>,
    /// Flat CSR crossing-comms index — the optimized engines' counterpart
    /// of `users` (banded PR, queued XYI), rebuilt per route in two
    /// counting passes with no per-link allocations.
    pub(crate) xusers: CrossingIndex,
    /// Candidate-communication index buffer (PR's per-link scan).
    pub(crate) cands: Vec<usize>,
    /// Per-link count of *unresolved* communications whose band contains
    /// the link (banded PR): links with no unresolved user can never host a
    /// removal, so the loaded-link scan skips them wholesale.
    pub(crate) live_users: Vec<u32>,
    /// Shared loaded-link priority queue ([`LoadQueue`]): the banded PR
    /// keys it to the links with unresolved users, queue-driven XYI to
    /// every loaded link. Its descending order is exactly the
    /// [`select_max`](crate::loadq::select_max) order.
    pub(crate) queue: LoadQueue,
    /// Per-diagonal forward reachable-interval run (banded PR): the row
    /// intervals recomputed downstream of a removed link.
    pub(crate) fwd_iv: Vec<(usize, usize)>,
    /// Per-diagonal backward reachable-interval run (banded PR).
    pub(crate) bwd_iv: Vec<(usize, usize)>,
    /// Row-coverage marks for one diagonal (banded PR's contiguity check).
    pub(crate) rows: Vec<bool>,
    /// Flat per-group `(load bits, link)` keys of one communication's band,
    /// each group sorted ascending (indexed IG's min-load tail bound).
    pub(crate) ig_keys: Vec<(u64, u32)>,
    /// Group offsets into `ig_keys` (`len + 1` entries).
    pub(crate) ig_off: Vec<usize>,
    /// Aligned with `ig_keys`: each entry's precomputed surrogate cost at
    /// `load + weight` and its link endpoints (indexed IG).
    pub(crate) ig_info: Vec<(f64, pamr_mesh::Coord, pamr_mesh::Coord)>,
    /// The attached phase-one precompute (shared across trials /
    /// sessions); lazily created for the mesh in use when absent.
    pub(crate) pre: Option<Arc<MeshPrecompute>>,
    /// The phase-two customization of the most recent instance, revalidated
    /// (and rebuilt when stale) by [`ensure_customized`](Self::ensure_customized).
    pub(crate) cust: Option<CustomizedInstance>,
    /// The metric-dependent customization: the per-level [`CostLadder`] of
    /// the most recent (discrete) power model, revalidated by
    /// [`ensure_ladder`](Self::ensure_ladder).
    pub(crate) ladder: Option<CostLadder>,
    /// The engine selection every `route_with` call through this scratch
    /// dispatches on. `None` (the [`Default`]) falls back to the process
    /// default ([`engine::process_default`]), which is how the deprecated
    /// per-subsystem `set_implementation` shims keep working.
    pub(crate) engine: Option<EngineConfig>,
}

impl RouteScratch {
    /// A new, empty scratch. Buffers are grown on first use. Engine
    /// dispatch follows the process default (all-`Live` unless a deprecated
    /// shim changed it); use [`RouteScratch::with_engine`] to pin an
    /// explicit [`EngineConfig`] instead.
    pub fn new() -> Self {
        RouteScratch::default()
    }

    /// A new, empty scratch pinned to an explicit engine selection.
    pub fn with_engine(engine: EngineConfig) -> Self {
        RouteScratch {
            engine: Some(engine),
            ..RouteScratch::default()
        }
    }

    /// Pins this scratch to an explicit engine selection (replacing the
    /// process-default fallback or a previous pin).
    pub fn set_engine(&mut self, engine: EngineConfig) {
        self.engine = Some(engine);
    }

    /// The engine selection `route_with` calls through this scratch use:
    /// the pinned config, or the process default when none was pinned.
    pub fn engine(&self) -> EngineConfig {
        self.engine.unwrap_or_else(engine::process_default)
    }

    /// Attaches a shared phase-one precompute, replacing any previously
    /// attached one (and invalidating its customization). Campaign workers
    /// and [`crate::session::RoutingSession`]s call this so every trial /
    /// request shares one interner; a scratch without an attachment builds
    /// its own on first use.
    pub fn attach_precompute(&mut self, pre: Arc<MeshPrecompute>) {
        if self.pre.as_ref().is_none_or(|p| !Arc::ptr_eq(p, &pre)) {
            self.pre = Some(pre);
            self.cust = None;
        }
    }

    /// Ensures `self.cust` describes exactly `cs`, building the precompute
    /// and/or customization as needed. Returns `false` (and caches
    /// nothing) when this scratch's engine config selects the literal
    /// rebuild-per-trial reference path — the engines then reconstruct
    /// bands and seed paths from scratch, as they did before the split.
    pub(crate) fn ensure_customized(&mut self, cs: &CommSet) -> bool {
        if self.engine().precompute.is_reference() {
            return false;
        }
        if self.pre.as_ref().is_none_or(|p| p.mesh() != cs.mesh()) {
            // Unattached scratch, or one recycled onto a different mesh:
            // build a private precompute for the mesh actually in use.
            self.pre = Some(Arc::new(MeshPrecompute::new(*cs.mesh())));
            self.cust = None;
        }
        let pre = self.pre.as_ref().expect("attached above");
        if self.cust.as_ref().is_none_or(|c| !c.matches(cs)) {
            self.cust = Some(pre.customize(cs));
        }
        true
    }

    /// Ensures `self.ladder` tabulates exactly `model`, rebuilding it when
    /// the model changed. Returns `false` — and the engines fall back to
    /// per-query power-fit evaluation, the literal pre-split path — when
    /// the model is continuous (nothing to tabulate) or this scratch's
    /// engine config selects the rebuild reference path.
    pub(crate) fn ensure_ladder(&mut self, model: &PowerModel) -> bool {
        if self.engine().precompute.is_reference() {
            return false;
        }
        if !self.ladder.as_ref().is_some_and(|l| l.matches(model)) {
            self.ladder = CostLadder::new(model);
        }
        self.ladder.is_some()
    }

    /// Resets the per-link `users` table to `n_slots` empty lists, keeping
    /// every inner allocation (PR and XYI re-key it on every route).
    pub(crate) fn users_fit(&mut self, n_slots: usize) {
        for v in self.users.iter_mut() {
            v.clear();
        }
        if self.users.len() < n_slots {
            self.users.resize_with(n_slots, Vec::new);
        }
    }
}

/// Resets a flag buffer to `n` `false` entries, keeping its allocation.
pub(crate) fn reset_flags(buf: &mut Vec<bool>, n: usize) {
    buf.clear();
    buf.resize(n, false);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{Comm, CommSet};
    use crate::heuristic::{Heuristic, HeuristicKind};
    use pamr_mesh::{Coord, Mesh};
    use pamr_power::PowerModel;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(mesh: Mesh, n: usize, seed: u64) -> CommSet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (p, q) = (mesh.rows(), mesh.cols());
        let comms = (0..n)
            .map(|_| {
                let a = Coord::new(rng.gen_range(0..p), rng.gen_range(0..q));
                let b = Coord::new(rng.gen_range(0..p), rng.gen_range(0..q));
                Comm::new(a, b, rng.gen_range(100.0..2500.0))
            })
            .collect();
        CommSet::new(mesh, comms)
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_fresh() {
        let model = PowerModel::kim_horowitz();
        let mut scratch = RouteScratch::new();
        for seed in 0..8u64 {
            // Alternate mesh sizes so buffers must re-fit between calls.
            let mesh = if seed % 2 == 0 {
                Mesh::new(8, 8)
            } else {
                Mesh::new(5, 6)
            };
            let cs = random_instance(mesh, 12 + seed as usize, seed);
            for kind in HeuristicKind::ALL {
                let fresh = kind.route(&cs, &model);
                let reused = kind.route_with(&cs, &model, &mut scratch);
                assert_eq!(
                    fresh.loads(&cs),
                    reused.loads(&cs),
                    "seed {seed}: {kind} differs between fresh and reused scratch"
                );
            }
        }
    }

    #[test]
    fn scratch_usable_across_heuristics_interleaved() {
        let mesh = Mesh::new(6, 6);
        let model = PowerModel::kim_horowitz();
        let mut scratch = RouteScratch::new();
        let a = random_instance(mesh, 20, 3);
        let b = random_instance(mesh, 4, 4);
        // PR (uses every buffer) then SG (uses only loads) then PR again.
        let pr1 = crate::pr::PathRemover.route_with(&a, &model, &mut scratch);
        let _sg = crate::greedy::SimpleGreedy::default().route_with(&b, &model, &mut scratch);
        let pr2 = crate::pr::PathRemover.route_with(&a, &model, &mut scratch);
        assert_eq!(pr1.loads(&a), pr2.loads(&a));
    }

    #[test]
    fn reset_flags_clears_previous_state() {
        let mut buf = vec![true; 10];
        reset_flags(&mut buf, 4);
        assert_eq!(buf, vec![false; 4]);
        reset_flags(&mut buf, 12);
        assert_eq!(buf.len(), 12);
        assert!(buf.iter().all(|&b| !b));
    }
}
