//! The Two-bend heuristic (§5.3).

use crate::comm::{CommSet, SortOrder};
use crate::heuristic::{surrogate_link_cost, Heuristic};
use crate::routing::Routing;
use crate::scratch::RouteScratch;
use pamr_mesh::Path;
use pamr_power::PowerModel;

/// **TB — Two-bend** (§5.3).
///
/// Communications are processed by decreasing weight; for each one, all
/// Manhattan paths with at most two bends (at most `|Δu| + |Δv|` of them)
/// are evaluated and the one leading to the lowest power consumption is
/// kept.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoBend {
    /// Processing order (decreasing weight by default, per the paper).
    pub order: SortOrder,
}

impl Heuristic for TwoBend {
    fn name(&self) -> &'static str {
        "TB"
    }

    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        let mesh = cs.mesh();
        scratch.loads.fit(mesh);
        let loads = &mut scratch.loads;
        let mut paths: Vec<Option<Path>> = vec![None; cs.len()];
        for &i in &cs.by_order(self.order) {
            let c = &cs.comms()[i];
            let mut best: Option<(f64, Path)> = None;
            for cand in Path::two_bend(mesh, c.src, c.snk) {
                // Marginal surrogate cost of sending the communication down
                // this path; the untouched links cancel out, so comparing
                // marginals is the same as comparing total powers.
                let cost: f64 = cand
                    .links(mesh)
                    .map(|l| {
                        let load = loads.get(l);
                        surrogate_link_cost(model, load + c.weight)
                            - surrogate_link_cost(model, load)
                    })
                    .sum();
                if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                    best = Some((cost, cand));
                }
            }
            let (_, path) = best.expect("two_bend always yields at least one path");
            loads.add_path(mesh, &path, c.weight);
            paths[i] = Some(path);
        }
        Routing::single(cs, paths.into_iter().map(Option::unwrap).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use pamr_mesh::{Coord, Mesh};

    #[test]
    fn tb_paths_have_at_most_two_bends() {
        let mesh = Mesh::new(6, 6);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(5, 5), 3.0),
                Comm::new(Coord::new(5, 0), Coord::new(0, 5), 2.0),
                Comm::new(Coord::new(0, 5), Coord::new(5, 0), 1.0),
                Comm::new(Coord::new(3, 3), Coord::new(3, 3), 1.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = TwoBend::default().route(&cs, &model);
        assert!(r.is_structurally_valid(&cs, 1));
        for i in 0..cs.len() {
            assert!(r.path(i).bends() <= 2);
        }
    }

    #[test]
    fn tb_finds_fig2_single_path_optimum() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let r = TwoBend::default().route(&cs, &model);
        let p = r.power(&cs, &model).unwrap().total();
        assert!((p - 56.0).abs() < 1e-9, "TB should reach 56, got {p}");
    }

    #[test]
    fn tb_spreads_parallel_heavy_flows() {
        // Two heavy flows, same poles, BW tight: TB must pick disjoint
        // two-bend variants to stay feasible where XY would stack 6.0 on
        // one link. (Three such flows would be infeasible outright: the
        // source has only two outgoing links.)
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 3.0),
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 3.0),
            ],
        );
        let model = PowerModel::continuous(0.0, 1.0, 3.0, 4.0);
        let r = TwoBend::default().route(&cs, &model);
        assert!(
            r.is_feasible(&cs, &model),
            "max load = {}",
            r.loads(&cs).max_load()
        );
    }
}
