//! The full-scan XY improver: the differential oracle for the queue-driven
//! implementation in [`crate::xyi`].
//!
//! This is the §5.4 algorithm in its most literal form: on every iteration
//! of the improvement loop the loaded-link list is rebuilt from the load
//! map and each examined link is selected with the naive
//! [`select_max`] scan, then **every** communication is probed for the
//! corner flip (non-crossing ones structurally decline). It is deliberately
//! kept simple and independent of the queue-driven fast path so that
//! `tests/xyi_differential.rs` can pin the two implementations against each
//! other: identical routings, bit-identical load maps, byte-identical
//! campaign reports. Both implementations are compiled unconditionally (no
//! `#[cfg]`), so the oracle is always available to tests, benchmarks and
//! the [`EngineConfig`](crate::EngineConfig) `xyi` selection (the
//! deprecated [`set_implementation`](crate::xyi::set_implementation) shim
//! moves the process default).

use super::{flip_candidate, IMPROVE_EPS};
use crate::comm::CommSet;
use crate::heuristic::{surrogate_link_cost, Heuristic};
use crate::loadq::select_max;
use crate::routing::Routing;
use crate::scratch::RouteScratch;
use pamr_mesh::{LinkId, Path};
use pamr_power::PowerModel;

/// **XYI (reference)** — the full-scan XY-improver oracle.
///
/// Produces bit-identical routings to [`crate::XyImprover`] (the
/// queue-driven implementation) at a higher per-link selection cost; see
/// the module docs.
#[derive(Debug, Clone, Copy)]
pub struct ReferenceXyImprover {
    /// Safety bound on accepted modifications (mirrors
    /// [`XyImprover::max_moves`](crate::XyImprover)).
    pub max_moves: usize,
}

impl Default for ReferenceXyImprover {
    fn default() -> Self {
        ReferenceXyImprover {
            max_moves: 1_000_000,
        }
    }
}

impl Heuristic for ReferenceXyImprover {
    fn name(&self) -> &'static str {
        "XYI-ref"
    }

    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        let mesh = cs.mesh();
        let mut paths: Vec<Path> = cs.comms().iter().map(|c| Path::xy(c.src, c.snk)).collect();
        scratch.loads.fit(mesh);
        let loads = &mut scratch.loads;
        for (c, p) in cs.comms().iter().zip(&paths) {
            loads.add_path(mesh, p, c.weight);
        }
        let mut moves_done = 0;
        'outer: while moves_done < self.max_moves {
            // Loaded links examined in decreasing-load order, selected
            // lazily: an improving modification is usually found within the
            // first few links, so the full sort is almost never needed.
            scratch.active.clear();
            scratch.active.extend(loads.iter_active());
            let mut next = 0;
            while let Some((link, _)) = select_max(&mut scratch.active, next) {
                next += 1;
                // Best modification among the communications on this link:
                // (delta, comm index, swap position, removed, added links).
                type Candidate = (f64, usize, usize, [LinkId; 2], [LinkId; 2]);
                let mut best: Option<Candidate> = None;
                for (i, c) in cs.comms().iter().enumerate() {
                    if let Some((swap_at, rem, add)) = flip_candidate(mesh, &paths[i], link) {
                        let mut delta = 0.0;
                        // Cost after removing the comm from `rem` and adding
                        // it to `add`, minus current cost, over the affected
                        // links only.
                        for l in rem {
                            let load = loads.get(l);
                            delta += surrogate_link_cost(model, load - c.weight)
                                - surrogate_link_cost(model, load);
                        }
                        for l in add {
                            let load = loads.get(l);
                            delta += surrogate_link_cost(model, load + c.weight)
                                - surrogate_link_cost(model, load);
                        }
                        if delta < -IMPROVE_EPS && best.as_ref().is_none_or(|(b, ..)| delta < *b) {
                            best = Some((delta, i, swap_at, rem, add));
                        }
                    }
                }
                if let Some((_, i, swap_at, rem, add)) = best {
                    let w = cs.comms()[i].weight;
                    for l in rem {
                        loads.add(l, -w);
                    }
                    for l in add {
                        loads.add(l, w);
                    }
                    // Only now build the accepted path (one allocation per
                    // applied move instead of one per evaluated candidate).
                    let mut new_moves = paths[i].moves().to_vec();
                    new_moves.swap(swap_at, swap_at + 1);
                    paths[i] = Path::from_moves(paths[i].src(), new_moves);
                    moves_done += 1;
                    continue 'outer; // re-sort and restart from the top
                }
                // No improvement through this link: drop it and try the next
                // one (the paper removes it from the list).
            }
            break; // no link admits an improving modification
        }
        Routing::single(cs, paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::rules::xy_routing;
    use pamr_mesh::{Coord, Mesh};

    #[test]
    fn reference_reaches_fig2_optimum() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let r = ReferenceXyImprover::default().route(&cs, &model);
        let p = r.power(&cs, &model).unwrap().total();
        let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        assert!(p < p_xy);
        assert!(
            (p - 56.0).abs() < 1e-9,
            "reference XYI should reach the 1-MP optimum 56, got {p}"
        );
    }
}
