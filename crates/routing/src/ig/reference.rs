//! The full-scan Improved greedy: the differential oracle for the indexed
//! implementation in [`crate::ig`].
//!
//! This is the §5.2 algorithm in its most literal form: every tail-bound
//! term re-scans the whole diagonal group for its cheapest in-box link, on
//! every candidate hop. It is deliberately kept simple and independent of
//! the indexed fast path so that `tests/xyi_differential.rs` can pin the
//! two implementations against each other: identical routings,
//! bit-identical load maps, byte-identical campaign reports. Both
//! implementations are compiled unconditionally (no `#[cfg]`), so the
//! oracle is always available to tests, benchmarks and the
//! [`EngineConfig`](crate::EngineConfig) `ig` selection (the deprecated
//! [`set_implementation`](crate::ig::set_implementation) shim moves the
//! process default).

use super::apply_ideal;
use crate::comm::{Comm, CommSet, SortOrder};
use crate::heuristic::{surrogate_link_cost, Heuristic};
use crate::routing::Routing;
use crate::scratch::RouteScratch;
use pamr_mesh::{Band, LoadMap, Mesh, Path, Rect, Step};
use pamr_power::PowerModel;

/// **IG (reference)** — the full-scan Improved-greedy oracle.
///
/// Produces bit-identical routings to [`crate::ImprovedGreedy`] (the
/// indexed implementation) at a higher per-hop cost; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceImprovedGreedy {
    /// Processing order (mirrors
    /// [`ImprovedGreedy::order`](crate::ImprovedGreedy)).
    pub order: SortOrder,
}

/// Lower bound on the power to go from `from` to `snk` assuming for each
/// remaining diagonal crossing the least-loaded reachable link can be used.
///
/// `band` is the *communication's* full band, `t_from` the diagonal
/// crossings already taken and `rect` the bounding box of the remaining
/// sub-path: the links of the `from → snk` sub-band are exactly the band
/// links of the remaining groups whose endpoints lie in `rect`, so no
/// sub-band needs to be built.
pub(super) fn ig_tail_bound(
    mesh: &Mesh,
    loads: &LoadMap,
    model: &PowerModel,
    band: &Band,
    t_from: usize,
    rect: Rect,
    weight: f64,
) -> f64 {
    let mut total = 0.0;
    for g in band.groups().skip(t_from) {
        let mut cheapest = f64::INFINITY;
        for &l in g {
            let (a, b) = mesh.link_endpoints(l);
            if rect.contains(a) && rect.contains(b) {
                let cost = surrogate_link_cost(model, loads.get(l) + weight);
                cheapest = cheapest.min(cost);
            }
        }
        total += cheapest;
    }
    total
}

/// Hop-by-hop path construction with full tail-bound scans.
fn ig_route_one(mesh: &Mesh, loads: &LoadMap, model: &PowerModel, c: &Comm, band: &Band) -> Path {
    let (sv, sh) = c.quadrant().steps();
    let mut cur = c.src;
    let mut moves = Vec::with_capacity(c.len());
    while cur != c.snk {
        let step = match (cur.u != c.snk.u, cur.v != c.snk.v) {
            (true, false) => sv,
            (false, true) => sh,
            (true, true) => {
                let mut best = (f64::INFINITY, sv);
                for s in [sv, sh] {
                    // pamr-lint: allow(P001, reason = "cur stays inside the src–snk bounding box and both axes still differ, so stepping towards the sink cannot leave the mesh")
                    let link = mesh.link_id(cur, s).unwrap();
                    // pamr-lint: allow(P001, reason = "same bounding-box invariant as the link lookup above")
                    let next = mesh.step(cur, s).unwrap();
                    let tail = if next == c.snk {
                        0.0
                    } else {
                        ig_tail_bound(
                            mesh,
                            loads,
                            model,
                            band,
                            moves.len() + 1,
                            Rect::spanning(next, c.snk),
                            c.weight,
                        )
                    };
                    let bound = surrogate_link_cost(model, loads.get(link) + c.weight) + tail;
                    // Strict `<` keeps the vertical move on ties (sv first).
                    if bound < best.0 {
                        best = (bound, s);
                    }
                }
                best.1
            }
            (false, false) => unreachable!(),
        };
        moves.push(step);
        // pamr-lint: allow(P001, reason = "step was chosen towards the sink from inside the bounding box, so it stays on the mesh")
        cur = mesh.step(cur, step).unwrap();
    }
    debug_assert!(moves.iter().all(|&s: &Step| c.quadrant().allows(s)));
    Path::from_moves(c.src, moves)
}

impl Heuristic for ReferenceImprovedGreedy {
    fn name(&self) -> &'static str {
        "IG-ref"
    }

    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        let mesh = cs.mesh();
        scratch.loads.fit(mesh);
        let loads = &mut scratch.loads;
        // One band per communication, computed once and reused both for the
        // virtual pre-routing (Figure 3 ideal sharing) and for the per-hop
        // tail bound below — the tail bound used to rebuild a `Band` for
        // every candidate hop, which dominated IG's runtime.
        let bands: Vec<Band> = cs.comms().iter().map(|c| c.band(mesh)).collect();
        for (c, band) in cs.comms().iter().zip(&bands) {
            apply_ideal(loads, band, c.weight, 1.0);
        }
        let mut paths: Vec<Option<Path>> = vec![None; cs.len()];
        for &i in &cs.by_order(self.order) {
            let c = &cs.comms()[i];
            // Remove this communication's own pre-routing before choosing
            // its real path.
            apply_ideal(loads, &bands[i], c.weight, -1.0);
            let path = ig_route_one(mesh, loads, model, c, &bands[i]);
            loads.add_path(mesh, &path, c.weight);
            paths[i] = Some(path);
        }
        Routing::single(cs, paths.into_iter().map(Option::unwrap).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use pamr_mesh::Coord;

    #[test]
    fn reference_reaches_fig2_optimum() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let r = ReferenceImprovedGreedy::default().route(&cs, &model);
        let p = r.power(&cs, &model).unwrap().total();
        assert!(
            (p - 56.0).abs() < 1e-9,
            "reference IG should reach the Fig. 2 1-MP optimum, got {p}"
        );
    }
}
