//! The full-sweep Path-Remover: the differential oracle for the banded
//! implementation in [`crate::pr`].
//!
//! This is the §5.5 algorithm in its most literal form: after every link
//! removal the whole band is re-swept — forward reachability from the
//! source, backward reachability from the sink, one pass over every
//! diagonal group. It is deliberately kept simple and independent of the
//! banded fast path so that `tests/pr_differential.rs` can pin the two
//! implementations against each other: identical routings, identical
//! [`PrError`]s, byte-identical campaign reports. Both implementations are
//! compiled unconditionally (no `#[cfg]`), so the oracle is always
//! available to tests, benchmarks and the
//! [`EngineConfig`](crate::EngineConfig) `pr` selection (the deprecated
//! [`set_implementation`](crate::pr::set_implementation) shim moves the
//! process default).

use super::PrError;
use crate::comm::CommSet;
use crate::heuristic::Heuristic;
use crate::loadq::select_max;
use crate::routing::Routing;
use crate::scratch::{reset_flags, RouteScratch};
use pamr_mesh::{Band, Coord, LinkId, LoadMap, Mesh, Path, Step};
use pamr_power::PowerModel;

/// **PR (reference)** — the full-sweep Path-Remover oracle.
///
/// Produces bit-identical routings to [`crate::PathRemover`] (the banded
/// implementation) at a higher per-removal cost; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferencePathRemover;

/// Per-communication removal state of the full-sweep implementation.
pub(super) struct RefComm {
    pub(super) band: Band,
    weight: f64,
    /// Aliveness aligned with `band.groups()`.
    pub(super) alive: Vec<Vec<bool>>,
    /// Current equal share per alive link, per group (`δ / alive_count`).
    share: Vec<f64>,
    /// True when every group retains exactly one link.
    pub(super) resolved: bool,
}

impl RefComm {
    pub(super) fn new(mesh: &Mesh, src: Coord, snk: Coord, weight: f64) -> Self {
        let band = Band::new(mesh, src, snk);
        let alive: Vec<Vec<bool>> = band.groups().map(|g| vec![true; g.len()]).collect();
        let share: Vec<f64> = band.groups().map(|g| weight / g.len() as f64).collect();
        let resolved = band.groups().all(|g| g.len() == 1);
        RefComm {
            band,
            weight,
            alive,
            share,
            resolved,
        }
    }

    /// Applies this communication's fractional load with sign `sign`.
    pub(super) fn apply_loads(&self, loads: &mut LoadMap, sign: f64) {
        for (t, g) in self.band.groups().enumerate() {
            let s = self.share[t] * sign;
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    loads.add(l, s);
                }
            }
        }
    }

    /// Removes link `(t_rm, j_rm)` and performs the paper's "path cleaning"
    /// and re-sharing with **full** forward/backward sweeps over the whole
    /// band, updating `loads` incrementally: only the links whose fractional
    /// contribution actually changed are touched (the removed link,
    /// newly-unreachable links, and the survivors of groups whose alive
    /// count shrank).
    ///
    /// `fwd` / `bwd` are reusable per-core reachability buffers; `ci` is
    /// the communication's index, used only to label [`PrError`]s.
    pub(super) fn remove_and_reshare(
        &mut self,
        mesh: &Mesh,
        ci: usize,
        (t_rm, j_rm): (usize, usize),
        loads: &mut LoadMap,
        fwd: &mut Vec<bool>,
        bwd: &mut Vec<bool>,
    ) -> Result<(), PrError> {
        // Subtract the removed link's current share and kill it.
        loads.add(self.band.group(t_rm)[j_rm], -self.share[t_rm]);
        self.alive[t_rm][j_rm] = false;

        // Forward reachability from the source, diagonal by diagonal.
        let n = mesh.num_cores();
        reset_flags(fwd, n);
        fwd[mesh.core_index(self.band.src())] = true;
        for (t, g) in self.band.groups().enumerate() {
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    let (from, to) = mesh.link_endpoints(l);
                    if fwd[mesh.core_index(from)] {
                        fwd[mesh.core_index(to)] = true;
                    }
                }
            }
        }
        // Backward reachability from the sink.
        reset_flags(bwd, n);
        bwd[mesh.core_index(self.band.snk())] = true;
        for (t, g) in self.band.groups().enumerate().rev() {
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    let (from, to) = mesh.link_endpoints(l);
                    if bwd[mesh.core_index(to)] {
                        bwd[mesh.core_index(from)] = true;
                    }
                }
            }
        }
        // A link is useful iff it is alive and joins a forward-reachable
        // core to a backward-reachable one. Re-share each changed group.
        self.resolved = true;
        for (t, g) in self.band.groups().enumerate() {
            let old_share = self.share[t];
            let mut count = 0usize;
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    let (from, to) = mesh.link_endpoints(l);
                    if fwd[mesh.core_index(from)] && bwd[mesh.core_index(to)] {
                        count += 1;
                    } else {
                        self.alive[t][j] = false;
                        loads.add(l, -old_share);
                    }
                }
            }
            // Checked in release too: dividing by a zero count would poison
            // the load map with NaN shares instead of failing loudly.
            if count == 0 {
                return Err(PrError::EmptiedGroup { comm: ci, group: t });
            }
            let new_share = self.weight / count as f64;
            // Exact comparison: an unchanged count reproduces the identical
            // quotient, so untouched groups skip the load updates entirely.
            if new_share != old_share {
                for (j, &l) in g.iter().enumerate() {
                    if self.alive[t][j] {
                        loads.add(l, new_share - old_share);
                    }
                }
                self.share[t] = new_share;
            }
            if count > 1 {
                self.resolved = false;
            }
        }
        Ok(())
    }

    /// Number of alive links in the group containing `link` and the link's
    /// position, if it is alive.
    fn locate(&self, mesh: &Mesh, link: LinkId) -> Option<(usize, usize, usize)> {
        if self.band.is_empty() {
            return None;
        }
        let (from, _) = mesh.link_endpoints(link);
        let k = mesh.diag_index(from, self.band.quadrant());
        let t = k.checked_sub(self.band.k_src())?;
        if t >= self.band.len() {
            return None;
        }
        let g = self.band.group(t);
        let j = g.iter().position(|&l| l == link)?;
        if !self.alive[t][j] {
            return None;
        }
        let count = self.alive[t].iter().filter(|&&a| a).count();
        Some((t, j, count))
    }

    /// Extracts the unique remaining path; `ci` labels errors. Fails with
    /// [`PrError::BrokenChain`] when the communication is not resolved or
    /// its surviving links do not connect source to sink.
    pub(super) fn final_path(&self, mesh: &Mesh, ci: usize) -> Result<Path, PrError> {
        if !self.resolved {
            return Err(PrError::BrokenChain { comm: ci });
        }
        let mut cur = self.band.src();
        let mut moves: Vec<Step> = Vec::with_capacity(self.band.len());
        for (t, g) in self.band.groups().enumerate() {
            let Some(j) = self.alive[t].iter().position(|&a| a) else {
                return Err(PrError::EmptiedGroup { comm: ci, group: t });
            };
            let link = g[j];
            let (from, to) = mesh.link_endpoints(link);
            if from != cur {
                return Err(PrError::BrokenChain { comm: ci });
            }
            moves.push(mesh.link_step(link));
            cur = to;
        }
        if cur != self.band.snk() {
            return Err(PrError::BrokenChain { comm: ci });
        }
        Ok(Path::from_moves(self.band.src(), moves))
    }
}

impl ReferencePathRemover {
    /// [`Heuristic::route_with`], but surfacing violated invariants as a
    /// structured [`PrError`] instead of panicking. The checks run in
    /// debug and release builds alike.
    pub fn try_route_with(
        &self,
        cs: &CommSet,
        _model: &PowerModel,
        scratch: &mut RouteScratch,
    ) -> Result<Routing, PrError> {
        let mesh = cs.mesh();
        let mut comms: Vec<RefComm> = cs
            .comms()
            .iter()
            .map(|c| RefComm::new(mesh, c.src, c.snk, c.weight))
            .collect();
        scratch.loads.fit(mesh);
        for c in &comms {
            c.apply_loads(&mut scratch.loads, 1.0);
        }
        // Which communications' bands contain each link (static superset,
        // built in reused buffers).
        let nslots = mesh.num_link_slots();
        scratch.users_fit(nslots);
        for (i, c) in comms.iter().enumerate() {
            for l in c.band.links() {
                scratch.users[l.index()].push(i);
            }
        }

        // Iteratively remove the most loaded link from the largest
        // removable communication crossing it.
        let mut unresolved = comms.iter().filter(|c| !c.resolved).count();
        while unresolved > 0 {
            scratch.active.clear();
            scratch.active.extend(scratch.loads.iter_active());
            let mut removed = false;
            let mut next = 0;
            // Lazily select links in decreasing-load order: a removal
            // usually happens within the first few, so the full sort the
            // paper's description implies is almost never needed.
            'links: while let Some((link, _)) = select_max(&mut scratch.active, next) {
                next += 1;
                // Candidate communications by decreasing weight.
                scratch.cands.clear();
                scratch.cands.extend(
                    scratch.users[link.index()]
                        .iter()
                        .copied()
                        .filter(|&i| !comms[i].resolved),
                );
                // total_cmp: same order as partial_cmp for these finite
                // positive weights, without the NaN panic path.
                scratch
                    .cands
                    .sort_by(|&a, &b| comms[b].weight.total_cmp(&comms[a].weight).then(a.cmp(&b)));
                for &i in &scratch.cands {
                    // Removable iff the link is alive for the communication
                    // and its group keeps another alive link (every alive
                    // link lies on some path after cleaning, so a sibling
                    // link guarantees a surviving path).
                    if let Some((t, j, count)) = comms[i].locate(mesh, link) {
                        if count >= 2 {
                            comms[i].remove_and_reshare(
                                mesh,
                                i,
                                (t, j),
                                &mut scratch.loads,
                                &mut scratch.fwd,
                                &mut scratch.bwd,
                            )?;
                            if comms[i].resolved {
                                unresolved -= 1;
                            }
                            removed = true;
                            break 'links;
                        }
                    }
                }
            }
            // An unresolved communication always has a removable link;
            // failing that is a structural error in both builds.
            if !removed {
                return Err(PrError::Stuck { unresolved });
            }
        }

        let paths = comms
            .iter()
            .enumerate()
            .map(|(i, c)| c.final_path(mesh, i))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Routing::single(cs, paths))
    }
}

impl Heuristic for ReferencePathRemover {
    fn name(&self) -> &'static str {
        "PR-ref"
    }

    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        self.try_route_with(cs, model, scratch)
            // pamr-lint: allow(P001, reason = "documented escalation policy: a PrError here is an engine bug, and the infallible Heuristic interface has no error channel — callers wanting Result use try_route_with")
            .unwrap_or_else(|e| panic!("PR invariant violated: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use pamr_mesh::Mesh;
    use pamr_power::PowerModel;

    #[test]
    fn emptied_group_is_a_structured_error_not_a_division() {
        // Regression: `remove_and_reshare` used to guard `weight / count`
        // with only a `debug_assert!`, so a release build would compute
        // `weight / 0` and spread NaN over the load map. Force the
        // condition by killing one of a group's two links behind the
        // cleaner's back, then removing the other.
        let mesh = Mesh::new(2, 2);
        let mut comm = RefComm::new(&mesh, Coord::new(0, 0), Coord::new(1, 1), 2.0);
        let mut loads = pamr_mesh::LoadMap::new(&mesh);
        comm.apply_loads(&mut loads, 1.0);
        comm.alive[1][1] = false;
        let (mut fwd, mut bwd) = (Vec::new(), Vec::new());
        let err = comm
            .remove_and_reshare(&mesh, 7, (1, 0), &mut loads, &mut fwd, &mut bwd)
            .unwrap_err();
        assert_eq!(err, PrError::EmptiedGroup { comm: 7, group: 0 });
        // The load map never saw a NaN share.
        assert!(loads.iter_active().all(|(_, l)| l.is_finite()));
    }

    #[test]
    fn unresolved_final_path_is_a_structured_error() {
        // Regression: `final_path` used to `unwrap` on an unresolved band
        // (both links of a group still alive), which the `!removed` early
        // break of the outer loop could reach in release builds.
        let mesh = Mesh::new(2, 2);
        let comm = RefComm::new(&mesh, Coord::new(0, 0), Coord::new(1, 1), 1.0);
        assert!(!comm.resolved);
        let err = comm.final_path(&mesh, 3).unwrap_err();
        assert_eq!(err, PrError::BrokenChain { comm: 3 });
    }

    #[test]
    fn reference_reaches_fig2_optimum() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let r = ReferencePathRemover.route(&cs, &model);
        let p = r.power(&cs, &model).unwrap().total();
        assert!(
            (p - 56.0).abs() < 1e-9,
            "reference PR should reach the 1-MP optimum 56, got {p}"
        );
    }
}
