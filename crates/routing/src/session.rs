//! A long-lived **routing session**: the state behind `pamr serve`.
//!
//! The batch heuristics of §5 route a full [`CommSet`] from scratch. The
//! paper's own motivating scenario (§6.4, dynamic leakage observation) is
//! traffic that *arrives and departs over time*, and ROADMAP item 1 asks for
//! routing-as-a-service: a resident process that answers
//! `add_comm`/`remove_comm` requests without re-running a whole heuristic
//! per request.
//!
//! [`RoutingSession`] keeps the mesh, the live communications and their
//! current paths, the per-link [`LoadMap`] and the shared
//! [`LoadQueue`] max-load index **resident across
//! requests**, together with two crossing indices:
//!
//! * `users` — for every link, the live communications whose *current path*
//!   crosses it (the index queue-driven XYI keys per route call);
//! * `band_users` — for every link, the live communications whose
//!   [`Band`] *could* use it (the index the banded PR keys
//!   per route call).
//!
//! Mutations are **incremental**. An added communication is routed alone
//! (its XY path) and then locally repaired with a *bounded* XYI improvement
//! pass restricted to a scope seeded from its band links; a removal
//! decrements loads through [`LoadQueue::set`](crate::loadq::LoadQueue::set)
//! and repairs the scope seeded from the current paths of the communications
//! whose band overlaps the freed links. Accepted moves extend the scope to
//! the links they touch, so relief propagates exactly as far as it is
//! earned. If the bounded pass ends on an infeasible load map the session
//! **escalates** to a full re-route of the surviving set — the session is
//! never less feasible than the batch heuristic on the same instance.
//!
//! With [`RepairMode::Full`] every mutation instead re-routes the whole
//! surviving set through the configured batch heuristic, making the session
//! state *bit-identical by construction* to a from-scratch batch route of
//! the same communications in slot order. `tests/session_differential.rs`
//! pins both modes: full repair reproduces the batch power report bit for
//! bit over randomized add/remove scripts, and bounded repair stays within a
//! gated power bound of it while `pamr-bench serve` shows the incremental
//! latency win.
//!
//! Load accounting is *recomputed, not accumulated*: after every mutation
//! the loads of the touched links are re-summed over `users` in ascending
//! slot order ([`LoadMap::set`]), so the resident map is bit-identical to a
//! naive recomputation from the live paths at every step — the invariant
//! `crates/sim/tests/session_prop.rs` drives scripts against.

use crate::comm::{Comm, CommSet};
use crate::csr::CrossingIndex;
use crate::engine::EngineConfig;
use crate::heuristic::{surrogate_link_cost, HeuristicKind};
use crate::loadq::{Cursor, LoadQueue};
use crate::precompute::MeshPrecompute;
use crate::routing::Routing;
use crate::scratch::RouteScratch;
use crate::xyi;
use pamr_mesh::{Band, LinkId, LoadMap, Mesh, Path};
use pamr_power::{Infeasible, PowerBreakdown, PowerModel};
use std::sync::Arc;

/// How the session restores routing quality after a mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairMode {
    /// Bounded local repair (the default): an XYI improvement pass
    /// restricted to a band-seeded link scope, capped at `max_moves`
    /// accepted flips per mutation, escalating to a full re-route only when
    /// the bounded result is infeasible.
    Bounded {
        /// Cap on accepted flips per mutation.
        max_moves: usize,
    },
    /// Full (unbounded) repair: every mutation re-routes the surviving set
    /// through the configured batch heuristic. Bit-identical to batch
    /// routing by construction — the differential oracle's reference mode.
    Full,
}

impl Default for RepairMode {
    /// Bounded repair with a generous flip budget.
    fn default() -> Self {
        RepairMode::Bounded { max_moves: 10_000 }
    }
}

/// Session configuration: which batch heuristic backs full re-routes, how
/// mutations are repaired, and which engines dispatch is pinned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Heuristic used by full re-routes ([`RoutingSession::reroute`],
    /// [`RepairMode::Full`] and bounded-mode escalation).
    pub heuristic: HeuristicKind,
    /// Repair policy applied after every `add_comm`/`remove_comm`.
    pub repair: RepairMode,
    /// Engine selection for every route through this session (full
    /// re-routes and band sourcing). All-`Live` by default.
    pub engine: EngineConfig,
}

impl Default for SessionConfig {
    /// XYI-backed full re-routes with bounded local repair, on the
    /// production engines.
    fn default() -> Self {
        SessionConfig {
            heuristic: HeuristicKind::Xyi,
            repair: RepairMode::default(),
            engine: EngineConfig::LIVE,
        }
    }
}

/// Stable handle of a communication within one session.
///
/// Handles of removed communications are invalidated and their slots may be
/// reused by later additions; the session answers queries on dead handles
/// with `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(usize);

impl SlotId {
    /// The underlying slot index (dense, reused after removals).
    #[inline]
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Counters describing the work a session has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Communications added.
    pub adds: u64,
    /// Communications removed.
    pub removes: u64,
    /// Accepted flips across all bounded repair passes.
    pub repair_moves: u64,
    /// Full re-routes (explicit, [`RepairMode::Full`], or escalations).
    pub full_reroutes: u64,
    /// Bounded passes that ended infeasible and escalated to a full
    /// re-route.
    pub escalations: u64,
}

/// One live communication: the request plus its current path.
#[derive(Debug, Clone)]
struct LiveComm {
    comm: Comm,
    path: Path,
}

/// A resident incremental routing session (see the [module docs](self)).
#[derive(Debug)]
pub struct RoutingSession {
    mesh: Mesh,
    model: PowerModel,
    config: SessionConfig,
    /// Shared per-mesh precompute: band geometry and per-endpoint tables,
    /// reused across requests (and across sessions when constructed via
    /// [`RoutingSession::with_precompute`]).
    pre: Arc<MeshPrecompute>,
    /// Slot-indexed live communications; `None` marks a dead slot.
    slots: Vec<Option<LiveComm>>,
    /// Dead slots available for reuse (LIFO).
    free: Vec<usize>,
    n_live: usize,
    /// Authoritative per-link loads, always equal to the ascending-slot sum
    /// of the weights in `users` (bit-exactly; see the module docs).
    loads: LoadMap,
    /// Resident max-load index, always keyed to `loads`' positive entries.
    queue: LoadQueue,
    /// Per-link sorted slots whose **current path** crosses the link
    /// (flat-CSR [`CrossingIndex`]; a 256×256 mesh has 262 144 link slots,
    /// which the former `Vec<Vec<usize>>` paid one heap allocation each).
    users: CrossingIndex,
    /// Per-link sorted slots whose **band** contains the link.
    band_users: CrossingIndex,
    /// Scope queue of one bounded repair pass (kept for its allocations).
    repair_queue: LoadQueue,
    /// Working memory for full re-routes through the batch heuristics.
    scratch: RouteScratch,
    stats: SessionStats,
}

impl RoutingSession {
    /// An empty session on `mesh` under `model`, owning a fresh
    /// [`MeshPrecompute`]. Use [`RoutingSession::with_precompute`] to share
    /// one precompute across sessions (what `pamr serve` does).
    pub fn new(mesh: Mesh, model: PowerModel, config: SessionConfig) -> Self {
        Self::with_precompute(Arc::new(MeshPrecompute::new(mesh)), model, config)
    }

    /// An empty session on `pre`'s mesh under `model`, reusing the shared
    /// precompute: endpoint tables built for one request (or one batch
    /// trial) are hits for every later request on the same `(src, snk)`.
    pub fn with_precompute(
        pre: Arc<MeshPrecompute>,
        model: PowerModel,
        config: SessionConfig,
    ) -> Self {
        let mesh = *pre.mesh();
        let n_slots = mesh.num_link_slots();
        let mut queue = LoadQueue::new();
        queue.fit(n_slots);
        let mut repair_queue = LoadQueue::new();
        repair_queue.fit(n_slots);
        let mut scratch = RouteScratch::with_engine(config.engine);
        scratch.attach_precompute(Arc::clone(&pre));
        let mut users = CrossingIndex::new();
        users.clear(n_slots);
        let mut band_users = CrossingIndex::new();
        band_users.clear(n_slots);
        RoutingSession {
            mesh,
            model,
            config,
            pre,
            slots: Vec::new(),
            free: Vec::new(),
            n_live: 0,
            loads: LoadMap::new(&mesh),
            queue,
            users,
            band_users,
            repair_queue,
            scratch,
            stats: SessionStats::default(),
        }
    }

    /// The shared per-mesh precompute backing this session.
    #[inline]
    pub fn precompute(&self) -> &Arc<MeshPrecompute> {
        &self.pre
    }

    /// The band of `comm`, via the shared precompute's interned endpoint
    /// tables under the default `Live` precompute engine, or rebuilt
    /// literally when [`SessionConfig::engine`] selects the `Reference`
    /// precompute (the differential oracle's path). Bit-identical either
    /// way — the cached band is a pure function of `(mesh, src, snk)`.
    fn comm_band(&self, comm: &Comm) -> Arc<Band> {
        if self.config.engine.precompute.is_reference() {
            Arc::new(comm.band(&self.mesh))
        } else {
            Arc::clone(self.pre.endpoint_tables(comm.src, comm.snk).band_arc())
        }
    }

    /// The mesh.
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The power model.
    #[inline]
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Number of live communications.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_live
    }

    /// True iff no communication is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_live == 0
    }

    /// Work counters.
    #[inline]
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The resident per-link loads.
    #[inline]
    pub fn loads(&self) -> &LoadMap {
        &self.loads
    }

    /// The resident max-load index (always keyed to [`RoutingSession::loads`]).
    #[inline]
    pub fn load_index(&self) -> &LoadQueue {
        &self.queue
    }

    /// Largest single-link load, off the resident index in `O(1)`.
    pub fn max_load(&self) -> f64 {
        self.queue.peek_max().map_or(0.0, |(_, v)| v)
    }

    /// True iff `slot` refers to a live communication.
    pub fn contains(&self, slot: SlotId) -> bool {
        self.slots.get(slot.0).is_some_and(Option::is_some)
    }

    /// The live communication behind `slot`, if any.
    pub fn comm(&self, slot: SlotId) -> Option<&Comm> {
        self.slots.get(slot.0)?.as_ref().map(|lc| &lc.comm)
    }

    /// The current path of `slot`, if live.
    pub fn path(&self, slot: SlotId) -> Option<&Path> {
        self.slots.get(slot.0)?.as_ref().map(|lc| &lc.path)
    }

    /// Iterates over the live communications in ascending slot order.
    pub fn live(&self) -> impl Iterator<Item = (SlotId, &Comm, &Path)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(s, e)| e.as_ref().map(|lc| (SlotId(s), &lc.comm, &lc.path)))
    }

    /// The power report of the current state, or `Err(Infeasible)` when
    /// some link is over capacity.
    pub fn power(&self) -> Result<PowerBreakdown, Infeasible> {
        self.model.power(&self.mesh, &self.loads)
    }

    /// The surviving communications as a batch instance, in ascending slot
    /// order — exactly what a from-scratch batch route (the differential
    /// oracle) sees.
    pub fn live_comm_set(&self) -> CommSet {
        self.live_comm_set_with_slots().0
    }

    /// The current state as `(instance, routing)` — the session-side
    /// counterpart of a batch [`Heuristic::route`] result.
    ///
    /// [`Heuristic::route`]: crate::heuristic::Heuristic::route
    pub fn live_routing(&self) -> (CommSet, Routing) {
        let (cs, slots) = self.live_comm_set_with_slots();
        let paths = slots
            .iter()
            // pamr-lint: allow(P001, reason = "slots came from live_comm_set_with_slots, which only lists occupied entries")
            .map(|&s| self.slots[s].as_ref().expect("slot is live").path.clone())
            .collect();
        let routing = Routing::single(&cs, paths);
        (cs, routing)
    }

    fn live_comm_set_with_slots(&self) -> (CommSet, Vec<usize>) {
        let mut comms = Vec::with_capacity(self.n_live);
        let mut slots = Vec::with_capacity(self.n_live);
        for (s, e) in self.slots.iter().enumerate() {
            if let Some(lc) = e {
                comms.push(lc.comm);
                slots.push(s);
            }
        }
        (CommSet::new(self.mesh, comms), slots)
    }

    /// Adds a communication: routes it alone (its XY path) and repairs per
    /// the configured [`RepairMode`]. Returns the stable handle.
    ///
    /// ```
    /// use pamr_mesh::{Coord, Mesh};
    /// use pamr_power::PowerModel;
    /// use pamr_routing::{Comm, RoutingSession, SessionConfig};
    ///
    /// let mut session = RoutingSession::new(
    ///     Mesh::new(4, 4),
    ///     PowerModel::kim_horowitz(),
    ///     SessionConfig::default(),
    /// );
    /// let slot = session.add_comm(Comm::new(Coord::new(0, 0), Coord::new(3, 3), 10.0));
    /// assert_eq!(session.len(), 1);
    /// assert!(session.max_load() >= 10.0);
    /// session.remove_comm(slot);
    /// assert!(session.is_empty());
    /// ```
    ///
    /// # Panics
    /// Panics if an endpoint is off-mesh (validate first — `Comm::new`
    /// already rejects non-positive weights). The serve layer turns both
    /// conditions into structured protocol errors before constructing the
    /// `Comm`.
    pub fn add_comm(&mut self, comm: Comm) -> SlotId {
        assert!(
            self.mesh.contains(comm.src) && self.mesh.contains(comm.snk),
            "communication {comm} leaves the {}×{} mesh",
            self.mesh.rows(),
            self.mesh.cols()
        );
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.slots.len() - 1
        });
        let path = Path::xy(comm.src, comm.snk);
        let band = self.comm_band(&comm);
        for l in band.links() {
            self.band_users.insert_sorted(l.index(), slot as u32);
        }
        self.slots[slot] = Some(LiveComm { comm, path });
        self.n_live += 1;
        self.attach_path(slot);
        self.stats.adds += 1;
        match self.config.repair {
            RepairMode::Full => self.full_reroute(),
            RepairMode::Bounded { max_moves } => {
                // Scope: the new communication's band — every link its own
                // flips can reach, and where it just raised the pressure on
                // whatever was already routed there. `drain_keyed` resets
                // the scope in time proportional to the *previous* scope,
                // not the mesh's link-slot count (sized once at
                // construction).
                self.repair_queue.drain_keyed();
                for l in band.links() {
                    self.scope_link(l);
                }
                self.bounded_repair(max_moves);
            }
        }
        SlotId(slot)
    }

    /// Removes a live communication, decrementing the freed links through
    /// the resident index and repairing per the configured [`RepairMode`].
    /// Returns the removed communication, or `None` for a dead handle.
    pub fn remove_comm(&mut self, slot: SlotId) -> Option<Comm> {
        let s = slot.0;
        let live = self.slots.get(s)?.clone()?;
        self.detach_path(s);
        let band = self.comm_band(&live.comm);
        for l in band.links() {
            self.band_users.remove_sorted(l.index(), s as u32);
        }
        self.slots[s] = None;
        self.free.push(s);
        self.n_live -= 1;
        self.stats.removes += 1;
        match self.config.repair {
            RepairMode::Full => self.full_reroute(),
            RepairMode::Bounded { max_moves } => {
                // Scope: the current paths of every communication whose band
                // overlaps the freed links — the ones that could flip into
                // the capacity the removal just released.
                let mesh = self.mesh;
                self.repair_queue.drain_keyed();
                for l in live.path.links(&mesh) {
                    for i in 0..self.band_users.len_of(l.index()) {
                        let u = self.band_users.get(l.index(), i) as usize;
                        let path = self.slots[u]
                            .as_ref()
                            // pamr-lint: allow(P001, reason = "remove_comm prunes the band index before repair, so every u it yields is an occupied slot")
                            .expect("band index only holds live slots")
                            .path
                            .clone();
                        for pl in path.links(&mesh) {
                            self.scope_link(pl);
                        }
                    }
                }
                self.bounded_repair(max_moves);
            }
        }
        Some(live.comm)
    }

    /// Full re-route of the surviving set through the configured batch
    /// heuristic (also what [`RepairMode::Full`] runs after every mutation
    /// and what bounded repair escalates to on infeasibility).
    pub fn reroute(&mut self) {
        self.full_reroute();
    }

    /// Keys `link` into the repair scope at its current load (no-op for
    /// idle links — the queue only ever holds strictly positive loads).
    fn scope_link(&mut self, link: LinkId) {
        self.repair_queue.set(link, self.loads.get(link));
    }

    /// Inserts `slot`'s current path into `users` and re-derives the loads
    /// of the crossed links.
    fn attach_path(&mut self, slot: usize) {
        let mesh = self.mesh;
        let path = self.slots[slot]
            .as_ref()
            // pamr-lint: allow(P001, reason = "attach_path is only called for a slot the caller just filled")
            .expect("slot is live")
            .path
            .clone();
        for l in path.links(&mesh) {
            self.users.insert_sorted(l.index(), slot as u32);
            self.recompute_link(l);
        }
    }

    /// Removes `slot`'s current path from `users` and re-derives the loads
    /// of the freed links.
    fn detach_path(&mut self, slot: usize) {
        let mesh = self.mesh;
        let path = self.slots[slot]
            .as_ref()
            // pamr-lint: allow(P001, reason = "detach_path is only called while the slot is still occupied (removal empties it afterwards)")
            .expect("slot is live")
            .path
            .clone();
        for l in path.links(&mesh) {
            self.users.remove_sorted(l.index(), slot as u32);
            self.recompute_link(l);
        }
    }

    /// Re-derives `link`'s load as the ascending-slot sum over its crossing
    /// communications and re-keys the resident index ([`LoadQueue::set`]).
    /// Exact by construction: no incremental accumulation residue.
    fn recompute_link(&mut self, link: LinkId) {
        let mut sum = 0.0;
        for &s in self.users.row(link.index()) {
            sum += self.slots[s as usize]
                .as_ref()
                // pamr-lint: allow(P001, reason = "detach_path removes a dying slot from every user list before the slot empties")
                .expect("users index only holds live slots")
                .comm
                .weight;
        }
        self.loads.set(link, sum);
        self.queue.set(link, sum);
    }

    /// The bounded XYI improvement pass over the current repair scope (see
    /// the [module docs](self)); escalates to a full re-route when the
    /// repaired state is still infeasible.
    fn bounded_repair(&mut self, max_moves: usize) {
        let mut moves = 0;
        'outer: while moves < max_moves {
            // Scoped links in decreasing-load order — the select_max order
            // batch XYI examines, restricted to the scope.
            let mut cursor = Cursor::default();
            while let Some((link, _)) = cursor.next(&self.repair_queue) {
                // Best flip among the communications crossing this link:
                // (delta, slot, swap position, removed, added links).
                type Candidate = (f64, usize, usize, [LinkId; 2], [LinkId; 2]);
                let mut best: Option<Candidate> = None;
                for &i in self.users.row(link.index()) {
                    let i = i as usize;
                    let lc = self.slots[i]
                        .as_ref()
                        // pamr-lint: allow(P001, reason = "detach_path removes a dying slot from every user list before the slot empties")
                        .expect("users index only holds live slots");
                    if let Some((swap_at, rem, add)) =
                        xyi::flip_candidate_at(&self.mesh, &lc.path, link)
                    {
                        let w = lc.comm.weight;
                        let mut delta = 0.0;
                        for l in rem {
                            let load = self.loads.get(l);
                            delta += surrogate_link_cost(&self.model, load - w)
                                - surrogate_link_cost(&self.model, load);
                        }
                        for l in add {
                            let load = self.loads.get(l);
                            delta += surrogate_link_cost(&self.model, load + w)
                                - surrogate_link_cost(&self.model, load);
                        }
                        if delta < -xyi::IMPROVE_EPS
                            && best.as_ref().is_none_or(|(b, ..)| delta < *b)
                        {
                            best = Some((delta, i, swap_at, rem, add));
                        }
                    }
                }
                if let Some((_, i, swap_at, rem, add)) = best {
                    self.apply_flip(i, swap_at, rem, add);
                    moves += 1;
                    self.stats.repair_moves += 1;
                    continue 'outer; // restart from the scope's new maximum
                }
            }
            break; // no scoped link admits an improving flip
        }
        // Escape hatch: a locally-repaired state that is still over
        // capacity falls back to the batch heuristic, so the session is
        // feasible whenever a from-scratch route of the same set would be.
        if self.power().is_err() {
            self.stats.escalations += 1;
            self.full_reroute();
        }
    }

    /// Applies one accepted flip: rebuilds the path, re-homes the crossing
    /// index on the two removed/two added links, and re-keys their loads in
    /// the resident *and* scope queues (the scope grows with touched links).
    fn apply_flip(&mut self, slot: usize, swap_at: usize, rem: [LinkId; 2], add: [LinkId; 2]) {
        // pamr-lint: allow(P001, reason = "slot came from the users index of a scoped link, which only holds live slots")
        let lc = self.slots[slot].as_mut().expect("slot is live");
        let mut new_moves = lc.path.moves().to_vec();
        new_moves.swap(swap_at, swap_at + 1);
        lc.path = Path::from_moves(lc.path.src(), new_moves);
        for l in rem {
            self.users.remove_sorted(l.index(), slot as u32);
        }
        for l in add {
            self.users.insert_sorted(l.index(), slot as u32);
        }
        for l in rem.into_iter().chain(add) {
            self.recompute_link(l);
            self.repair_queue.set(l, self.loads.get(l));
        }
    }

    /// Re-routes the surviving set from scratch with the configured batch
    /// heuristic and rebuilds every resident structure from the result.
    fn full_reroute(&mut self) {
        self.stats.full_reroutes += 1;
        let (cs, slots) = self.live_comm_set_with_slots();
        let routing = self
            .config
            .heuristic
            .route_with(&cs, &self.model, &mut self.scratch);
        for (pos, &s) in slots.iter().enumerate() {
            // pamr-lint: allow(P001, reason = "slots came from live_comm_set_with_slots, which only lists occupied entries")
            self.slots[s].as_mut().expect("slot is live").path = routing.path(pos).clone();
        }
        // Rebuild users and loads in ascending slot order: per link this
        // accumulates weights in exactly the order `recompute_link` sums
        // them, so incremental and rebuilt states are bit-identical. The
        // CSR rebuild also compacts away any arena slack the incremental
        // inserts accumulated — a bulk two-pass layout instead of the old
        // `O(link slots)` per-Vec clear.
        let (users, live_slots, mesh) = (&mut self.users, &self.slots, &self.mesh);
        users.rebuild(mesh.num_link_slots(), |push| {
            for &s in &slots {
                // pamr-lint: allow(P001, reason = "slots came from live_comm_set_with_slots, which only lists occupied entries")
                let lc = live_slots[s].as_ref().expect("slot is live");
                for l in lc.path.links(mesh) {
                    push(l.index(), s as u32);
                }
            }
        });
        self.loads.clear();
        for &s in &slots {
            // pamr-lint: allow(P001, reason = "slots came from live_comm_set_with_slots, which only lists occupied entries")
            let lc = self.slots[s].as_ref().expect("slot is live");
            self.loads.add_path(&self.mesh, &lc.path, lc.comm.weight);
        }
        self.queue
            .rebuild(self.mesh.num_link_slots(), self.loads.iter_active());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::Heuristic;
    use crate::XyImprover;
    use pamr_mesh::Coord;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn kh_session(config: SessionConfig) -> RoutingSession {
        RoutingSession::new(Mesh::new(4, 4), PowerModel::kim_horowitz(), config)
    }

    /// Recomputes the load map naively from the live paths, in ascending
    /// slot order — the invariant oracle.
    fn naive_loads(s: &RoutingSession) -> LoadMap {
        let mut lm = LoadMap::new(s.mesh());
        for (_, c, p) in s.live() {
            lm.add_path(s.mesh(), p, c.weight);
        }
        lm
    }

    fn assert_consistent(s: &RoutingSession) {
        let naive = naive_loads(s);
        for l in s.mesh().links() {
            assert_eq!(
                s.loads().get(l).to_bits(),
                naive.get(l).to_bits(),
                "resident load of {l} desynced from the naive recomputation"
            );
            assert_eq!(
                s.load_index().get(l).to_bits(),
                if naive.get(l) > 0.0 {
                    naive.get(l)
                } else {
                    0.0
                }
                .to_bits(),
                "resident queue key of {l} desynced"
            );
        }
        assert_eq!(s.max_load().to_bits(), naive.max_load().to_bits());
    }

    #[test]
    fn add_remove_keeps_indices_consistent() {
        let mut rng = SmallRng::seed_from_u64(42);
        for &repair in &[RepairMode::Bounded { max_moves: 10_000 }, RepairMode::Full] {
            let mut s = kh_session(SessionConfig {
                heuristic: HeuristicKind::Xyi,
                repair,
                ..SessionConfig::default()
            });
            let mut handles = Vec::new();
            for step in 0..60 {
                if handles.is_empty() || rng.gen_range(0..100) < 65 {
                    let c = Comm::new(
                        Coord::new(rng.gen_range(0..4), rng.gen_range(0..4)),
                        Coord::new(rng.gen_range(0..4), rng.gen_range(0..4)),
                        rng.gen_range(100.0..2500.0),
                    );
                    handles.push(s.add_comm(c));
                } else {
                    let h = handles.swap_remove(rng.gen_range(0..handles.len()));
                    assert!(s.remove_comm(h).is_some(), "step {step}: live handle");
                }
                assert_consistent(&s);
                let (cs, routing) = s.live_routing();
                assert!(routing.is_structurally_valid(&cs, 1));
            }
        }
    }

    #[test]
    fn full_mode_is_bit_identical_to_batch() {
        let mut s = kh_session(SessionConfig {
            heuristic: HeuristicKind::Xyi,
            repair: RepairMode::Full,
            ..SessionConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(7);
        let mut handles = Vec::new();
        for _ in 0..30 {
            if handles.is_empty() || rng.gen_range(0..100) < 70 {
                handles.push(s.add_comm(Comm::new(
                    Coord::new(rng.gen_range(0..4), rng.gen_range(0..4)),
                    Coord::new(rng.gen_range(0..4), rng.gen_range(0..4)),
                    rng.gen_range(100.0..2500.0),
                )));
            } else {
                let h = handles.swap_remove(rng.gen_range(0..handles.len()));
                s.remove_comm(h);
            }
            let (cs, routing) = s.live_routing();
            let batch = XyImprover::default().route(&cs, s.model());
            assert_eq!(
                routing, batch,
                "full-repair session diverged from batch XYI"
            );
        }
    }

    #[test]
    fn dead_handles_answer_none() {
        let mut s = kh_session(SessionConfig::default());
        let h = s.add_comm(Comm::new(Coord::new(0, 0), Coord::new(2, 2), 5.0));
        assert!(s.contains(h));
        assert_eq!(s.remove_comm(h).map(|c| c.weight), Some(5.0));
        assert!(!s.contains(h));
        assert!(s.remove_comm(h).is_none());
        assert!(s.comm(h).is_none());
        assert!(s.path(h).is_none());
        assert!(s.is_empty());
        assert_eq!(s.max_load(), 0.0);
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut s = kh_session(SessionConfig::default());
        let a = s.add_comm(Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0));
        let b = s.add_comm(Comm::new(Coord::new(3, 3), Coord::new(2, 2), 1.0));
        s.remove_comm(a);
        let c = s.add_comm(Comm::new(Coord::new(0, 3), Coord::new(3, 0), 1.0));
        assert_eq!(c.index(), a.index(), "freed slot is reused");
        assert_ne!(b.index(), c.index());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn local_comm_is_a_no_op_on_loads() {
        let mut s = kh_session(SessionConfig::default());
        let h = s.add_comm(Comm::new(Coord::new(1, 1), Coord::new(1, 1), 9.0));
        assert_eq!(s.max_load(), 0.0);
        assert_eq!(s.power().unwrap().total(), 0.0);
        s.remove_comm(h);
        assert!(s.is_empty());
    }

    #[test]
    fn bounded_repair_relieves_a_stacked_link() {
        // Two heavy same-pole flows on a 2×2: XY stacks both on the same
        // two links; the bounded pass must separate them like batch XYI.
        let mesh = Mesh::new(2, 2);
        let mut s = RoutingSession::new(mesh, PowerModel::fig2(), SessionConfig::default());
        s.add_comm(Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0));
        s.add_comm(Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0));
        let p = s.power().unwrap().total();
        assert!(
            (p - 56.0).abs() < 1e-9,
            "expected the 1-MP optimum 56, got {p}"
        );
        assert!(s.stats().repair_moves > 0, "repair must have moved a flow");
        assert_eq!(s.stats().full_reroutes, 0, "no escalation was needed");
    }

    #[test]
    fn infeasible_bounded_result_escalates_to_batch() {
        // A session whose bounded pass cannot fix the overload must end in
        // exactly the batch heuristic's state.
        let mesh = Mesh::new(2, 2);
        let model = PowerModel::fig2(); // BW = 4
        let mut s = RoutingSession::new(mesh, model, SessionConfig::default());
        s.add_comm(Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0));
        s.add_comm(Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0));
        // XY stacks 6.0 > 4; XYI (bounded or batch) separates XY + YX.
        assert!(s.power().is_ok(), "the session must repair the overload");
        let (cs, routing) = s.live_routing();
        let batch = XyImprover::default().route(&cs, s.model());
        assert_eq!(
            routing
                .power(&cs, s.model())
                .map(|b| b.total().to_bits())
                .ok(),
            batch
                .power(&cs, s.model())
                .map(|b| b.total().to_bits())
                .ok(),
        );
    }

    #[test]
    fn explicit_reroute_matches_batch() {
        let mut s = kh_session(SessionConfig {
            heuristic: HeuristicKind::Pr,
            repair: RepairMode::Bounded { max_moves: 4 },
            ..SessionConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..12 {
            s.add_comm(Comm::new(
                Coord::new(rng.gen_range(0..4), rng.gen_range(0..4)),
                Coord::new(rng.gen_range(0..4), rng.gen_range(0..4)),
                rng.gen_range(100.0..2500.0),
            ));
        }
        s.reroute();
        let (cs, routing) = s.live_routing();
        let batch = HeuristicKind::Pr.route(&cs, s.model());
        assert_eq!(routing, batch, "explicit reroute diverged from batch PR");
        assert_consistent(&s);
    }
}
