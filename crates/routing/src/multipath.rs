//! s-MP (multi-path) routing heuristics — the paper's future-work item:
//! "it may be interesting to design multi-path heuristics, since these may
//! allow for an even better load-balance of communications" (§7).
//!
//! [`SplitMp`] lifts any single-path heuristic to an s-MP one by the
//! splitting the problem definition itself suggests (§3.3): every
//! communication `γ_i` is split into `s` equal sub-communications
//! `δ_i / s`, the expanded instance is routed single-path, and the parts
//! are folded back into at most `s` weighted paths per original
//! communication (identical paths merge, so the bound is often loose).
//!
//! [`FwMp`] rounds the [Frank–Wolfe](crate::fw::frank_wolfe) fractional
//! optimum instead: the per-communication fractional flow is aggregated
//! into per-link arc flows on the band DAG and decomposed by **path
//! stripping** — repeatedly extract the largest-bottleneck (maximin)
//! src→snk path through the remaining flow, subtract its bottleneck, and
//! keep at most `s` paths whose weights are rescaled proportionally to sum
//! to `δ_i`. Since every band link is quadrant-monotone, every stripped
//! path is Manhattan by construction. The rounded candidate is then played
//! against the full 1-MP [`Best`] portfolio and the better routing wins,
//! so `P(FwMp) ≤ min(P(1-MP heuristics))` holds by construction while the
//! FW duality gap bounds it from below (under continuous no-leakage
//! scaling) — the sandwich `tests/multipath_differential.rs` pins.

use crate::comm::{Comm, CommSet};
use crate::fw::frank_wolfe;
use crate::heuristic::{Best, Heuristic};
use crate::routing::Routing;
use crate::scratch::RouteScratch;
use pamr_mesh::{Band, LinkId, Mesh, Path, Step};
use pamr_power::PowerModel;
use std::collections::BTreeMap;

/// Lifts a single-path heuristic into an s-MP heuristic by communication
/// splitting.
#[derive(Debug, Clone, Copy)]
pub struct SplitMp<H> {
    inner: H,
    s: usize,
}

impl<H: Heuristic> SplitMp<H> {
    /// Wraps `inner`, splitting every communication into `s ≥ 1` equal
    /// parts.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    pub fn new(inner: H, s: usize) -> Self {
        assert!(s >= 1, "need at least one path per communication");
        SplitMp { inner, s }
    }

    /// The split factor `s`.
    pub fn paths_per_comm(&self) -> usize {
        self.s
    }
}

impl<H: Heuristic> Heuristic for SplitMp<H> {
    fn name(&self) -> &'static str {
        "s-MP"
    }

    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        if self.s == 1 {
            return self.inner.route_with(cs, model, scratch);
        }
        // Expand: s sub-communications per original, interleaved so the
        // inner heuristic's decreasing-weight order treats the parts of one
        // communication adjacently (equal weights, stable tie-break).
        let mut expanded = Vec::with_capacity(cs.len() * self.s);
        let mut origin = Vec::with_capacity(cs.len() * self.s);
        for (i, c) in cs.comms().iter().enumerate() {
            for _ in 0..self.s {
                expanded.push(Comm::new(c.src, c.snk, c.weight / self.s as f64));
                origin.push(i);
            }
        }
        let sub = CommSet::new(*cs.mesh(), expanded);
        let routed = self.inner.route_with(&sub, model, scratch);
        // Fold back, merging identical paths. Ordered so the per-comm flow
        // listing (and its equal-rate tie-break below) never depends on
        // hasher state.
        let mut merged: Vec<BTreeMap<Vec<Step>, f64>> = vec![BTreeMap::new(); cs.len()];
        for (j, &i) in origin.iter().enumerate() {
            for (path, rate) in routed.flows(j) {
                *merged[i].entry(path.moves().to_vec()).or_insert(0.0) += rate;
            }
        }
        Routing::multi(
            merged
                .into_iter()
                .zip(cs.comms())
                .map(|(m, c)| {
                    let mut v: Vec<(Path, f64)> = m
                        .into_iter()
                        .map(|(moves, rate)| (Path::from_moves(c.src, moves), rate))
                        .collect();
                    // total_cmp: same order as partial_cmp for these finite
                    // rates, no NaN panic path; ties keep move-order.
                    v.sort_by(|a, b| b.1.total_cmp(&a.1));
                    v
                })
                .collect(),
        )
    }
}

/// The Frank–Wolfe rounding s-MP heuristic (see the [module docs](self)).
///
/// Runs the fractional solver, strips the flow of each communication into
/// at most `s` maximin-bottleneck Manhattan paths, and returns the better
/// of the rounded routing and the 1-MP [`Best`] portfolio — so its power
/// never exceeds the best single-path heuristic's.
#[derive(Debug, Clone)]
pub struct FwMp {
    s: usize,
    iterations: usize,
    portfolio: Best,
}

impl FwMp {
    /// An s-MP rounder keeping at most `s ≥ 1` paths per communication,
    /// with the default Frank–Wolfe iteration budget and the full 1-MP
    /// portfolio as the floor.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    pub fn new(s: usize) -> Self {
        assert!(s >= 1, "need at least one path per communication");
        FwMp {
            s,
            iterations: 200,
            portfolio: Best::default(),
        }
    }

    /// This rounder with a different Frank–Wolfe iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// The path bound `s`.
    pub fn paths_per_comm(&self) -> usize {
        self.s
    }
}

/// Maximin-bottleneck src→snk path through the positive arc flows, by DP
/// over the band's diagonal groups (each group's links all advance one
/// diagonal, so group order is a topological order of the band DAG).
/// Deterministic: links are scanned in band (CSR) order and only strict
/// width improvements replace a predecessor, so ties keep the first-found
/// path. `None` when no positive-flow path reaches the sink.
fn widest_path(mesh: &Mesh, band: &Band, arc: &BTreeMap<LinkId, f64>) -> Option<(Path, f64)> {
    let src_i = mesh.core_index(band.src());
    let mut width: BTreeMap<usize, f64> = BTreeMap::new();
    let mut pred: BTreeMap<usize, (usize, Step)> = BTreeMap::new();
    width.insert(src_i, f64::INFINITY);
    for g in band.groups() {
        for &l in g {
            let Some(&f) = arc.get(&l) else { continue };
            let (from, to) = mesh.link_endpoints(l);
            let (fi, ti) = (mesh.core_index(from), mesh.core_index(to));
            if let Some(&wf) = width.get(&fi) {
                let cand = wf.min(f);
                if width.get(&ti).is_none_or(|&wt| cand > wt) {
                    width.insert(ti, cand);
                    pred.insert(ti, (fi, mesh.link_step(l)));
                }
            }
        }
    }
    let snk_i = mesh.core_index(band.snk());
    let w = *width.get(&snk_i)?;
    if w <= 0.0 || !w.is_finite() {
        return None;
    }
    let mut moves: Vec<Step> = Vec::with_capacity(band.len());
    let mut cur = snk_i;
    while cur != src_i {
        let (prev, step) = pred[&cur];
        moves.push(step);
        cur = prev;
    }
    moves.reverse();
    Some((Path::from_moves(band.src(), moves), w))
}

/// Strips one communication's fractional flow into ≤ `s` weighted
/// Manhattan paths, largest bottleneck first, weights rescaled
/// proportionally to sum to the communication's weight.
fn strip_paths(mesh: &Mesh, c: &Comm, flows: &[(Path, f64)], s: usize) -> Vec<(Path, f64)> {
    if c.is_local() {
        return vec![(Path::from_moves(c.src, vec![]), c.weight)];
    }
    let eps = 1e-12 * c.weight;
    // Arc flows of the fractional routing, keyed in LinkId order. Every FW
    // path lives on the band, so this is the per-comm flow DAG.
    let mut arc: BTreeMap<LinkId, f64> = BTreeMap::new();
    for (p, r) in flows {
        for l in p.links(mesh) {
            *arc.entry(l).or_insert(0.0) += *r;
        }
    }
    arc.retain(|_, f| *f > eps);
    let band = c.band(mesh);
    let mut out: Vec<(Path, f64)> = Vec::new();
    while out.len() < s {
        let Some((path, bottleneck)) = widest_path(mesh, &band, &arc) else {
            break;
        };
        if bottleneck <= eps {
            break;
        }
        for l in path.links(mesh) {
            if let Some(f) = arc.get_mut(&l) {
                *f -= bottleneck;
            }
        }
        arc.retain(|_, f| *f > eps);
        out.push((path, bottleneck));
    }
    if out.is_empty() {
        // Degenerate fractional support (numerically dead flow everywhere):
        // fall back to the whole weight on the XY path.
        return vec![(Path::xy(c.src, c.snk), c.weight)];
    }
    // Rescale proportionally so the kept paths carry exactly the demand
    // the dropped residual would have. Maximin bottlenecks are
    // non-increasing over rounds, so `out` is already largest-first.
    let sum: f64 = out.iter().map(|(_, b)| b).sum();
    let scale = c.weight / sum;
    for (_, w) in out.iter_mut() {
        *w *= scale;
    }
    out
}

impl Heuristic for FwMp {
    fn name(&self) -> &'static str {
        "FW-MP"
    }

    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        let mesh = cs.mesh();
        let fw = frank_wolfe(cs, model, self.iterations);
        let candidate = Routing::multi(
            cs.comms()
                .iter()
                .enumerate()
                .map(|(i, c)| strip_paths(mesh, c, fw.routing.flows(i), self.s))
                .collect(),
        );
        let best1 = self.portfolio.route_with(cs, model, scratch);
        // Feasible beats infeasible; among feasible, smaller power wins;
        // ties keep the multi-path candidate.
        match (candidate.power(cs, model), best1.power) {
            (Ok(pc), Some(p1)) if pc.total() <= p1 => candidate,
            (Ok(_), Some(_)) => best1.routing,
            (Ok(_), None) | (Err(_), None) => candidate,
            (Err(_), Some(_)) => best1.routing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ig::ImprovedGreedy;
    use crate::pr::PathRemover;
    use crate::two_bend::TwoBend;
    use pamr_mesh::{Coord, Mesh};

    fn fig2_instance() -> CommSet {
        CommSet::new(
            Mesh::new(2, 2),
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        )
    }

    #[test]
    fn two_mp_reaches_the_fig2_optimum() {
        // Fig. 2(c): the 2-MP optimum is 32; splitting + a decent
        // single-path heuristic must find it.
        let cs = fig2_instance();
        let model = PowerModel::fig2();
        for r in [
            SplitMp::new(PathRemover, 2).route(&cs, &model),
            SplitMp::new(TwoBend::default(), 2).route(&cs, &model),
            SplitMp::new(ImprovedGreedy::default(), 2).route(&cs, &model),
        ] {
            assert!(r.is_structurally_valid(&cs, 2));
            let p = r.power(&cs, &model).unwrap().total();
            assert!((p - 32.0).abs() < 1e-9, "2-MP should reach 32, got {p}");
        }
    }

    #[test]
    fn s_one_is_the_inner_heuristic() {
        let cs = fig2_instance();
        let model = PowerModel::fig2();
        let a = SplitMp::new(PathRemover, 1).route(&cs, &model);
        let b = PathRemover.route(&cs, &model);
        assert_eq!(
            a.power(&cs, &model).unwrap().total(),
            b.power(&cs, &model).unwrap().total()
        );
        assert_eq!(a.max_paths_per_comm(), 1);
    }

    #[test]
    fn split_respects_the_path_bound() {
        let mesh = Mesh::new(5, 5);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(4, 4), 9.0),
                Comm::new(Coord::new(4, 0), Coord::new(0, 4), 6.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        for s in [2usize, 3, 4] {
            let r = SplitMp::new(PathRemover, s).route(&cs, &model);
            assert!(r.is_structurally_valid(&cs, s));
            assert!(r.max_paths_per_comm() <= s);
        }
    }

    #[test]
    fn more_paths_never_hurt_much() {
        // With leakage off, increasing s weakly improves the load balance
        // on heavy parallel traffic (heuristics are not strictly monotone,
        // but 4-MP must clearly beat 1-MP here).
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(3, 3), 8.0)],
        );
        let model = PowerModel::theory(3.0);
        let p1 = PathRemover
            .route(&cs, &model)
            .power(&cs, &model)
            .unwrap()
            .total();
        let p4 = SplitMp::new(PathRemover, 4)
            .route(&cs, &model)
            .power(&cs, &model)
            .unwrap()
            .total();
        assert!(
            p4 < 0.5 * p1,
            "4-MP ({p4}) should roughly quarter the single-path power ({p1})"
        );
    }

    #[test]
    fn fwmp_reaches_the_fig2_optimum() {
        // Fig. 2(c): the 2-MP optimum is 32; rounding the fractional
        // optimum (an exact 2/2 split here) must find it.
        let cs = fig2_instance();
        let model = PowerModel::fig2();
        let r = FwMp::new(2).with_iterations(2000).route(&cs, &model);
        assert!(r.is_structurally_valid(&cs, 2));
        let p = r.power(&cs, &model).unwrap().total();
        // FW converges at O(1/k), so the rounded split is (2+ε, 2−ε) with
        // ε ~ 1/k and power 32 + O(ε²).
        assert!((p - 32.0).abs() < 1e-3, "FW 2-MP should reach 32, got {p}");
    }

    #[test]
    fn fwmp_respects_the_path_bound_and_weight_sums() {
        let mesh = Mesh::new(5, 5);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(4, 4), 9.0),
                Comm::new(Coord::new(4, 0), Coord::new(0, 4), 6.0),
                Comm::new(Coord::new(2, 2), Coord::new(2, 2), 1.0), // local
            ],
        );
        let model = PowerModel::theory(3.0);
        for s in [1usize, 2, 4] {
            let r = FwMp::new(s).route(&cs, &model);
            assert!(r.is_structurally_valid(&cs, s));
            assert!(r.max_paths_per_comm() <= s);
            for (i, c) in cs.comms().iter().enumerate() {
                let sum: f64 = r.flows(i).iter().map(|(_, w)| w).sum();
                assert!(
                    (sum - c.weight).abs() <= 1e-9 * c.weight,
                    "comm {i}: flow sum {sum} != weight {}",
                    c.weight
                );
                for (p, w) in r.flows(i) {
                    assert!(p.is_manhattan(&mesh));
                    assert!(*w > 0.0);
                }
            }
        }
    }

    #[test]
    fn fwmp_never_loses_to_the_single_path_portfolio() {
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 8.0),
                Comm::new(Coord::new(0, 3), Coord::new(3, 0), 4.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let best1 = crate::heuristic::Best::default()
            .route(&cs, &model)
            .power
            .unwrap();
        for s in [2usize, 4] {
            let p = FwMp::new(s)
                .route(&cs, &model)
                .power(&cs, &model)
                .unwrap()
                .total();
            assert!(p <= best1 + 1e-9, "s={s}: FW-MP {p} lost to 1-MP {best1}");
        }
    }

    #[test]
    fn split_can_solve_where_single_path_cannot() {
        // One weight-4 communication, BW = 3: no single Manhattan path is
        // feasible, but a 2-way split is.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(1, 1), 4.0)],
        );
        let model = PowerModel::continuous(0.0, 1.0, 3.0, 3.0);
        assert!(!PathRemover.route(&cs, &model).is_feasible(&cs, &model));
        let r = SplitMp::new(PathRemover, 2).route(&cs, &model);
        assert!(r.is_feasible(&cs, &model), "2-MP must split 4 into 2+2");
    }
}
