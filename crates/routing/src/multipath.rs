//! s-MP (multi-path) routing heuristics — the paper's future-work item:
//! "it may be interesting to design multi-path heuristics, since these may
//! allow for an even better load-balance of communications" (§7).
//!
//! [`SplitMp`] lifts any single-path heuristic to an s-MP one by the
//! splitting the problem definition itself suggests (§3.3): every
//! communication `γ_i` is split into `s` equal sub-communications
//! `δ_i / s`, the expanded instance is routed single-path, and the parts
//! are folded back into at most `s` weighted paths per original
//! communication (identical paths merge, so the bound is often loose).

use crate::comm::{Comm, CommSet};
use crate::heuristic::Heuristic;
use crate::routing::Routing;
use crate::scratch::RouteScratch;
use pamr_mesh::{Path, Step};
use pamr_power::PowerModel;
use std::collections::BTreeMap;

/// Lifts a single-path heuristic into an s-MP heuristic by communication
/// splitting.
#[derive(Debug, Clone, Copy)]
pub struct SplitMp<H> {
    inner: H,
    s: usize,
}

impl<H: Heuristic> SplitMp<H> {
    /// Wraps `inner`, splitting every communication into `s ≥ 1` equal
    /// parts.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    pub fn new(inner: H, s: usize) -> Self {
        assert!(s >= 1, "need at least one path per communication");
        SplitMp { inner, s }
    }

    /// The split factor `s`.
    pub fn paths_per_comm(&self) -> usize {
        self.s
    }
}

impl<H: Heuristic> Heuristic for SplitMp<H> {
    fn name(&self) -> &'static str {
        "s-MP"
    }

    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        if self.s == 1 {
            return self.inner.route_with(cs, model, scratch);
        }
        // Expand: s sub-communications per original, interleaved so the
        // inner heuristic's decreasing-weight order treats the parts of one
        // communication adjacently (equal weights, stable tie-break).
        let mut expanded = Vec::with_capacity(cs.len() * self.s);
        let mut origin = Vec::with_capacity(cs.len() * self.s);
        for (i, c) in cs.comms().iter().enumerate() {
            for _ in 0..self.s {
                expanded.push(Comm::new(c.src, c.snk, c.weight / self.s as f64));
                origin.push(i);
            }
        }
        let sub = CommSet::new(*cs.mesh(), expanded);
        let routed = self.inner.route_with(&sub, model, scratch);
        // Fold back, merging identical paths. Ordered so the per-comm flow
        // listing (and its equal-rate tie-break below) never depends on
        // hasher state.
        let mut merged: Vec<BTreeMap<Vec<Step>, f64>> = vec![BTreeMap::new(); cs.len()];
        for (j, &i) in origin.iter().enumerate() {
            for (path, rate) in routed.flows(j) {
                *merged[i].entry(path.moves().to_vec()).or_insert(0.0) += rate;
            }
        }
        Routing::multi(
            merged
                .into_iter()
                .zip(cs.comms())
                .map(|(m, c)| {
                    let mut v: Vec<(Path, f64)> = m
                        .into_iter()
                        .map(|(moves, rate)| (Path::from_moves(c.src, moves), rate))
                        .collect();
                    // total_cmp: same order as partial_cmp for these finite
                    // rates, no NaN panic path; ties keep move-order.
                    v.sort_by(|a, b| b.1.total_cmp(&a.1));
                    v
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ig::ImprovedGreedy;
    use crate::pr::PathRemover;
    use crate::two_bend::TwoBend;
    use pamr_mesh::{Coord, Mesh};

    fn fig2_instance() -> CommSet {
        CommSet::new(
            Mesh::new(2, 2),
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        )
    }

    #[test]
    fn two_mp_reaches_the_fig2_optimum() {
        // Fig. 2(c): the 2-MP optimum is 32; splitting + a decent
        // single-path heuristic must find it.
        let cs = fig2_instance();
        let model = PowerModel::fig2();
        for r in [
            SplitMp::new(PathRemover, 2).route(&cs, &model),
            SplitMp::new(TwoBend::default(), 2).route(&cs, &model),
            SplitMp::new(ImprovedGreedy::default(), 2).route(&cs, &model),
        ] {
            assert!(r.is_structurally_valid(&cs, 2));
            let p = r.power(&cs, &model).unwrap().total();
            assert!((p - 32.0).abs() < 1e-9, "2-MP should reach 32, got {p}");
        }
    }

    #[test]
    fn s_one_is_the_inner_heuristic() {
        let cs = fig2_instance();
        let model = PowerModel::fig2();
        let a = SplitMp::new(PathRemover, 1).route(&cs, &model);
        let b = PathRemover.route(&cs, &model);
        assert_eq!(
            a.power(&cs, &model).unwrap().total(),
            b.power(&cs, &model).unwrap().total()
        );
        assert_eq!(a.max_paths_per_comm(), 1);
    }

    #[test]
    fn split_respects_the_path_bound() {
        let mesh = Mesh::new(5, 5);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(4, 4), 9.0),
                Comm::new(Coord::new(4, 0), Coord::new(0, 4), 6.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        for s in [2usize, 3, 4] {
            let r = SplitMp::new(PathRemover, s).route(&cs, &model);
            assert!(r.is_structurally_valid(&cs, s));
            assert!(r.max_paths_per_comm() <= s);
        }
    }

    #[test]
    fn more_paths_never_hurt_much() {
        // With leakage off, increasing s weakly improves the load balance
        // on heavy parallel traffic (heuristics are not strictly monotone,
        // but 4-MP must clearly beat 1-MP here).
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(3, 3), 8.0)],
        );
        let model = PowerModel::theory(3.0);
        let p1 = PathRemover
            .route(&cs, &model)
            .power(&cs, &model)
            .unwrap()
            .total();
        let p4 = SplitMp::new(PathRemover, 4)
            .route(&cs, &model)
            .power(&cs, &model)
            .unwrap()
            .total();
        assert!(
            p4 < 0.5 * p1,
            "4-MP ({p4}) should roughly quarter the single-path power ({p1})"
        );
    }

    #[test]
    fn split_can_solve_where_single_path_cannot() {
        // One weight-4 communication, BW = 3: no single Manhattan path is
        // feasible, but a 2-way split is.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(1, 1), 4.0)],
        );
        let model = PowerModel::continuous(0.0, 1.0, 3.0, 3.0);
        assert!(!PathRemover.route(&cs, &model).is_feasible(&cs, &model));
        let r = SplitMp::new(PathRemover, 2).route(&cs, &model);
        assert!(r.is_feasible(&cs, &model), "2-MP must split 4 into 2+2");
    }
}
