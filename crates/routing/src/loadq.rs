//! Shared incremental **max-load link index** for the improvement loops.
//!
//! PR, XYI and IG all repeatedly ask the same question of the link-load
//! map: *which loaded link comes next in decreasing-load order (ties towards
//! the smaller link id)?* The historical answer was [`select_max`] — an
//! `O(links)` selection scan per examined link, re-run from scratch after
//! every accepted modification, which PR 4's profiling showed to dominate
//! the heuristics' runtime (`O(links²)` per improvement pass, dwarfing the
//! reachability sweeps it was feeding).
//!
//! [`LoadQueue`] replaces the scan with an incrementally-maintained ordered
//! index over `LinkId → f64`:
//!
//! * **bulk rebuild** ([`LoadQueue::rebuild`]) seeds the index from a load
//!   map in one pass at the start of an improvement loop;
//! * **eager updates** ([`LoadQueue::set`]) re-key a single link in
//!   `O(log links)` — PR's per-removal load deltas;
//! * **lazy invalidation** ([`LoadQueue::mark_dirty`] +
//!   [`LoadQueue::refresh`]) batches re-keying for callers whose load
//!   mutations clamp or cancel (XYI's move application touches four links
//!   whose final values only the [`LoadMap`] knows);
//! * **k-th-max iteration** ([`Cursor`]) walks the index in exactly the
//!   [`select_max`] order, resuming strictly below the last yielded key so
//!   rejected links are never re-examined.
//!
//! The ordering contract is bit-exact: keys are `(load.to_bits(),
//! Reverse(link index))`, and the IEEE-754 bit patterns of strictly
//! positive floats sort like the floats themselves, so descending key order
//! is descending load with ties towards the smaller link id — precisely the
//! order `select_max` yields for `k = 0, 1, …`. The queue only ever holds
//! strictly positive loads, which `crates/routing/tests/loadq_prop.rs` pins
//! against the naive sort under arbitrary operation interleavings.

use pamr_mesh::{LinkId, LoadMap};
use std::cmp::Reverse;
use std::collections::BTreeSet;

/// Ordering key of one queued link: `(load bits, Reverse(link index))`.
type Key = (u64, Reverse<usize>);

#[inline]
fn key(link: usize, load: f64) -> Key {
    (load.to_bits(), Reverse(link))
}

/// An incrementally-maintained max-load index over `LinkId → f64`.
///
/// Holds exactly the links whose tracked load is strictly positive. See the
/// [module docs](self) for the ordering contract and maintenance modes.
///
/// ```
/// use pamr_mesh::LinkId;
/// use pamr_routing::LoadQueue;
///
/// let mut q = LoadQueue::new();
/// q.rebuild(4, [(LinkId(0), 700.0), (LinkId(1), 1200.0), (LinkId(3), 700.0)]);
///
/// // Descending load, ties towards the smaller link id — bit-exactly the
/// // order the historical `select_max` scan yields for k = 0, 1, …
/// assert_eq!(q.peek_max(), Some((LinkId(1), 1200.0)));
/// assert_eq!(q.kth_max(1), Some((LinkId(0), 700.0)));
///
/// // Eager O(log n) re-key: link 1 drains to zero and leaves the index.
/// q.set(LinkId(1), 0.0);
/// let mut cursor = q.cursor();
/// assert_eq!(cursor.next(&q), Some((LinkId(0), 700.0)));
/// assert_eq!(cursor.next(&q), Some((LinkId(3), 700.0)));
/// assert_eq!(cursor.next(&q), None);
/// ```
#[derive(Debug, Default)]
pub struct LoadQueue {
    /// The ordered index; greatest key = most loaded link.
    set: BTreeSet<Key>,
    /// Per-link value currently keyed in `set` (`0.0` = absent). Lets
    /// callers re-key a link without knowing its previous load.
    shadow: Vec<f64>,
    /// Links whose shadow entry may be stale (lazy invalidation); resolved
    /// against the authoritative loads by [`LoadQueue::refresh`].
    dirty: Vec<usize>,
}

impl LoadQueue {
    /// A new, empty index. Size it with [`LoadQueue::fit`] or
    /// [`LoadQueue::rebuild`] before use.
    pub fn new() -> Self {
        LoadQueue::default()
    }

    /// Empties the index and resizes it to `n_slots` link slots, keeping
    /// allocations (scratch-buffer reuse).
    pub fn fit(&mut self, n_slots: usize) {
        self.set.clear();
        self.dirty.clear();
        self.shadow.clear();
        self.shadow.resize(n_slots, 0.0);
    }

    /// Empties the index in time proportional to its **occupancy**,
    /// zeroing only the keyed shadow entries. Same post-state as
    /// [`LoadQueue::fit`] at the current slot count, without its
    /// `O(n_slots)` shadow memset — the session's per-mutation repair-scope
    /// reset touches a band's worth of links on a mesh with hundreds of
    /// thousands of slots.
    pub fn drain_keyed(&mut self) {
        self.dirty.clear();
        while let Some((_, Reverse(slot))) = self.set.pop_first() {
            self.shadow[slot] = 0.0;
        }
    }

    /// Bulk rebuild: [`LoadQueue::fit`] to `n_slots`, then key every
    /// `(link, load)` of `entries` with a strictly positive load.
    pub fn rebuild<I>(&mut self, n_slots: usize, entries: I)
    where
        I: IntoIterator<Item = (LinkId, f64)>,
    {
        self.fit(n_slots);
        for (l, v) in entries {
            if v > 0.0 {
                self.set.insert(key(l.index(), v));
                self.shadow[l.index()] = v;
            }
        }
    }

    /// Number of indexed links.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when no link is indexed.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The load currently keyed for `link` (`0.0` when absent). Reflects
    /// the last [`LoadQueue::set`]/[`LoadQueue::refresh`], not any pending
    /// [`LoadQueue::mark_dirty`].
    pub fn get(&self, link: LinkId) -> f64 {
        self.shadow[link.index()]
    }

    /// Eagerly re-keys `link` to load `v`: removes the stale key (if any)
    /// and inserts the new one when `v` is strictly positive. `O(log n)`.
    pub fn set(&mut self, link: LinkId, v: f64) {
        let slot = link.index();
        let old = self.shadow[slot];
        if old == v {
            return;
        }
        if old > 0.0 {
            self.set.remove(&key(slot, old));
        }
        if v > 0.0 {
            self.set.insert(key(slot, v));
        }
        self.shadow[slot] = v;
    }

    /// Lazy invalidation: records that `link`'s load may have changed
    /// without touching the index. The stale key stays in place — and
    /// iteration keeps reflecting the last refresh — until
    /// [`LoadQueue::refresh`] re-keys every marked link in one batch.
    /// Marking a link more than once is harmless.
    pub fn mark_dirty(&mut self, link: LinkId) {
        self.dirty.push(link.index());
    }

    /// Resolves every pending [`LoadQueue::mark_dirty`] against the
    /// authoritative `loads`, re-keying each marked link to its current
    /// value.
    pub fn refresh(&mut self, loads: &LoadMap) {
        self.refresh_with(|l| loads.get(l));
    }

    /// [`LoadQueue::refresh`] with an arbitrary load lookup.
    pub fn refresh_with(&mut self, mut load_of: impl FnMut(LinkId) -> f64) {
        while let Some(slot) = self.dirty.pop() {
            let v = load_of(LinkId(slot));
            self.set(LinkId(slot), v);
        }
    }

    /// The most loaded link (smallest link id on ties), if any.
    pub fn peek_max(&self) -> Option<(LinkId, f64)> {
        self.set
            .iter()
            .next_back()
            .map(|&(bits, Reverse(slot))| (LinkId(slot), f64::from_bits(bits)))
    }

    /// The `k`-th entry (0-based) of the descending [`select_max`] order:
    /// `kth_max(0)` is the maximum. `O(k log n)`; for a full walk use a
    /// [`Cursor`].
    pub fn kth_max(&self, k: usize) -> Option<(LinkId, f64)> {
        let mut cursor = Cursor::default();
        (0..k).try_for_each(|_| cursor.next(self).map(drop))?;
        cursor.next(self)
    }

    /// A descending cursor starting at the maximum.
    pub fn cursor(&self) -> Cursor {
        Cursor::default()
    }
}

/// A resumable descending iterator over a [`LoadQueue`].
///
/// Each [`Cursor::next`] yields the greatest key strictly below the last
/// yielded one, so consuming a cursor walks the exact [`select_max`] order
/// and a scan over rejected links resumes where it stopped. The cursor
/// holds no borrow; pass the queue to every call. If the queue is mutated
/// mid-walk the cursor stays valid: it simply continues below its last key,
/// which is why the improvement loops restart with a fresh cursor after
/// every accepted modification.
#[derive(Debug, Default, Clone, Copy)]
pub struct Cursor {
    last: Option<Key>,
}

impl Cursor {
    /// Restarts the walk from the maximum.
    pub fn reset(&mut self) {
        self.last = None;
    }

    /// The next link in descending `(load, Reverse(id))` order, or `None`
    /// when the walk is exhausted.
    pub fn next(&mut self, q: &LoadQueue) -> Option<(LinkId, f64)> {
        let k = match self.last {
            None => q.set.iter().next_back().copied(),
            Some(c) => q.set.range(..c).next_back().copied(),
        }?;
        self.last = Some(k);
        Some((LinkId(k.1 .0), f64::from_bits(k.0)))
    }
}

/// Selection-scan: moves the entry of `active[k..]` with the highest load
/// (ties broken towards the smallest link id) into `active[k]` and returns
/// it; `None` when `k` is past the end. Consuming `k = 0, 1, …` yields
/// exactly the fully-sorted order.
///
/// This is the naive `O(n)`-per-examined-link scan the [`LoadQueue`]
/// replaces. It survives as the ordering *specification*: the reference
/// oracles (`pr::reference`, `xyi::reference`) still select with it, and
/// the `loadq` property tests pin the queue's iteration order against it.
pub fn select_max(active: &mut [(LinkId, f64)], k: usize) -> Option<(LinkId, f64)> {
    if k >= active.len() {
        return None;
    }
    let mut best = k;
    for i in k + 1..active.len() {
        let (bl, bv) = active[best];
        let (il, iv) = active[i];
        if iv > bv || (iv == bv && il < bl) {
            best = i;
        }
    }
    active.swap(k, best);
    Some(active[k])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(i: usize) -> LinkId {
        LinkId(i)
    }

    /// Drains a fresh cursor into a vector.
    fn drain(q: &LoadQueue) -> Vec<(LinkId, f64)> {
        let mut cursor = q.cursor();
        let mut out = Vec::new();
        while let Some(e) = cursor.next(q) {
            out.push(e);
        }
        out
    }

    #[test]
    fn rebuild_yields_select_max_order() {
        let mut q = LoadQueue::new();
        let entries = vec![(mk(3), 1.0), (mk(1), 5.0), (mk(0), 5.0), (mk(2), 3.0)];
        q.rebuild(8, entries.clone());
        // Decreasing load, ties towards the smaller link id.
        assert_eq!(
            drain(&q),
            vec![(mk(0), 5.0), (mk(1), 5.0), (mk(2), 3.0), (mk(3), 1.0)]
        );
        // The same order as the naive selection scan.
        let mut active = entries;
        let mut k = 0;
        while let Some(e) = select_max(&mut active, k) {
            assert_eq!(q.kth_max(k), Some(e));
            k += 1;
        }
        assert_eq!(q.kth_max(k), None);
    }

    #[test]
    fn set_rekeys_and_zero_removes() {
        let mut q = LoadQueue::new();
        q.rebuild(4, vec![(mk(0), 2.0), (mk(1), 1.0)]);
        q.set(mk(1), 3.0);
        assert_eq!(q.peek_max(), Some((mk(1), 3.0)));
        assert_eq!(q.get(mk(1)), 3.0);
        q.set(mk(1), 0.0);
        assert_eq!(drain(&q), vec![(mk(0), 2.0)]);
        // Setting an untracked link to zero is a no-op.
        q.set(mk(3), 0.0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn lazy_refresh_applies_marked_links_only() {
        let loads = [0.0, 7.0, 2.0, 0.5];
        let mut q = LoadQueue::new();
        q.rebuild(4, vec![(mk(1), 1.0), (mk(2), 2.0)]);
        q.mark_dirty(mk(1));
        q.mark_dirty(mk(3));
        q.mark_dirty(mk(1)); // duplicate marks are harmless
                             // Until the refresh, iteration reflects the stale keys.
        assert_eq!(q.peek_max(), Some((mk(2), 2.0)));
        q.refresh_with(|l| loads[l.index()]);
        assert_eq!(drain(&q), vec![(mk(1), 7.0), (mk(2), 2.0), (mk(3), 0.5)]);
    }

    #[test]
    fn cursor_resumes_strictly_below_last_key() {
        let mut q = LoadQueue::new();
        q.rebuild(8, (0..6).map(|i| (mk(i), (i + 1) as f64)));
        let mut cursor = q.cursor();
        assert_eq!(cursor.next(&q), Some((mk(5), 6.0)));
        assert_eq!(cursor.next(&q), Some((mk(4), 5.0)));
        // A mutation above the cursor does not disturb the resume point.
        q.set(mk(0), 100.0);
        assert_eq!(cursor.next(&q), Some((mk(3), 4.0)));
        cursor.reset();
        assert_eq!(cursor.next(&q), Some((mk(0), 100.0)));
    }

    #[test]
    fn drain_keyed_matches_fit_at_same_size() {
        let mut q = LoadQueue::new();
        q.rebuild(8, vec![(mk(0), 1.0), (mk(5), 4.0)]);
        q.mark_dirty(mk(5));
        q.drain_keyed();
        assert!(q.is_empty());
        assert_eq!(q.get(mk(0)), 0.0);
        assert_eq!(q.get(mk(5)), 0.0);
        q.refresh_with(|_| unreachable!("drain_keyed drops pending dirty marks"));
        // The queue stays sized: slot 7 is still addressable.
        q.set(mk(7), 2.0);
        assert_eq!(q.peek_max(), Some((mk(7), 2.0)));
    }

    #[test]
    fn fit_clears_everything() {
        let mut q = LoadQueue::new();
        q.rebuild(4, vec![(mk(0), 1.0)]);
        q.mark_dirty(mk(0));
        q.fit(2);
        assert!(q.is_empty());
        assert_eq!(q.get(mk(0)), 0.0);
        q.refresh_with(|_| unreachable!("fit drops pending dirty marks"));
    }
}
