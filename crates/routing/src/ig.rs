//! The Improved-greedy heuristic (§5.2), with an indexed candidate
//! selection.
//!
//! IG routes each communication hop by hop, scoring every candidate link by
//! a lower bound on the power to reach the sink through it: the candidate's
//! own cost plus, for every remaining diagonal of the communication's band,
//! the cost of the cheapest link still reachable inside the shrinking
//! bounding box. The literal formulation (kept verbatim in
//! [`mod@reference`]) recomputes each group's cheapest link with a full
//! scan — `O(band links)` *per candidate hop*, the same rescan-everything
//! pattern PR 4 profiled as the improvement loops' real bottleneck.
//!
//! The engine here exploits that the load map is **frozen** while one
//! communication routes (its own ideal share is removed up front, and its
//! real path is only committed afterwards): before the hop loop it builds a
//! per-group min-load index — each band group's links sorted ascending by
//! the same `(load bits, link id)` key the shared
//! [`loadq`](crate::loadq) module orders the max-load queue by — and each
//! tail-bound term then walks a group's index in ascending-load order and
//! stops at the **first** link inside the bounding box. The link-power
//! model is monotone in load, so that first hit is exactly the full scan's
//! `min` — same value, same bits — at a fraction of the probes.
//!
//! Both engines produce **bit-identical** routings, and
//! `tests/xyi_differential.rs` enforces it with a differential oracle over
//! randomized §6 workloads plus a byte-identical seeded campaign report,
//! swapping the engine behind [`HeuristicKind::Ig`](crate::HeuristicKind)
//! via an explicit [`EngineConfig`](crate::EngineConfig) (mirroring the
//! `pr` oracle). The deprecated [`set_implementation`] shim only moves the
//! process-wide default that unconfigured scratches fall back to.

use crate::comm::{Comm, CommSet, SortOrder};
use crate::engine::{self, EngineSel, ProcessBit};
use crate::heuristic::{link_cost, Heuristic};
use crate::precompute::CostLadder;
use crate::routing::Routing;
use crate::scratch::RouteScratch;
use pamr_mesh::{Band, LinkId, LoadMap, Mesh, Path, Rect, Step};
use pamr_power::PowerModel;

pub mod reference;

pub use reference::ReferenceImprovedGreedy;

/// **IG — Improved greedy** (§5.2).
///
/// All communications are first virtually pre-routed with the ideal
/// fractional sharing of Figure 3. Processing them by decreasing weight,
/// IG removes the current communication's fractional contribution and then
/// builds its single path hop by hop: each candidate next link is scored by
/// a lower bound on the power to reach the sink through it (the candidate
/// link's own power plus, for every remaining diagonal, the power of the
/// least loaded link that remains reachable), and the cheaper candidate is
/// taken.
///
/// This is the indexed implementation (see the module docs);
/// [`ReferenceImprovedGreedy`] is the bit-identical full-scan oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImprovedGreedy {
    /// Processing order (decreasing weight by default, per the paper).
    pub order: SortOrder,
}

/// Which Improved-greedy engine [`ImprovedGreedy`] (and hence
/// [`HeuristicKind::Ig`](crate::HeuristicKind)) dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IgImpl {
    /// The indexed engine (default).
    Indexed,
    /// The full-scan oracle ([`mod@reference`]).
    Reference,
}

/// Sets the *process-default* Improved-greedy engine.
///
/// Deprecated shim over [`engine::EngineConfig`]: it updates only the
/// fallback used by scratches built without an explicit config. Pass
/// `RouteScratch::with_engine(EngineConfig::LIVE.with_ig(…))` instead.
#[deprecated(
    since = "0.10.0",
    note = "pass an explicit engine::EngineConfig via RouteScratch::with_engine"
)]
pub fn set_implementation(imp: IgImpl) {
    let sel = match imp {
        IgImpl::Indexed => EngineSel::Live,
        IgImpl::Reference => EngineSel::Reference,
    };
    engine::set_process_bit(ProcessBit::Ig, sel);
}

/// The *process-default* Improved-greedy engine (deprecated shim; a
/// scratch pinned by [`RouteScratch::with_engine`] ignores it).
#[deprecated(
    since = "0.10.0",
    note = "read the engine::EngineConfig carried by the RouteScratch instead"
)]
pub fn implementation() -> IgImpl {
    match engine::process_default().ig {
        EngineSel::Live => IgImpl::Indexed,
        EngineSel::Reference => IgImpl::Reference,
    }
}

/// Adds (`sign = 1.0`) or removes (`-1.0`) a communication's Figure 3 ideal
/// fractional contribution: `weight / |group|` on every band-group link.
pub(super) fn apply_ideal(loads: &mut LoadMap, band: &Band, weight: f64, sign: f64) {
    for g in band.groups() {
        let share = sign * weight / g.len() as f64;
        for &l in g {
            loads.add(l, share);
        }
    }
}

/// The reused min-index buffers (`ig_keys`, `ig_off`, `ig_info` of
/// [`RouteScratch`]), borrowed together.
type MinIndexBufs<'a> = (
    &'a mut Vec<(u64, u32)>,
    &'a mut Vec<usize>,
    &'a mut Vec<(f64, pamr_mesh::Coord, pamr_mesh::Coord)>,
);

/// The cached twin of [`apply_ideal`]: same shares (`weight /
/// group.len() as f64`, the divisor converted once at table-build time),
/// added over the flat id-sorted link array instead of the nested band
/// groups. Each link receives exactly one add per call, so the in-group
/// ordering cannot change any sum — the load map is bit-identical.
fn apply_ideal_cached(
    loads: &mut LoadMap,
    et: &crate::precompute::EndpointTables,
    weight: f64,
    sign: f64,
) {
    for t in 0..et.band().len() {
        let share = sign * weight / et.ig_div(t);
        for &(l, _, _) in et.ig_group(t) {
            loads.add(l, share);
        }
    }
}

/// Builds the per-group min-load index of one communication's band into the
/// reused `keys`/`off`/`info` buffers: `keys[off[t]..off[t + 1]]` holds
/// group `t`'s links as `(load bits, link id)` pairs sorted ascending, and
/// `info` carries, in the same order, each entry's surrogate cost at
/// `load + weight` plus its link endpoints. Loads are non-negative, so the
/// bit order is the load order with ties towards the smaller link id — the
/// exact mirror of the max-load queue's key.
///
/// Precomputing the costs here is what moves the expensive power-model
/// evaluation out of the hop loop: the load map is frozen while the
/// communication routes, so each band link's cost is the same at every
/// hop — `O(band links)` model calls per communication instead of
/// `O(path length × band links)`.
fn build_min_index(
    mesh: &Mesh,
    loads: &LoadMap,
    model: &PowerModel,
    ladder: Option<&CostLadder>,
    band: &Band,
    weight: f64,
    (keys, off, info): MinIndexBufs<'_>,
) {
    keys.clear();
    off.clear();
    info.clear();
    off.push(0);
    for g in band.groups() {
        let start = keys.len();
        keys.extend(
            g.iter()
                .map(|&l| (loads.get(l).to_bits(), l.index() as u32)),
        );
        keys[start..].sort_unstable();
        off.push(keys.len());
    }
    info.extend(keys.iter().map(|&(bits, l)| {
        let (a, b) = mesh.link_endpoints(LinkId(l as usize));
        (
            link_cost(model, ladder, f64::from_bits(bits) + weight),
            a,
            b,
        )
    }));
}

/// The cached twin of [`build_min_index`], fed from the precomputed flat
/// link array: endpoints come from the table instead of per-entry mesh
/// lookups, and the sort key's tie-breaker is the flat position — links
/// are id-ascending within each group, so `(load bits, flat pos)` orders
/// exactly like `(load bits, link id)` and the resulting index is
/// bit-identical.
fn build_min_index_cached(
    loads: &LoadMap,
    model: &PowerModel,
    ladder: Option<&CostLadder>,
    et: &crate::precompute::EndpointTables,
    weight: f64,
    (keys, off, info): MinIndexBufs<'_>,
) {
    keys.clear();
    off.clear();
    info.clear();
    off.push(0);
    for t in 0..et.band().len() {
        let base = et.ig_group_start(t);
        let start = keys.len();
        keys.extend(
            et.ig_group(t)
                .iter()
                .enumerate()
                .map(|(j, &(l, _, _))| (loads.get(l).to_bits(), base + j as u32)),
        );
        keys[start..].sort_unstable();
        off.push(keys.len());
    }
    let flat = et.ig_flat();
    info.extend(keys.iter().map(|&(bits, pos)| {
        let (_, a, b) = flat[pos as usize];
        (
            link_cost(model, ladder, f64::from_bits(bits) + weight),
            a,
            b,
        )
    }));
}

/// Lower bound on the power to go from the current core to `snk` assuming
/// for each remaining diagonal crossing the least-loaded reachable link can
/// be used — the indexed twin of the oracle's
/// [`reference::ig_tail_bound`]: each group contributes the precomputed
/// cost of its first index entry whose endpoints lie in `rect`, which
/// monotonicity of the link-power model makes bit-identical to the full
/// scan's `min`.
fn tail_bound_indexed(
    off: &[usize],
    info: &[(f64, pamr_mesh::Coord, pamr_mesh::Coord)],
    t_from: usize,
    rect: Rect,
) -> f64 {
    let mut total = 0.0;
    for t in t_from..off.len() - 1 {
        let mut cheapest = f64::INFINITY;
        for &(cost, a, b) in &info[off[t]..off[t + 1]] {
            if rect.contains(a) && rect.contains(b) {
                cheapest = cost;
                break;
            }
        }
        total += cheapest;
    }
    total
}

/// Hop-by-hop path construction over the prebuilt min-load index. The load
/// map is frozen for the whole call, so the index stays valid across hops.
fn ig_route_one_indexed(
    mesh: &Mesh,
    loads: &LoadMap,
    model: &PowerModel,
    ladder: Option<&CostLadder>,
    c: &Comm,
    off: &[usize],
    info: &[(f64, pamr_mesh::Coord, pamr_mesh::Coord)],
) -> Path {
    let (sv, sh) = c.quadrant().steps();
    let mut cur = c.src;
    let mut moves = Vec::with_capacity(c.len());
    while cur != c.snk {
        let step = match (cur.u != c.snk.u, cur.v != c.snk.v) {
            (true, false) => sv,
            (false, true) => sh,
            (true, true) => {
                let mut best = (f64::INFINITY, sv);
                for s in [sv, sh] {
                    // pamr-lint: allow(P001, reason = "cur stays inside the src–snk bounding box and both axes still differ, so stepping towards the sink cannot leave the mesh")
                    let link = mesh.link_id(cur, s).unwrap();
                    // pamr-lint: allow(P001, reason = "same bounding-box invariant as the link lookup above")
                    let next = mesh.step(cur, s).unwrap();
                    let tail = if next == c.snk {
                        0.0
                    } else {
                        tail_bound_indexed(off, info, moves.len() + 1, Rect::spanning(next, c.snk))
                    };
                    let bound = link_cost(model, ladder, loads.get(link) + c.weight) + tail;
                    // Strict `<` keeps the vertical move on ties (sv first).
                    if bound < best.0 {
                        best = (bound, s);
                    }
                }
                best.1
            }
            (false, false) => unreachable!(),
        };
        moves.push(step);
        // pamr-lint: allow(P001, reason = "step was chosen towards the sink from inside the bounding box, so it stays on the mesh")
        cur = mesh.step(cur, step).unwrap();
    }
    debug_assert!(moves.iter().all(|&s: &Step| c.quadrant().allows(s)));
    Path::from_moves(c.src, moves)
}

impl ImprovedGreedy {
    /// The indexed engine, unconditionally — what the differential suite
    /// compares against [`ReferenceImprovedGreedy`] regardless of the
    /// process-global [`implementation`] selector.
    pub fn route_indexed_with(
        &self,
        cs: &CommSet,
        model: &PowerModel,
        scratch: &mut RouteScratch,
    ) -> Routing {
        let use_cache = scratch.ensure_customized(cs);
        let use_ladder = use_cache && scratch.ensure_ladder(model);
        let mesh = cs.mesh();
        let RouteScratch {
            loads,
            ig_keys,
            ig_off,
            ig_info,
            cust,
            ladder,
            ..
        } = scratch;
        let ladder = ladder.as_ref().filter(|_| use_ladder);
        loads.fit(mesh);
        // One band per communication, reused both for the virtual
        // pre-routing (Figure 3 ideal sharing) and for the per-hop tail
        // bound below — interned endpoint tables when the precompute cache
        // is active, rebuilt per call otherwise (the literal pre-split
        // path; same Band values either way).
        enum Bands<'a> {
            Cached(&'a crate::precompute::CustomizedInstance),
            Owned(Vec<Band>),
        }
        let bands = match cust.as_ref().filter(|_| use_cache) {
            Some(cu) => Bands::Cached(cu),
            None => Bands::Owned(cs.comms().iter().map(|c| c.band(mesh)).collect()),
        };
        for (i, c) in cs.comms().iter().enumerate() {
            match &bands {
                Bands::Cached(cu) => apply_ideal_cached(loads, cu.table(i), c.weight, 1.0),
                Bands::Owned(v) => apply_ideal(loads, &v[i], c.weight, 1.0),
            }
        }
        // The decreasing-weight order is cached by the customize phase
        // (bit-identical: it is CommSet::by_order's own result).
        let order_buf;
        let order: &[usize] = match &bands {
            Bands::Cached(cu) => match cu.order(self.order) {
                Some(o) => o,
                None => {
                    order_buf = cs.by_order(self.order);
                    &order_buf
                }
            },
            Bands::Owned(_) => {
                order_buf = cs.by_order(self.order);
                &order_buf
            }
        };
        let mut paths: Vec<Option<Path>> = vec![None; cs.len()];
        for &i in order {
            let c = &cs.comms()[i];
            // Remove this communication's own pre-routing before choosing
            // its real path; the load map is then frozen until the path
            // commits, which is what keeps the min-load index valid.
            match &bands {
                Bands::Cached(cu) => apply_ideal_cached(loads, cu.table(i), c.weight, -1.0),
                Bands::Owned(v) => apply_ideal(loads, &v[i], c.weight, -1.0),
            }
            // Straight and local communications never branch, so their hop
            // loop consults no tail bound: skip the index build outright.
            if c.src.u != c.snk.u && c.src.v != c.snk.v {
                match &bands {
                    Bands::Cached(cu) => build_min_index_cached(
                        loads,
                        model,
                        ladder,
                        cu.table(i),
                        c.weight,
                        (&mut *ig_keys, &mut *ig_off, &mut *ig_info),
                    ),
                    Bands::Owned(v) => build_min_index(
                        mesh,
                        loads,
                        model,
                        ladder,
                        &v[i],
                        c.weight,
                        (&mut *ig_keys, &mut *ig_off, &mut *ig_info),
                    ),
                }
            } else {
                ig_keys.clear();
                ig_off.clear();
                ig_info.clear();
                ig_off.push(0);
            }
            let path = ig_route_one_indexed(mesh, loads, model, ladder, c, ig_off, ig_info);
            loads.add_path(mesh, &path, c.weight);
            paths[i] = Some(path);
        }
        // pamr-lint: allow(P001, reason = "order is a permutation of 0..len (CommSet::by_order or its cached copy), so every slot was filled by the loop above")
        Routing::single(cs, paths.into_iter().map(Option::unwrap).collect())
    }
}

impl Heuristic for ImprovedGreedy {
    fn name(&self) -> &'static str {
        "IG"
    }

    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        match scratch.engine().ig {
            EngineSel::Live => self.route_indexed_with(cs, model, scratch),
            EngineSel::Reference => {
                ReferenceImprovedGreedy { order: self.order }.route_with(cs, model, scratch)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use pamr_mesh::Coord;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ig_beats_or_matches_xy_on_crossing_traffic() {
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 2.0),
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 2.0),
                Comm::new(Coord::new(0, 3), Coord::new(3, 0), 1.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let ig = ImprovedGreedy::default().route(&cs, &model);
        assert!(ig.is_structurally_valid(&cs, 1));
        let xy = crate::rules::xy_routing(&cs);
        let p_ig = ig.power(&cs, &model).unwrap().total();
        let p_xy = xy.power(&cs, &model).unwrap().total();
        assert!(p_ig <= p_xy + 1e-9, "IG {p_ig} worse than XY {p_xy}");
    }

    #[test]
    fn ig_processes_heaviest_first() {
        // The heavy flow should get the contention-free diagonal spread
        // benefit: with one heavy and one light comm sharing poles, both
        // must end feasible and the heavy one's path must avoid sharing all
        // of its links with the light one.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let r = ImprovedGreedy::default().route(&cs, &model);
        // Optimal 1-MP on Fig. 2 is 56: one comm on XY, the other on YX.
        let p = r.power(&cs, &model).unwrap().total();
        assert!(
            (p - 56.0).abs() < 1e-9,
            "IG should find the Fig. 2 1-MP optimum, got {p}"
        );
    }

    #[test]
    fn indexed_matches_reference_on_random_instances() {
        // A compact in-crate differential check (the full oracle lives in
        // tests/xyi_differential.rs): identical routings on random instances
        // covering all four quadrants, straight lines and local traffic.
        let model = PowerModel::kim_horowitz();
        let mut scratch = crate::RouteScratch::new();
        for seed in 0..24u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let (p, q) = (rng.gen_range(2..=7), rng.gen_range(2..=7));
            let mesh = Mesh::new(p, q);
            let n = rng.gen_range(1..=16);
            let comms = (0..n)
                .map(|_| {
                    Comm::new(
                        Coord::new(rng.gen_range(0..p), rng.gen_range(0..q)),
                        Coord::new(rng.gen_range(0..p), rng.gen_range(0..q)),
                        rng.gen_range(1.0..2500.0),
                    )
                })
                .collect();
            let cs = CommSet::new(mesh, comms);
            let indexed = ImprovedGreedy::default().route_indexed_with(&cs, &model, &mut scratch);
            let reference =
                ReferenceImprovedGreedy::default().route_with(&cs, &model, &mut scratch);
            assert_eq!(
                indexed, reference,
                "seed {seed}: indexed IG diverged from the full-scan oracle"
            );
        }
    }

    #[test]
    fn engine_config_swaps_the_engine() {
        // Both engine selections must produce identical routings through
        // the public dispatch (the differential contract), with no shared
        // process state: each scratch pins its own config.
        use crate::engine::EngineConfig;
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 2.0),
                Comm::new(Coord::new(3, 0), Coord::new(0, 3), 1.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let mut live = RouteScratch::with_engine(EngineConfig::LIVE);
        let mut oracle = RouteScratch::with_engine(EngineConfig::REFERENCE);
        let indexed = ImprovedGreedy::default().route_with(&cs, &model, &mut live);
        let reference = ImprovedGreedy::default().route_with(&cs, &model, &mut oracle);
        assert_eq!(indexed, reference);
    }
}
