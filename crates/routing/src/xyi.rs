//! The XY-improver heuristic (§5.4), with a queue-driven improvement loop.
//!
//! XYI's §5.4 description examines loaded links in decreasing-load order
//! and, for every examined link, offers each communication crossing it a
//! corner flip. The literal formulation (kept verbatim in
//! [`mod@reference`]) rebuilds the loaded-link list and re-runs an `O(links)`
//! selection scan per examined link on every iteration of the improvement
//! loop, and probes **all** communications per link — the same `O(links²)`
//! selection bottleneck PR 4 removed from the Path-Remover.
//!
//! The engine here follows the PR 4 playbook on the shared
//! [`LoadQueue`](crate::loadq::LoadQueue):
//!
//! * the loaded links live in an incrementally-maintained max-load index;
//!   an accepted move re-keys only the four affected links (lazy
//!   invalidation + one batched refresh) instead of rebuilding the list;
//! * a descending [`Cursor`] walks the index in
//!   exactly the `select_max` order, resuming below rejected links;
//! * a per-link *crossing index* (`LinkId → sorted comm indices`, the same
//!   `users` scratch table PR keys by band membership) restricts the
//!   candidate scan to the communications whose current path actually
//!   crosses the examined link — every other communication's flip
//!   candidate is structurally `None` and contributed nothing but a
//!   wasted path walk.
//!
//! Both engines produce **bit-identical** routings: they evaluate the same
//! flips in the same order with the same floating-point operations (the
//! skipped communications perform none), accept the same moves, and
//! `tests/xyi_differential.rs` enforces it with a differential oracle over
//! randomized §6 workloads plus a byte-identical seeded campaign report,
//! swapping the engine behind [`HeuristicKind::Xyi`](crate::HeuristicKind)
//! via an explicit [`EngineConfig`](crate::EngineConfig) (mirroring the
//! `pr` oracle). The deprecated [`set_implementation`] shim only moves the
//! process-wide default that unconfigured scratches fall back to.

use crate::comm::CommSet;
use crate::engine::{self, EngineSel, ProcessBit};
use crate::heuristic::{link_cost, Heuristic};
use crate::loadq::Cursor;
use crate::routing::Routing;
use crate::scratch::RouteScratch;
use pamr_mesh::{LinkId, Mesh, Path};
use pamr_power::PowerModel;

pub mod reference;

pub use reference::ReferenceXyImprover;

/// Relative improvement below which a modification is not considered an
/// improvement (guards termination against floating-point noise). Shared
/// with the session's bounded repair pass ([`crate::session`]).
pub(crate) const IMPROVE_EPS: f64 = 1e-9;

/// **XYI — XY improver** (§5.4).
///
/// Starts from the XY routing and iteratively relieves the most loaded
/// links. For the most loaded link, every communication crossing it is
/// offered the paper's *move*:
///
/// * **vertical link** `a → b`: replace the corner `…→H a →V b` with
///   `…→V b' →H b` — the horizontal link now goes *to the same core* `b`
///   *from the core closest to the source* (requires the move before the
///   link to be horizontal);
/// * **horizontal link** `a → b`: replace `a →H b →V c` with
///   `a →V b'' →H c` — the vertical link now goes *from the same core* `a`
///   *towards the core closest to the sink* (requires the move after the
///   link to be vertical).
///
/// If some modification lowers the (surrogate) power, the best one is
/// applied, loads are updated and the scan restarts from the most loaded
/// link; otherwise the link is dropped from the list and the next most
/// loaded link is examined. Because XYI minimises the *surrogate* cost, it
/// can also repair instances on which XY exceeds link bandwidths — the
/// paper's campaign counts on this (XYI succeeds on ~46% of instances vs
/// ~15% for XY).
///
/// This is the queue-driven implementation (see the module docs);
/// [`ReferenceXyImprover`] is the bit-identical full-scan oracle.
#[derive(Debug, Clone, Copy)]
pub struct XyImprover {
    /// Safety bound on accepted modifications (the surrogate strictly
    /// decreases at every step, so this is virtually never reached).
    pub max_moves: usize,
}

impl Default for XyImprover {
    fn default() -> Self {
        XyImprover {
            max_moves: 1_000_000,
        }
    }
}

/// Which XY-improver engine [`XyImprover`] (and hence
/// [`HeuristicKind::Xyi`](crate::HeuristicKind)) dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XyiImpl {
    /// The queue-driven engine (default).
    Queued,
    /// The full-scan oracle ([`mod@reference`]).
    Reference,
}

/// Sets the *process-default* XY-improver engine.
///
/// Deprecated shim over [`engine::EngineConfig`]: it updates only the
/// fallback used by scratches built without an explicit config. Pass
/// `RouteScratch::with_engine(EngineConfig::LIVE.with_xyi(…))` instead.
#[deprecated(
    since = "0.10.0",
    note = "pass an explicit engine::EngineConfig via RouteScratch::with_engine"
)]
pub fn set_implementation(imp: XyiImpl) {
    let sel = match imp {
        XyiImpl::Queued => EngineSel::Live,
        XyiImpl::Reference => EngineSel::Reference,
    };
    engine::set_process_bit(ProcessBit::Xyi, sel);
}

/// The *process-default* XY-improver engine (deprecated shim; a scratch
/// pinned by [`RouteScratch::with_engine`] ignores it).
#[deprecated(
    since = "0.10.0",
    note = "read the engine::EngineConfig carried by the RouteScratch instead"
)]
pub fn implementation() -> XyiImpl {
    match engine::process_default().xyi {
        EngineSel::Live => XyiImpl::Queued,
        EngineSel::Reference => XyiImpl::Reference,
    }
}

/// The paper's single candidate modification of `path` to avoid `link`,
/// without building the new path: the position of the move swap plus the
/// two removed and two added links. `None` when the move would violate the
/// Manhattan-path constraint.
///
/// Only the two links at `swap_at` / `swap_at + 1` differ between the old
/// and new paths, so the candidate is fully described — and its surrogate
/// delta evaluable — with zero allocations.
pub(crate) fn flip_candidate(
    mesh: &Mesh,
    path: &Path,
    link: LinkId,
) -> Option<(usize, [LinkId; 2], [LinkId; 2])> {
    let moves = path.moves();
    // Walk the path to find the link's position and the cores around it.
    let mut cur = path.src();
    let mut prev = cur;
    let mut j = usize::MAX;
    for (idx, &m) in moves.iter().enumerate() {
        if mesh.link_id(cur, m) == Some(link) {
            j = idx;
            break;
        }
        prev = cur;
        cur = mesh.step(cur, m)?;
    }
    if j == usize::MAX {
        return None; // path does not cross the link
    }
    let vertical = mesh.link_step(link).is_vertical();
    // Pick the adjacent orthogonal move to swap with.
    let (swap_at, corner) = if vertical {
        // Need the preceding move to be horizontal: swap (j-1, j).
        if j == 0 || !moves[j - 1].is_horizontal() {
            return None;
        }
        (j - 1, prev)
    } else {
        // Need the following move to be vertical: swap (j, j+1).
        if j + 1 >= moves.len() || !moves[j + 1].is_vertical() {
            return None;
        }
        (j, cur)
    };
    let (a, b) = (moves[swap_at], moves[swap_at + 1]);
    // Swapping orthogonal moves a,b around `corner` stays in the path's
    // bounding box, so every link id below exists.
    // pamr-lint: allow(P001, reason = "corner lies on a Manhattan path whose moves a and b both start there, so both steps stay inside the path's bounding box")
    let via_a = mesh.step(corner, a).expect("path stays on the mesh");
    // pamr-lint: allow(P001, reason = "same bounding-box invariant: the swapped corner is a lattice point of the a×b rectangle")
    let via_b = mesh.step(corner, b).expect("swapped corner on mesh");
    let removed = [
        // pamr-lint: allow(P001, reason = "links of the current path: both endpoints were just shown to be on the mesh")
        mesh.link_id(corner, a).expect("removed links exist"),
        // pamr-lint: allow(P001, reason = "links of the current path: both endpoints were just shown to be on the mesh")
        mesh.link_id(via_a, b).expect("removed links exist"),
    ];
    let added = [
        // pamr-lint: allow(P001, reason = "the swapped rectangle sides: endpoints are the same four lattice points")
        mesh.link_id(corner, b).expect("added links exist"),
        // pamr-lint: allow(P001, reason = "the swapped rectangle sides: endpoints are the same four lattice points")
        mesh.link_id(via_b, a).expect("added links exist"),
    ];
    debug_assert!(removed.contains(&link));
    debug_assert!(!added.contains(&link));
    Some((swap_at, removed, added))
}

/// [`flip_candidate`] for a path **known to cross** `link`, in `O(1)`.
///
/// The walking locator above scans the path from its source to find the
/// link's position — an `O(ℓ)` cost per probed candidate that the crossing
/// index makes redundant: every Manhattan move advances the communication's
/// diagonal index by exactly one, so a crossed link's position *is* the
/// diagonal distance from the source to the link's tail, and the preceding
/// corner core is one reverse step away. Same return value as
/// [`flip_candidate`] whenever the path crosses the link (debug-asserted);
/// the reference oracle keeps the walking version because it probes
/// non-crossing communications too (their walk returns `None`).
pub(crate) fn flip_candidate_at(
    mesh: &Mesh,
    path: &Path,
    link: LinkId,
) -> Option<(usize, [LinkId; 2], [LinkId; 2])> {
    let moves = path.moves();
    let (tail, _) = mesh.link_endpoints(link);
    let quadrant = pamr_mesh::Quadrant::of(path.src(), path.snk());
    let j = mesh.diag_index(tail, quadrant) - mesh.diag_index(path.src(), quadrant);
    debug_assert!(
        j < moves.len() && mesh.link_id(tail, moves[j]) == Some(link),
        "flip_candidate_at requires a path crossing the link"
    );
    let vertical = mesh.link_step(link).is_vertical();
    let (swap_at, corner) = if vertical {
        // Need the preceding move to be horizontal: swap (j-1, j). The
        // corner is the core the path occupied before `tail`.
        if j == 0 || !moves[j - 1].is_horizontal() {
            return None;
        }
        (j - 1, mesh.step(tail, moves[j - 1].opposite())?)
    } else {
        // Need the following move to be vertical: swap (j, j+1).
        if j + 1 >= moves.len() || !moves[j + 1].is_vertical() {
            return None;
        }
        (j, tail)
    };
    let (a, b) = (moves[swap_at], moves[swap_at + 1]);
    // Swapping orthogonal moves a,b around `corner` stays in the path's
    // bounding box, so every link id below exists.
    // pamr-lint: allow(P001, reason = "corner lies on a Manhattan path whose moves a and b both start there, so both steps stay inside the path's bounding box")
    let via_a = mesh.step(corner, a).expect("path stays on the mesh");
    // pamr-lint: allow(P001, reason = "same bounding-box invariant: the swapped corner is a lattice point of the a×b rectangle")
    let via_b = mesh.step(corner, b).expect("swapped corner on mesh");
    let removed = [
        // pamr-lint: allow(P001, reason = "links of the current path: both endpoints were just shown to be on the mesh")
        mesh.link_id(corner, a).expect("removed links exist"),
        // pamr-lint: allow(P001, reason = "links of the current path: both endpoints were just shown to be on the mesh")
        mesh.link_id(via_a, b).expect("removed links exist"),
    ];
    let added = [
        // pamr-lint: allow(P001, reason = "the swapped rectangle sides: endpoints are the same four lattice points")
        mesh.link_id(corner, b).expect("added links exist"),
        // pamr-lint: allow(P001, reason = "the swapped rectangle sides: endpoints are the same four lattice points")
        mesh.link_id(via_b, a).expect("added links exist"),
    ];
    debug_assert!(removed.contains(&link));
    debug_assert!(!added.contains(&link));
    debug_assert_eq!(
        flip_candidate(mesh, path, link),
        Some((swap_at, removed, added))
    );
    Some((swap_at, removed, added))
}

/// [`flip_candidate`] plus the rebuilt path (test-only convenience; the
/// improvement loop builds the path lazily on acceptance).
#[cfg(test)]
fn flip_move(mesh: &Mesh, path: &Path, link: LinkId) -> Option<(Path, [LinkId; 2], [LinkId; 2])> {
    let (swap_at, removed, added) = flip_candidate(mesh, path, link)?;
    let mut new_moves = path.moves().to_vec();
    new_moves.swap(swap_at, swap_at + 1);
    Some((Path::from_moves(path.src(), new_moves), removed, added))
}

impl XyImprover {
    /// The queue-driven engine, unconditionally — what the differential
    /// suite compares against [`ReferenceXyImprover`] regardless of the
    /// process-global [`implementation`] selector.
    pub fn route_queued_with(
        &self,
        cs: &CommSet,
        model: &PowerModel,
        scratch: &mut RouteScratch,
    ) -> Routing {
        let mesh = cs.mesh();
        let use_cache = scratch.ensure_customized(cs);
        let use_ladder = use_cache && scratch.ensure_ladder(model);
        // Seed paths: the interned XY paths when the precompute cache is
        // active ([`Path::xy`] is deterministic, so the clone is the value
        // the rebuild computes), fresh XY construction otherwise.
        let mut paths: Vec<Path> = match scratch.cust.as_ref().filter(|_| use_cache) {
            Some(cust) => (0..cs.len()).map(|i| cust.table(i).xy().clone()).collect(),
            None => cs.comms().iter().map(|c| Path::xy(c.src, c.snk)).collect(),
        };
        scratch.loads.fit(mesh);
        for (c, p) in cs.comms().iter().zip(&paths) {
            scratch.loads.add_path(mesh, p, c.weight);
        }
        // Crossing index: which communications' *current* paths cross each
        // link, kept sorted ascending so the candidate scan visits them in
        // the same order as the oracle's all-comms sweep (non-crossing
        // communications flip to `None` there and contribute nothing).
        // Flat CSR ([`crate::csr::CrossingIndex`]): the two-pass rebuild
        // replaces the historical per-slot `Vec<Vec<usize>>` clear + push.
        let nslots = mesh.num_link_slots();
        scratch.xusers.rebuild(nslots, |push| {
            for (i, p) in paths.iter().enumerate() {
                for l in p.links(mesh) {
                    push(l.index(), i as u32);
                }
            }
        });
        // Max-load index over every loaded link; an accepted move re-keys
        // only the four links it touched.
        scratch.queue.rebuild(nslots, scratch.loads.iter_active());
        // The tabulated per-level costs of the cached path (None ⇒ evaluate
        // the power fit per query, the literal pre-split behaviour). Taken
        // after the last `&mut self` call so the shared borrow can live
        // across the improvement loop.
        let ladder = scratch.ladder.as_ref().filter(|_| use_ladder);
        let mut moves_done = 0;
        'outer: while moves_done < self.max_moves {
            // Loaded links examined in decreasing-load order straight off
            // the shared queue — the exact `select_max` order the oracle
            // re-derives by scanning.
            let mut cursor = Cursor::default();
            while let Some((link, _)) = cursor.next(&scratch.queue) {
                // Best modification among the communications on this link:
                // (delta, comm index, swap position, removed, added links).
                type Candidate = (f64, usize, usize, [LinkId; 2], [LinkId; 2]);
                let mut best: Option<Candidate> = None;
                for &i in scratch.xusers.row(link.index()) {
                    let i = i as usize;
                    let c = &cs.comms()[i];
                    if let Some((swap_at, rem, add)) = flip_candidate_at(mesh, &paths[i], link) {
                        let mut delta = 0.0;
                        // Cost after removing the comm from `rem` and adding
                        // it to `add`, minus current cost, over the affected
                        // links only.
                        for l in rem {
                            let load = scratch.loads.get(l);
                            delta += link_cost(model, ladder, load - c.weight)
                                - link_cost(model, ladder, load);
                        }
                        for l in add {
                            let load = scratch.loads.get(l);
                            delta += link_cost(model, ladder, load + c.weight)
                                - link_cost(model, ladder, load);
                        }
                        if delta < -IMPROVE_EPS && best.as_ref().is_none_or(|(b, ..)| delta < *b) {
                            best = Some((delta, i, swap_at, rem, add));
                        }
                    }
                }
                if let Some((_, i, swap_at, rem, add)) = best {
                    let w = cs.comms()[i].weight;
                    // Lazy invalidation: the `LoadMap` clamps cancellation
                    // residue, so the queue re-keys from the map's final
                    // values in one batched refresh.
                    for l in rem {
                        scratch.loads.add(l, -w);
                        scratch.queue.mark_dirty(l);
                    }
                    for l in add {
                        scratch.loads.add(l, w);
                        scratch.queue.mark_dirty(l);
                    }
                    scratch.queue.refresh(&scratch.loads);
                    // Only now build the accepted path (one allocation per
                    // applied move instead of one per evaluated candidate).
                    let mut new_moves = paths[i].moves().to_vec();
                    new_moves.swap(swap_at, swap_at + 1);
                    paths[i] = Path::from_moves(paths[i].src(), new_moves);
                    // Re-home the comm in the crossing index: its new path
                    // differs from the old one in exactly `rem` → `add`
                    // (sorted insert/remove panics inside `CrossingIndex`
                    // document the same crossing invariants the old
                    // binary-search expects asserted here).
                    for l in rem {
                        scratch.xusers.remove_sorted(l.index(), i as u32);
                    }
                    for l in add {
                        scratch.xusers.insert_sorted(l.index(), i as u32);
                    }
                    moves_done += 1;
                    continue 'outer; // restart from the most loaded link
                }
                // No improvement through this link: leave it queued (its
                // key is unchanged) and let the cursor move on (the paper
                // removes it from the list).
            }
            break; // no link admits an improving modification
        }
        Routing::single(cs, paths)
    }
}

impl Heuristic for XyImprover {
    fn name(&self) -> &'static str {
        "XYI"
    }

    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        match scratch.engine().xyi {
            EngineSel::Live => self.route_queued_with(cs, model, scratch),
            EngineSel::Reference => ReferenceXyImprover {
                max_moves: self.max_moves,
            }
            .route_with(cs, model, scratch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::rules::xy_routing;
    use pamr_mesh::{Coord, Step};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn flip_vertical_link_moves_corner_towards_source() {
        let mesh = Mesh::new(3, 3);
        // XY path (0,0) → R R D D; flip the first vertical link (0,2)→(1,2).
        let p = Path::xy(Coord::new(0, 0), Coord::new(2, 2));
        let link = mesh.link_id(Coord::new(0, 2), Step::Down).unwrap();
        let (np, rem, add) = flip_move(&mesh, &p, link).unwrap();
        assert_eq!(
            np.moves(),
            &[Step::Right, Step::Down, Step::Right, Step::Down]
        );
        assert!(rem.contains(&link));
        assert!(!np.crosses(&mesh, link));
        assert!(np.is_manhattan(&mesh));
        // The replacement horizontal link enters the same core (1,2).
        let entering = add
            .iter()
            .find(|&&l| mesh.link_step(l).is_horizontal())
            .unwrap();
        assert_eq!(mesh.link_endpoints(*entering).1, Coord::new(1, 2));
    }

    #[test]
    fn flip_horizontal_link_moves_corner_towards_sink() {
        let mesh = Mesh::new(3, 3);
        // Path R R D D: flip the first horizontal link (0,0)→(0,1): requires
        // following move vertical — here it's R, so not movable. Second
        // horizontal (0,1)→(0,2) is followed by D: movable.
        let p = Path::xy(Coord::new(0, 0), Coord::new(2, 2));
        let l1 = mesh.link_id(Coord::new(0, 0), Step::Right).unwrap();
        assert!(flip_move(&mesh, &p, l1).is_none());
        let l2 = mesh.link_id(Coord::new(0, 1), Step::Right).unwrap();
        let (np, _, add) = flip_move(&mesh, &p, l2).unwrap();
        assert_eq!(
            np.moves(),
            &[Step::Right, Step::Down, Step::Right, Step::Down]
        );
        // The replacement vertical link leaves the same core (0,1).
        let leaving = add
            .iter()
            .find(|&&l| mesh.link_step(l).is_vertical())
            .unwrap();
        assert_eq!(mesh.link_endpoints(*leaving).0, Coord::new(0, 1));
    }

    #[test]
    fn flip_requires_adjacent_orthogonal_move() {
        let mesh = Mesh::new(4, 4);
        // Straight vertical path: nothing can move.
        let p = Path::xy(Coord::new(0, 1), Coord::new(3, 1));
        for l in p.links(&mesh).collect::<Vec<_>>() {
            assert!(flip_move(&mesh, &p, l).is_none());
        }
    }

    #[test]
    fn xyi_improves_two_identical_flows() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let r = XyImprover::default().route(&cs, &model);
        assert!(r.is_structurally_valid(&cs, 1));
        let p = r.power(&cs, &model).unwrap().total();
        let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        assert!(p < p_xy, "XYI ({p}) must beat XY ({p_xy})");
        assert!(
            (p - 56.0).abs() < 1e-9,
            "XYI should reach the 1-MP optimum 56, got {p}"
        );
    }

    #[test]
    fn xyi_repairs_infeasible_xy_start() {
        // Two weight-3 flows with BW=4: XY stacks 6.0 > BW on both shared
        // links, but XY + YX separation is feasible.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        assert!(!xy_routing(&cs).is_feasible(&cs, &model));
        let r = XyImprover::default().route(&cs, &model);
        assert!(r.is_feasible(&cs, &model), "XYI must repair the overload");
    }

    #[test]
    fn xyi_never_worse_than_xy_when_xy_feasible() {
        let mesh = Mesh::new(5, 5);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(4, 4), 1.0),
                Comm::new(Coord::new(0, 4), Coord::new(4, 0), 1.0),
                Comm::new(Coord::new(2, 0), Coord::new(2, 4), 1.0),
                Comm::new(Coord::new(0, 2), Coord::new(4, 2), 1.0),
            ],
        );
        let model = PowerModel::theory(2.5);
        let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        let p = XyImprover::default()
            .route(&cs, &model)
            .power(&cs, &model)
            .unwrap()
            .total();
        assert!(p <= p_xy + 1e-9);
    }

    #[test]
    fn queued_matches_reference_on_random_instances() {
        // A compact in-crate differential check (the full oracle lives in
        // tests/xyi_differential.rs): identical routings on random instances
        // covering all four quadrants, straight lines and local traffic.
        let model = PowerModel::kim_horowitz();
        let mut scratch = crate::RouteScratch::new();
        for seed in 0..24u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let (p, q) = (rng.gen_range(2..=7), rng.gen_range(2..=7));
            let mesh = Mesh::new(p, q);
            let n = rng.gen_range(1..=16);
            let comms = (0..n)
                .map(|_| {
                    Comm::new(
                        Coord::new(rng.gen_range(0..p), rng.gen_range(0..q)),
                        Coord::new(rng.gen_range(0..p), rng.gen_range(0..q)),
                        rng.gen_range(1.0..2500.0),
                    )
                })
                .collect();
            let cs = CommSet::new(mesh, comms);
            let queued = XyImprover::default().route_queued_with(&cs, &model, &mut scratch);
            let reference = ReferenceXyImprover::default().route_with(&cs, &model, &mut scratch);
            assert_eq!(
                queued, reference,
                "seed {seed}: queued XYI diverged from the full-scan oracle"
            );
        }
    }

    #[test]
    fn engine_config_swaps_the_engine() {
        // Both engine selections must produce identical routings through
        // the public dispatch (the differential contract), with no shared
        // process state: each scratch pins its own config.
        use crate::engine::EngineConfig;
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 2.0),
                Comm::new(Coord::new(3, 0), Coord::new(0, 3), 1.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let mut live = RouteScratch::with_engine(EngineConfig::LIVE);
        let mut oracle = RouteScratch::with_engine(EngineConfig::REFERENCE);
        let queued = XyImprover::default().route_with(&cs, &model, &mut live);
        let reference = XyImprover::default().route_with(&cs, &model, &mut oracle);
        assert_eq!(queued, reference);
    }
}
