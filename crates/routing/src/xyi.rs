//! The XY-improver heuristic (§5.4).

use crate::comm::CommSet;
use crate::heuristic::{surrogate_link_cost, Heuristic};
use crate::routing::Routing;
use pamr_mesh::{LinkId, LoadMap, Mesh, Path};
use pamr_power::PowerModel;

/// Relative improvement below which a modification is not considered an
/// improvement (guards termination against floating-point noise).
const IMPROVE_EPS: f64 = 1e-9;

/// **XYI — XY improver** (§5.4).
///
/// Starts from the XY routing and iteratively relieves the most loaded
/// links. For the most loaded link, every communication crossing it is
/// offered the paper's *move*:
///
/// * **vertical link** `a → b`: replace the corner `…→H a →V b` with
///   `…→V b' →H b` — the horizontal link now goes *to the same core* `b`
///   *from the core closest to the source* (requires the move before the
///   link to be horizontal);
/// * **horizontal link** `a → b`: replace `a →H b →V c` with
///   `a →V b'' →H c` — the vertical link now goes *from the same core* `a`
///   *towards the core closest to the sink* (requires the move after the
///   link to be vertical).
///
/// If some modification lowers the (surrogate) power, the best one is
/// applied, loads are updated and the link list is re-sorted; otherwise the
/// link is dropped from the list and the next most loaded link is examined.
/// Because XYI minimises the *surrogate* cost, it can also repair instances
/// on which XY exceeds link bandwidths — the paper's campaign counts on
/// this (XYI succeeds on ~46% of instances vs ~15% for XY).
#[derive(Debug, Clone, Copy)]
pub struct XyImprover {
    /// Safety bound on accepted modifications (the surrogate strictly
    /// decreases at every step, so this is virtually never reached).
    pub max_moves: usize,
}

impl Default for XyImprover {
    fn default() -> Self {
        XyImprover {
            max_moves: 1_000_000,
        }
    }
}

/// The paper's single candidate modification of `path` to avoid `link`, or
/// `None` when the move would violate the Manhattan-path constraint.
///
/// Returns the new path together with the two removed and two added links.
fn flip_move(mesh: &Mesh, path: &Path, link: LinkId) -> Option<(Path, [LinkId; 2], [LinkId; 2])> {
    let links: Vec<LinkId> = path.links(mesh).collect();
    let j = links.iter().position(|&l| l == link)?;
    let moves = path.moves();
    let vertical = mesh.link_step(link).is_vertical();
    // Pick the adjacent orthogonal move to swap with.
    let swap_at = if vertical {
        // Need the preceding move to be horizontal: swap (j-1, j).
        if j == 0 || !moves[j - 1].is_horizontal() {
            return None;
        }
        j - 1
    } else {
        // Need the following move to be vertical: swap (j, j+1).
        if j + 1 >= moves.len() || !moves[j + 1].is_vertical() {
            return None;
        }
        j
    };
    let mut new_moves = moves.to_vec();
    new_moves.swap(swap_at, swap_at + 1);
    let new_path = Path::from_moves(path.src(), new_moves);
    let new_links: Vec<LinkId> = new_path.links(mesh).collect();
    debug_assert_eq!(new_links.len(), links.len());
    let removed = [links[swap_at], links[swap_at + 1]];
    let added = [new_links[swap_at], new_links[swap_at + 1]];
    debug_assert!(!new_links.contains(&link));
    Some((new_path, removed, added))
}

impl Heuristic for XyImprover {
    fn name(&self) -> &'static str {
        "XYI"
    }

    fn route(&self, cs: &CommSet, model: &PowerModel) -> Routing {
        let mesh = cs.mesh();
        let mut paths: Vec<Path> = cs.comms().iter().map(|c| Path::xy(c.src, c.snk)).collect();
        let mut loads = LoadMap::new(mesh);
        for (c, p) in cs.comms().iter().zip(&paths) {
            loads.add_path(mesh, p, c.weight);
        }
        let mut moves_done = 0;
        'outer: while moves_done < self.max_moves {
            // List of loaded links by decreasing load.
            let mut list: Vec<(LinkId, f64)> = loads.iter_active().collect();
            list.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            for (link, _) in list {
                // Best modification among the communications on this link:
                // (delta, comm index, new path, removed links, added links).
                type Candidate = (f64, usize, Path, [LinkId; 2], [LinkId; 2]);
                let mut best: Option<Candidate> = None;
                for (i, c) in cs.comms().iter().enumerate() {
                    if !paths[i].crosses(mesh, link) {
                        continue;
                    }
                    if let Some((np, rem, add)) = flip_move(mesh, &paths[i], link) {
                        let mut delta = 0.0;
                        // Cost after removing the comm from `rem` and adding
                        // it to `add`, minus current cost, over the affected
                        // links only.
                        for l in rem {
                            let load = loads.get(l);
                            delta += surrogate_link_cost(model, load - c.weight)
                                - surrogate_link_cost(model, load);
                        }
                        for l in add {
                            let load = loads.get(l);
                            delta += surrogate_link_cost(model, load + c.weight)
                                - surrogate_link_cost(model, load);
                        }
                        if delta < -IMPROVE_EPS && best.as_ref().is_none_or(|(b, ..)| delta < *b) {
                            best = Some((delta, i, np, rem, add));
                        }
                    }
                }
                if let Some((_, i, np, rem, add)) = best {
                    let w = cs.comms()[i].weight;
                    for l in rem {
                        loads.add(l, -w);
                    }
                    for l in add {
                        loads.add(l, w);
                    }
                    paths[i] = np;
                    moves_done += 1;
                    continue 'outer; // re-sort and restart from the top
                }
                // No improvement through this link: drop it and try the next
                // one (the paper removes it from the list).
            }
            break; // no link admits an improving modification
        }
        Routing::single(cs, paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::rules::xy_routing;
    use pamr_mesh::{Coord, Step};

    #[test]
    fn flip_vertical_link_moves_corner_towards_source() {
        let mesh = Mesh::new(3, 3);
        // XY path (0,0) → R R D D; flip the first vertical link (0,2)→(1,2).
        let p = Path::xy(Coord::new(0, 0), Coord::new(2, 2));
        let link = mesh.link_id(Coord::new(0, 2), Step::Down).unwrap();
        let (np, rem, add) = flip_move(&mesh, &p, link).unwrap();
        assert_eq!(
            np.moves(),
            &[Step::Right, Step::Down, Step::Right, Step::Down]
        );
        assert!(rem.contains(&link));
        assert!(!np.crosses(&mesh, link));
        assert!(np.is_manhattan(&mesh));
        // The replacement horizontal link enters the same core (1,2).
        let entering = add
            .iter()
            .find(|&&l| mesh.link_step(l).is_horizontal())
            .unwrap();
        assert_eq!(mesh.link_endpoints(*entering).1, Coord::new(1, 2));
    }

    #[test]
    fn flip_horizontal_link_moves_corner_towards_sink() {
        let mesh = Mesh::new(3, 3);
        // Path R R D D: flip the first horizontal link (0,0)→(0,1): requires
        // following move vertical — here it's R, so not movable. Second
        // horizontal (0,1)→(0,2) is followed by D: movable.
        let p = Path::xy(Coord::new(0, 0), Coord::new(2, 2));
        let l1 = mesh.link_id(Coord::new(0, 0), Step::Right).unwrap();
        assert!(flip_move(&mesh, &p, l1).is_none());
        let l2 = mesh.link_id(Coord::new(0, 1), Step::Right).unwrap();
        let (np, _, add) = flip_move(&mesh, &p, l2).unwrap();
        assert_eq!(
            np.moves(),
            &[Step::Right, Step::Down, Step::Right, Step::Down]
        );
        // The replacement vertical link leaves the same core (0,1).
        let leaving = add
            .iter()
            .find(|&&l| mesh.link_step(l).is_vertical())
            .unwrap();
        assert_eq!(mesh.link_endpoints(*leaving).0, Coord::new(0, 1));
    }

    #[test]
    fn flip_requires_adjacent_orthogonal_move() {
        let mesh = Mesh::new(4, 4);
        // Straight vertical path: nothing can move.
        let p = Path::xy(Coord::new(0, 1), Coord::new(3, 1));
        for l in p.links(&mesh).collect::<Vec<_>>() {
            assert!(flip_move(&mesh, &p, l).is_none());
        }
    }

    #[test]
    fn xyi_improves_two_identical_flows() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let r = XyImprover::default().route(&cs, &model);
        assert!(r.is_structurally_valid(&cs, 1));
        let p = r.power(&cs, &model).unwrap().total();
        let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        assert!(p < p_xy, "XYI ({p}) must beat XY ({p_xy})");
        assert!(
            (p - 56.0).abs() < 1e-9,
            "XYI should reach the 1-MP optimum 56, got {p}"
        );
    }

    #[test]
    fn xyi_repairs_infeasible_xy_start() {
        // Two weight-3 flows with BW=4: XY stacks 6.0 > BW on both shared
        // links, but XY + YX separation is feasible.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        assert!(!xy_routing(&cs).is_feasible(&cs, &model));
        let r = XyImprover::default().route(&cs, &model);
        assert!(r.is_feasible(&cs, &model), "XYI must repair the overload");
    }

    #[test]
    fn xyi_never_worse_than_xy_when_xy_feasible() {
        let mesh = Mesh::new(5, 5);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(4, 4), 1.0),
                Comm::new(Coord::new(0, 4), Coord::new(4, 0), 1.0),
                Comm::new(Coord::new(2, 0), Coord::new(2, 4), 1.0),
                Comm::new(Coord::new(0, 2), Coord::new(4, 2), 1.0),
            ],
        );
        let model = PowerModel::theory(2.5);
        let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        let p = XyImprover::default()
            .route(&cs, &model)
            .power(&cs, &model)
            .unwrap()
            .total();
        assert!(p <= p_xy + 1e-9);
    }
}
