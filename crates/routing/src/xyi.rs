//! The XY-improver heuristic (§5.4).

use crate::comm::CommSet;
use crate::heuristic::{surrogate_link_cost, Heuristic};
use crate::routing::Routing;
use crate::scratch::{select_max, RouteScratch};
use pamr_mesh::{LinkId, Mesh, Path};
use pamr_power::PowerModel;

/// Relative improvement below which a modification is not considered an
/// improvement (guards termination against floating-point noise).
const IMPROVE_EPS: f64 = 1e-9;

/// **XYI — XY improver** (§5.4).
///
/// Starts from the XY routing and iteratively relieves the most loaded
/// links. For the most loaded link, every communication crossing it is
/// offered the paper's *move*:
///
/// * **vertical link** `a → b`: replace the corner `…→H a →V b` with
///   `…→V b' →H b` — the horizontal link now goes *to the same core* `b`
///   *from the core closest to the source* (requires the move before the
///   link to be horizontal);
/// * **horizontal link** `a → b`: replace `a →H b →V c` with
///   `a →V b'' →H c` — the vertical link now goes *from the same core* `a`
///   *towards the core closest to the sink* (requires the move after the
///   link to be vertical).
///
/// If some modification lowers the (surrogate) power, the best one is
/// applied, loads are updated and the link list is re-sorted; otherwise the
/// link is dropped from the list and the next most loaded link is examined.
/// Because XYI minimises the *surrogate* cost, it can also repair instances
/// on which XY exceeds link bandwidths — the paper's campaign counts on
/// this (XYI succeeds on ~46% of instances vs ~15% for XY).
#[derive(Debug, Clone, Copy)]
pub struct XyImprover {
    /// Safety bound on accepted modifications (the surrogate strictly
    /// decreases at every step, so this is virtually never reached).
    pub max_moves: usize,
}

impl Default for XyImprover {
    fn default() -> Self {
        XyImprover {
            max_moves: 1_000_000,
        }
    }
}

/// The paper's single candidate modification of `path` to avoid `link`,
/// without building the new path: the position of the move swap plus the
/// two removed and two added links. `None` when the move would violate the
/// Manhattan-path constraint.
///
/// Only the two links at `swap_at` / `swap_at + 1` differ between the old
/// and new paths, so the candidate is fully described — and its surrogate
/// delta evaluable — with zero allocations.
fn flip_candidate(
    mesh: &Mesh,
    path: &Path,
    link: LinkId,
) -> Option<(usize, [LinkId; 2], [LinkId; 2])> {
    let moves = path.moves();
    // Walk the path to find the link's position and the cores around it.
    let mut cur = path.src();
    let mut prev = cur;
    let mut j = usize::MAX;
    for (idx, &m) in moves.iter().enumerate() {
        if mesh.link_id(cur, m) == Some(link) {
            j = idx;
            break;
        }
        prev = cur;
        cur = mesh.step(cur, m)?;
    }
    if j == usize::MAX {
        return None; // path does not cross the link
    }
    let vertical = mesh.link_step(link).is_vertical();
    // Pick the adjacent orthogonal move to swap with.
    let (swap_at, corner) = if vertical {
        // Need the preceding move to be horizontal: swap (j-1, j).
        if j == 0 || !moves[j - 1].is_horizontal() {
            return None;
        }
        (j - 1, prev)
    } else {
        // Need the following move to be vertical: swap (j, j+1).
        if j + 1 >= moves.len() || !moves[j + 1].is_vertical() {
            return None;
        }
        (j, cur)
    };
    let (a, b) = (moves[swap_at], moves[swap_at + 1]);
    // Swapping orthogonal moves a,b around `corner` stays in the path's
    // bounding box, so every link id below exists.
    let via_a = mesh.step(corner, a).expect("path stays on the mesh");
    let via_b = mesh
        .step(corner, b)
        .expect("swapped corner stays on the mesh");
    let removed = [
        mesh.link_id(corner, a).expect("removed links exist"),
        mesh.link_id(via_a, b).expect("removed links exist"),
    ];
    let added = [
        mesh.link_id(corner, b).expect("added links exist"),
        mesh.link_id(via_b, a).expect("added links exist"),
    ];
    debug_assert!(removed.contains(&link));
    debug_assert!(!added.contains(&link));
    Some((swap_at, removed, added))
}

/// [`flip_candidate`] plus the rebuilt path (test-only convenience; the
/// improvement loop builds the path lazily on acceptance).
#[cfg(test)]
fn flip_move(mesh: &Mesh, path: &Path, link: LinkId) -> Option<(Path, [LinkId; 2], [LinkId; 2])> {
    let (swap_at, removed, added) = flip_candidate(mesh, path, link)?;
    let mut new_moves = path.moves().to_vec();
    new_moves.swap(swap_at, swap_at + 1);
    Some((Path::from_moves(path.src(), new_moves), removed, added))
}

impl Heuristic for XyImprover {
    fn name(&self) -> &'static str {
        "XYI"
    }

    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        let mesh = cs.mesh();
        let mut paths: Vec<Path> = cs.comms().iter().map(|c| Path::xy(c.src, c.snk)).collect();
        scratch.loads.fit(mesh);
        let loads = &mut scratch.loads;
        for (c, p) in cs.comms().iter().zip(&paths) {
            loads.add_path(mesh, p, c.weight);
        }
        let mut moves_done = 0;
        'outer: while moves_done < self.max_moves {
            // Loaded links examined in decreasing-load order, selected
            // lazily: an improving modification is usually found within the
            // first few links, so the full sort is almost never needed.
            scratch.active.clear();
            scratch.active.extend(loads.iter_active());
            let mut next = 0;
            while let Some((link, _)) = select_max(&mut scratch.active, next) {
                next += 1;
                // Best modification among the communications on this link:
                // (delta, comm index, swap position, removed, added links).
                type Candidate = (f64, usize, usize, [LinkId; 2], [LinkId; 2]);
                let mut best: Option<Candidate> = None;
                for (i, c) in cs.comms().iter().enumerate() {
                    if let Some((swap_at, rem, add)) = flip_candidate(mesh, &paths[i], link) {
                        let mut delta = 0.0;
                        // Cost after removing the comm from `rem` and adding
                        // it to `add`, minus current cost, over the affected
                        // links only.
                        for l in rem {
                            let load = loads.get(l);
                            delta += surrogate_link_cost(model, load - c.weight)
                                - surrogate_link_cost(model, load);
                        }
                        for l in add {
                            let load = loads.get(l);
                            delta += surrogate_link_cost(model, load + c.weight)
                                - surrogate_link_cost(model, load);
                        }
                        if delta < -IMPROVE_EPS && best.as_ref().is_none_or(|(b, ..)| delta < *b) {
                            best = Some((delta, i, swap_at, rem, add));
                        }
                    }
                }
                if let Some((_, i, swap_at, rem, add)) = best {
                    let w = cs.comms()[i].weight;
                    for l in rem {
                        loads.add(l, -w);
                    }
                    for l in add {
                        loads.add(l, w);
                    }
                    // Only now build the accepted path (one allocation per
                    // applied move instead of one per evaluated candidate).
                    let mut new_moves = paths[i].moves().to_vec();
                    new_moves.swap(swap_at, swap_at + 1);
                    paths[i] = Path::from_moves(paths[i].src(), new_moves);
                    moves_done += 1;
                    continue 'outer; // re-sort and restart from the top
                }
                // No improvement through this link: drop it and try the next
                // one (the paper removes it from the list).
            }
            break; // no link admits an improving modification
        }
        Routing::single(cs, paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::rules::xy_routing;
    use pamr_mesh::{Coord, Step};

    #[test]
    fn flip_vertical_link_moves_corner_towards_source() {
        let mesh = Mesh::new(3, 3);
        // XY path (0,0) → R R D D; flip the first vertical link (0,2)→(1,2).
        let p = Path::xy(Coord::new(0, 0), Coord::new(2, 2));
        let link = mesh.link_id(Coord::new(0, 2), Step::Down).unwrap();
        let (np, rem, add) = flip_move(&mesh, &p, link).unwrap();
        assert_eq!(
            np.moves(),
            &[Step::Right, Step::Down, Step::Right, Step::Down]
        );
        assert!(rem.contains(&link));
        assert!(!np.crosses(&mesh, link));
        assert!(np.is_manhattan(&mesh));
        // The replacement horizontal link enters the same core (1,2).
        let entering = add
            .iter()
            .find(|&&l| mesh.link_step(l).is_horizontal())
            .unwrap();
        assert_eq!(mesh.link_endpoints(*entering).1, Coord::new(1, 2));
    }

    #[test]
    fn flip_horizontal_link_moves_corner_towards_sink() {
        let mesh = Mesh::new(3, 3);
        // Path R R D D: flip the first horizontal link (0,0)→(0,1): requires
        // following move vertical — here it's R, so not movable. Second
        // horizontal (0,1)→(0,2) is followed by D: movable.
        let p = Path::xy(Coord::new(0, 0), Coord::new(2, 2));
        let l1 = mesh.link_id(Coord::new(0, 0), Step::Right).unwrap();
        assert!(flip_move(&mesh, &p, l1).is_none());
        let l2 = mesh.link_id(Coord::new(0, 1), Step::Right).unwrap();
        let (np, _, add) = flip_move(&mesh, &p, l2).unwrap();
        assert_eq!(
            np.moves(),
            &[Step::Right, Step::Down, Step::Right, Step::Down]
        );
        // The replacement vertical link leaves the same core (0,1).
        let leaving = add
            .iter()
            .find(|&&l| mesh.link_step(l).is_vertical())
            .unwrap();
        assert_eq!(mesh.link_endpoints(*leaving).0, Coord::new(0, 1));
    }

    #[test]
    fn flip_requires_adjacent_orthogonal_move() {
        let mesh = Mesh::new(4, 4);
        // Straight vertical path: nothing can move.
        let p = Path::xy(Coord::new(0, 1), Coord::new(3, 1));
        for l in p.links(&mesh).collect::<Vec<_>>() {
            assert!(flip_move(&mesh, &p, l).is_none());
        }
    }

    #[test]
    fn xyi_improves_two_identical_flows() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let r = XyImprover::default().route(&cs, &model);
        assert!(r.is_structurally_valid(&cs, 1));
        let p = r.power(&cs, &model).unwrap().total();
        let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        assert!(p < p_xy, "XYI ({p}) must beat XY ({p_xy})");
        assert!(
            (p - 56.0).abs() < 1e-9,
            "XYI should reach the 1-MP optimum 56, got {p}"
        );
    }

    #[test]
    fn xyi_repairs_infeasible_xy_start() {
        // Two weight-3 flows with BW=4: XY stacks 6.0 > BW on both shared
        // links, but XY + YX separation is feasible.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        assert!(!xy_routing(&cs).is_feasible(&cs, &model));
        let r = XyImprover::default().route(&cs, &model);
        assert!(r.is_feasible(&cs, &model), "XYI must repair the overload");
    }

    #[test]
    fn xyi_never_worse_than_xy_when_xy_feasible() {
        let mesh = Mesh::new(5, 5);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(4, 4), 1.0),
                Comm::new(Coord::new(0, 4), Coord::new(4, 0), 1.0),
                Comm::new(Coord::new(2, 0), Coord::new(2, 4), 1.0),
                Comm::new(Coord::new(0, 2), Coord::new(4, 2), 1.0),
            ],
        );
        let model = PowerModel::theory(2.5);
        let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        let p = XyImprover::default()
            .route(&cs, &model)
            .power(&cs, &model)
            .unwrap()
            .total();
        assert!(p <= p_xy + 1e-9);
    }
}
