//! Flat CSR **crossing-comms index**: `link slot → sorted comm/slot ids`.
//!
//! The engines keep asking the same structural question: *which
//! communications can this link affect?* — XYI keys it by the current path
//! crossing the link, PR by band membership, and the
//! [`RoutingSession`](crate::session::RoutingSession) keeps both flavours
//! resident across requests. The historical representation was a
//! `Vec<Vec<usize>>` per consumer: one heap allocation per link slot
//! (`p·q·4` of them — 262 144 on a 256×256 mesh), pointer-chasing on every
//! candidate scan, and an `O(slots)` clear per rebuild.
//!
//! [`CrossingIndex`] is the flat CSR replacement, following the
//! `first_out`/`head` layout of `rust_road_router`'s `FirstOutGraph` (the
//! same idiom as [`MeshPrecompute`](crate::precompute::MeshPrecompute)'s
//! adjacency and [`Band`](pamr_mesh::Band)'s group table): all rows live in
//! one arena, a row is a slice, and a bulk [`rebuild`](CrossingIndex::rebuild)
//! lays the rows out exactly-fit in two counting passes. Dynamic consumers
//! (the session's incremental mutations, queued XYI's accepted flips) get
//! sorted insert/remove with per-row amortised doubling: an overflowing row
//! relocates to the end of the arena, so one insert costs `O(row)` worst
//! case and `O(log row)` search — never a whole-index rebuild.
//!
//! **Bit-identity.** Row contents and row order are exactly what the
//! Vec-of-Vec index held, so every consumer iterates candidates in the same
//! order and computes the same floats. The Vec-of-Vec index survives in the
//! reference engines (`pr::reference`, `xyi::reference`) as the oracle side;
//! `tests/scaling_differential.rs` and `crates/routing/tests/csr_prop.rs`
//! pin the equivalence.

/// A flat CSR map from dense row ids (link slots) to sorted ascending
/// `u32` entries (comm indices or session slots). See the [module
/// docs](self).
#[derive(Debug, Default, Clone)]
pub struct CrossingIndex {
    /// Arena offset of each row's slab.
    start: Vec<u32>,
    /// Slab capacity of each row (`len ≤ cap`).
    cap: Vec<u32>,
    /// Live entries of each row.
    len: Vec<u32>,
    /// The slab arena. Freed slabs (row relocations) are abandoned until
    /// the next [`rebuild`](Self::rebuild) compacts the arena; leaked space
    /// is bounded by the doubling schedule (< 2× the live total).
    data: Vec<u32>,
    /// Rows holding at least one entry, ascending — filled by
    /// [`rebuild`](Self::rebuild) (dynamic inserts do **not** maintain it;
    /// see [`active_rows`](Self::active_rows)).
    active: Vec<u32>,
}

impl CrossingIndex {
    /// A new, empty index. Size it with [`CrossingIndex::clear`] or
    /// [`CrossingIndex::rebuild`] before use.
    pub fn new() -> Self {
        CrossingIndex::default()
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.start.len()
    }

    /// Empties the index and resizes it to `n_rows` zero-capacity rows,
    /// keeping allocations. Subsequent inserts grow rows individually.
    pub fn clear(&mut self, n_rows: usize) {
        self.start.clear();
        self.start.resize(n_rows, 0);
        self.cap.clear();
        self.cap.resize(n_rows, 0);
        self.len.clear();
        self.len.resize(n_rows, 0);
        self.data.clear();
        self.active.clear();
    }

    /// Bulk rebuild from an emitter called **twice** (count pass, fill
    /// pass): `emit` must invoke its callback with the same `(row, value)`
    /// sequence both times. Rows are laid out exactly-fit in arena order of
    /// first appearance of their counts (dense prefix sums), each row
    /// receiving its values in emission order — identical row contents, in
    /// identical order, to pushing into a `Vec<Vec<_>>`.
    pub fn rebuild<F>(&mut self, n_rows: usize, mut emit: F)
    where
        F: FnMut(&mut dyn FnMut(usize, u32)),
    {
        self.len.clear();
        self.len.resize(n_rows, 0);
        let len = &mut self.len;
        emit(&mut |row, _| len[row] += 1);
        self.start.clear();
        self.start.reserve(n_rows);
        self.cap.clear();
        self.cap.reserve(n_rows);
        self.active.clear();
        let mut total = 0u32;
        for (row, &n) in self.len.iter().enumerate() {
            self.start.push(total);
            self.cap.push(n);
            total += n;
            if n > 0 {
                self.active.push(row as u32);
            }
        }
        self.data.clear();
        self.data.resize(total as usize, 0);
        self.len.iter_mut().for_each(|n| *n = 0);
        let (start, len, data) = (&self.start, &mut self.len, &mut self.data);
        emit(&mut |row, value| {
            data[(start[row] + len[row]) as usize] = value;
            len[row] += 1;
        });
    }

    /// The entries of `row`, in insertion/sorted order.
    #[inline]
    pub fn row(&self, row: usize) -> &[u32] {
        let lo = self.start[row] as usize;
        &self.data[lo..lo + self.len[row] as usize]
    }

    /// Mutable access to `row`'s entries (e.g. PR's per-row presort).
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [u32] {
        let lo = self.start[row] as usize;
        &mut self.data[lo..lo + self.len[row] as usize]
    }

    /// Number of entries in `row`.
    #[inline]
    pub fn len_of(&self, row: usize) -> usize {
        self.len[row] as usize
    }

    /// Entry `i` of `row`.
    #[inline]
    pub fn get(&self, row: usize, i: usize) -> u32 {
        debug_assert!(i < self.len_of(row));
        self.data[self.start[row] as usize + i]
    }

    /// The rows holding at least one entry after the last
    /// [`rebuild`](Self::rebuild), ascending. Dynamic inserts do not extend
    /// this list — consult it only between a rebuild and the first mutation
    /// (the PR engine's presort does exactly that).
    #[inline]
    pub fn active_rows(&self) -> &[u32] {
        &self.active
    }

    /// Sorts every non-empty row with `cmp`, touching only the rows the
    /// last [`rebuild`](Self::rebuild) populated — the banded PR's
    /// decreasing-weight presort, which used to iterate *all* `p·q·4` link
    /// slots to sort the occupied few. Like [`active_rows`](Self::active_rows),
    /// only meaningful between a rebuild and the first mutation.
    pub fn sort_rows_by<F>(&mut self, mut cmp: F)
    where
        F: FnMut(u32, u32) -> std::cmp::Ordering,
    {
        for &r in &self.active {
            let lo = self.start[r as usize] as usize;
            let n = self.len[r as usize] as usize;
            self.data[lo..lo + n].sort_by(|&a, &b| cmp(a, b));
        }
    }

    /// Inserts `value` into `row`, keeping the row sorted ascending.
    ///
    /// # Panics
    /// Panics if `value` is already present — callers insert a comm into
    /// the rows of exactly the links it does not yet occupy.
    pub fn insert_sorted(&mut self, row: usize, value: u32) {
        if self.len[row] == self.cap[row] {
            self.grow(row);
        }
        let lo = self.start[row] as usize;
        let n = self.len[row] as usize;
        let pos = self.data[lo..lo + n]
            .binary_search(&value)
            // pamr-lint: allow(P001, reason = "callers insert a comm into a row it cannot occupy yet: a fresh slot, or a link its old path did not cross")
            .expect_err("value cannot already be indexed in this row");
        self.data.copy_within(lo + pos..lo + n, lo + pos + 1);
        self.data[lo + pos] = value;
        self.len[row] += 1;
    }

    /// Removes `value` from a sorted row.
    ///
    /// # Panics
    /// Panics if `value` is absent — callers remove a comm from the rows of
    /// exactly the links it currently occupies.
    pub fn remove_sorted(&mut self, row: usize, value: u32) {
        let lo = self.start[row] as usize;
        let n = self.len[row] as usize;
        let pos = self.data[lo..lo + n]
            .binary_search(&value)
            // pamr-lint: allow(P001, reason = "callers remove a comm from the rows of exactly the links its current path or band occupies")
            .expect("value is indexed in this row");
        self.data.copy_within(lo + pos + 1..lo + n, lo + pos);
        self.len[row] -= 1;
    }

    /// Relocates `row` to the end of the arena with doubled capacity. The
    /// old slab is abandoned (compacted away by the next rebuild).
    fn grow(&mut self, row: usize) {
        let new_cap = (self.cap[row] * 2).max(4);
        let lo = self.start[row] as usize;
        let n = self.len[row] as usize;
        let new_lo = self.data.len();
        self.data.extend_from_within(lo..lo + n);
        self.data.resize(new_lo + new_cap as usize, 0);
        self.start[row] = new_lo as u32;
        self.cap[row] = new_cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Vec-of-Vec model the index replaces.
    fn naive(n_rows: usize, pairs: &[(usize, u32)]) -> Vec<Vec<u32>> {
        let mut v = vec![Vec::new(); n_rows];
        for &(r, x) in pairs {
            v[r].push(x);
        }
        v
    }

    #[test]
    fn rebuild_matches_vec_of_vec() {
        let pairs = [(3, 7), (0, 1), (3, 2), (5, 9), (0, 4), (3, 3)];
        let mut idx = CrossingIndex::new();
        idx.rebuild(7, |push| {
            for &(r, x) in &pairs {
                push(r, x);
            }
        });
        let model = naive(7, &pairs);
        for (r, row) in model.iter().enumerate() {
            assert_eq!(idx.row(r), row.as_slice(), "row {r}");
            assert_eq!(idx.len_of(r), row.len());
        }
        assert_eq!(idx.active_rows(), &[0, 3, 5]);
        assert_eq!(idx.get(3, 1), 2);
    }

    #[test]
    fn sorted_insert_remove_roundtrip() {
        let mut idx = CrossingIndex::new();
        idx.clear(4);
        for v in [5, 1, 9, 3, 7, 0, 8, 2] {
            idx.insert_sorted(2, v);
        }
        assert_eq!(idx.row(2), &[0, 1, 2, 3, 5, 7, 8, 9]);
        idx.remove_sorted(2, 5);
        idx.remove_sorted(2, 0);
        idx.remove_sorted(2, 9);
        assert_eq!(idx.row(2), &[1, 2, 3, 7, 8]);
        assert!(idx.row(0).is_empty());
    }

    #[test]
    fn growth_keeps_other_rows_intact() {
        let mut idx = CrossingIndex::new();
        idx.rebuild(3, |push| {
            push(0, 10);
            push(1, 20);
            push(2, 30);
        });
        // Overflow row 1 far past its exact-fit capacity.
        for v in 0..20 {
            if v != 20 {
                idx.insert_sorted(1, v);
            }
        }
        assert_eq!(idx.row(0), &[10]);
        assert_eq!(idx.row(2), &[30]);
        assert_eq!(idx.len_of(1), 21);
        let row: Vec<u32> = idx.row(1).to_vec();
        assert!(row.windows(2).all(|w| w[0] < w[1]), "row stays sorted");
    }

    #[test]
    #[should_panic(expected = "value cannot already be indexed")]
    fn duplicate_insert_panics() {
        let mut idx = CrossingIndex::new();
        idx.clear(1);
        idx.insert_sorted(0, 4);
        idx.insert_sorted(0, 4);
    }

    #[test]
    #[should_panic(expected = "value is indexed")]
    fn absent_remove_panics() {
        let mut idx = CrossingIndex::new();
        idx.clear(1);
        idx.remove_sorted(0, 4);
    }
}
