//! Problem instances: communications and communication sets (§3.2).

use pamr_mesh::{Band, Coord, Mesh, Quadrant};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One communication `γ = (C_src, C_snk, δ)`: `δ` bytes per second must be
/// routed from the source core to the sink core.
///
/// Weights are in the same unit as the power model's `capacity` (Mb/s in
/// the paper's simulation campaign).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Comm {
    /// Source core.
    pub src: Coord,
    /// Destination (sink) core.
    pub snk: Coord,
    /// Requested bandwidth `δ` (bytes/s; Mb/s in the campaign).
    pub weight: f64,
}

impl Comm {
    /// Creates a communication.
    ///
    /// # Panics
    /// Panics if the weight is not strictly positive and finite.
    pub fn new(src: Coord, snk: Coord, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "communication weight must be positive and finite, got {weight}"
        );
        Comm { src, snk, weight }
    }

    /// Manhattan length `ℓ = |u_src − u_snk| + |v_src − v_snk|` of every
    /// path of this communication.
    ///
    /// A zero-length (core-local) communication is what [`Comm::is_local`]
    /// reports; `is_empty` would be a misnomer here.
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.src.manhattan(self.snk)
    }

    /// True iff source and sink coincide (nothing to route).
    #[inline]
    pub fn is_local(&self) -> bool {
        self.src == self.snk
    }

    /// The communication's direction `d ∈ {1,2,3,4}` (§3.3).
    #[inline]
    pub fn quadrant(&self) -> Quadrant {
        Quadrant::of(self.src, self.snk)
    }

    /// The staircase band of links its Manhattan paths may use.
    pub fn band(&self, mesh: &Mesh) -> Band {
        Band::new(mesh, self.src, self.snk)
    }
}

impl fmt::Display for Comm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{} @{}", self.src, self.snk, self.weight)
    }
}

/// Processing order for the greedy-style heuristics (§5 discusses the
/// variants; decreasing weight won and is the default everywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SortOrder {
    /// Heaviest communications first (the paper's choice).
    #[default]
    DecreasingWeight,
    /// Longest communications first.
    DecreasingLength,
    /// Largest weight-per-hop first.
    DecreasingDensity,
}

/// A routing problem instance: the mesh plus the communications to route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommSet {
    mesh: Mesh,
    comms: Vec<Comm>,
}

impl CommSet {
    /// Builds an instance; all endpoints must lie on the mesh.
    ///
    /// # Panics
    /// Panics if a communication's source or sink is off-mesh.
    pub fn new(mesh: Mesh, comms: Vec<Comm>) -> Self {
        for (i, c) in comms.iter().enumerate() {
            assert!(
                mesh.contains(c.src) && mesh.contains(c.snk),
                "communication {i} ({c}) leaves the {}×{} mesh",
                mesh.rows(),
                mesh.cols()
            );
        }
        CommSet { mesh, comms }
    }

    /// The mesh.
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The communications, in instance order.
    #[inline]
    pub fn comms(&self) -> &[Comm] {
        &self.comms
    }

    /// Number of communications `n_c`.
    #[inline]
    pub fn len(&self) -> usize {
        self.comms.len()
    }

    /// True iff there is nothing to route.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.comms.is_empty()
    }

    /// Total requested bandwidth `K = Σ δ_i`.
    pub fn total_weight(&self) -> f64 {
        self.comms.iter().map(|c| c.weight).sum()
    }

    /// Communication indices sorted by **decreasing weight** (the processing
    /// order used by every heuristic of §5), ties broken by instance order
    /// for determinism.
    pub fn by_decreasing_weight(&self) -> Vec<usize> {
        self.by_order(SortOrder::DecreasingWeight)
    }

    /// Communication indices under one of the processing orders the paper
    /// compared (§5: "we have considered variants of the heuristics, where
    /// communications are sorted according to another criterion (as for
    /// instance their length, or the ratio of their weight over their
    /// length). It turns out that decreasing weights gives the best
    /// results"). Ties break by instance order.
    pub fn by_order(&self, order: SortOrder) -> Vec<usize> {
        let key = |c: &Comm| -> f64 {
            match order {
                SortOrder::DecreasingWeight => c.weight,
                SortOrder::DecreasingLength => c.len() as f64,
                SortOrder::DecreasingDensity => {
                    // Weight per hop; local communications sort last.
                    if c.len() == 0 {
                        0.0
                    } else {
                        c.weight / c.len() as f64
                    }
                }
            }
        };
        let mut idx: Vec<usize> = (0..self.comms.len()).collect();
        // total_cmp, not partial_cmp().unwrap(): identical order for the
        // finite positive keys `Comm::new` admits, but a `CommSet` built
        // from untrusted JSON (serde derives bypass the constructor's
        // weight assertions) must sort, not panic, on a NaN weight.
        idx.sort_by(|&a, &b| {
            key(&self.comms[b])
                .total_cmp(&key(&self.comms[a]))
                .then(a.cmp(&b))
        });
        idx
    }

    /// Mean Manhattan length of the communications (0 for an empty set).
    pub fn mean_length(&self) -> f64 {
        if self.comms.is_empty() {
            return 0.0;
        }
        self.comms.iter().map(|c| c.len() as f64).sum::<f64>() / self.comms.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_basic_properties() {
        let c = Comm::new(Coord::new(0, 0), Coord::new(2, 3), 10.0);
        assert_eq!(c.len(), 5);
        assert!(!c.is_local());
        assert_eq!(c.quadrant(), Quadrant::DownRight);
        let local = Comm::new(Coord::new(1, 1), Coord::new(1, 1), 1.0);
        assert!(local.is_local());
        assert_eq!(local.len(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_weight_rejected() {
        let _ = Comm::new(Coord::new(0, 0), Coord::new(1, 1), 0.0);
    }

    #[test]
    #[should_panic]
    fn nan_weight_rejected() {
        let _ = Comm::new(Coord::new(0, 0), Coord::new(1, 1), f64::NAN);
    }

    #[test]
    #[should_panic]
    fn off_mesh_comm_rejected() {
        let mesh = Mesh::new(2, 2);
        let _ = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(2, 2), 1.0)],
        );
    }

    #[test]
    fn decreasing_weight_order_with_stable_ties() {
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 5.0),
                Comm::new(Coord::new(0, 1), Coord::new(1, 2), 9.0),
                Comm::new(Coord::new(0, 2), Coord::new(1, 3), 5.0),
                Comm::new(Coord::new(1, 0), Coord::new(2, 1), 7.0),
            ],
        );
        assert_eq!(cs.by_decreasing_weight(), vec![1, 3, 0, 2]);
        assert_eq!(cs.total_weight(), 26.0);
        assert_eq!(cs.len(), 4);
        assert!((cs.mean_length() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nan_weight_sorts_instead_of_panicking() {
        // Regression: `Comm`'s fields are public and its `Deserialize` is
        // derived, so a NaN weight can reach `by_order` without ever
        // passing `Comm::new`'s assertion. The sort used to be
        // `partial_cmp().unwrap()`, which panicked on exactly this input;
        // `total_cmp` must produce a permutation instead.
        let mesh = Mesh::new(2, 2);
        let rogue = Comm {
            src: Coord::new(0, 0),
            snk: Coord::new(1, 1),
            weight: f64::NAN,
        };
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 0), 2.0),
                rogue,
                Comm::new(Coord::new(0, 1), Coord::new(1, 1), 5.0),
            ],
        );
        for order in [
            SortOrder::DecreasingWeight,
            SortOrder::DecreasingLength,
            SortOrder::DecreasingDensity,
        ] {
            let mut idx = cs.by_order(order);
            idx.sort_unstable();
            assert_eq!(idx, vec![0, 1, 2], "{order:?} must yield a permutation");
        }
        // And the well-formed communications still sort heaviest-first
        // relative to each other (NaN sorts above +inf under total_cmp).
        let idx = cs.by_decreasing_weight();
        let pos = |i: usize| idx.iter().position(|&x| x == i).unwrap();
        assert!(pos(2) < pos(0), "5.0 must precede 2.0");
    }

    #[test]
    fn empty_set() {
        let cs = CommSet::new(Mesh::new(2, 2), vec![]);
        assert!(cs.is_empty());
        assert_eq!(cs.total_weight(), 0.0);
        assert_eq!(cs.mean_length(), 0.0);
        assert!(cs.by_decreasing_weight().is_empty());
    }
}
