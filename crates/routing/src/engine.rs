//! Unified engine selection: one explicit [`EngineConfig`] instead of four
//! process-global switches.
//!
//! Every optimized data structure in the routing hot path ships with its
//! literal full-scan twin (see ARCHITECTURE.md § "The engine /
//! reference-oracle pattern"). Historically each subsystem carried its own
//! mutable process-global selector (`pr::set_implementation`,
//! `xyi::set_implementation`, `ig::set_implementation`,
//! `precompute::set_implementation`); flipping one from a test leaked into
//! every other test in the binary unless carefully serialized and restored.
//!
//! The selection is now *data, not ambient state*: an [`EngineConfig`]
//! value selecting [`EngineSel::Live`] or [`EngineSel::Reference`] per
//! subsystem, carried by the [`RouteScratch`](crate::RouteScratch) each
//! `route_with` call receives (`RouteScratch::with_engine`), by the
//! campaign (`pamr_sim::campaign::Campaign::engine`) and by the resident
//! session (`SessionConfig::engine`). Two call sites can use different
//! engines concurrently with no coordination:
//!
//! ```
//! use pamr_routing::{engine::EngineConfig, Heuristic, PathRemover, RouteScratch};
//! use pamr_mesh::{Coord, Mesh};
//! use pamr_power::PowerModel;
//!
//! let cs = pamr_routing::CommSet::new(
//!     Mesh::new(4, 4),
//!     vec![pamr_routing::Comm::new(Coord::new(0, 0), Coord::new(3, 3), 2.0)],
//! );
//! let model = PowerModel::theory(3.0);
//! let mut live = RouteScratch::with_engine(EngineConfig::LIVE);
//! let mut oracle = RouteScratch::with_engine(EngineConfig::REFERENCE);
//! let a = PathRemover.route_with(&cs, &model, &mut live);
//! let b = PathRemover.route_with(&cs, &model, &mut oracle);
//! assert_eq!(a, b); // the differential contract
//! ```
//!
//! The old four global setters survive as thin `#[deprecated]` shims over
//! one [`process_default`] config, which a scratch built without an
//! explicit config falls back to — existing callers keep working while
//! `pamr-lint`'s G001 rule flags any *new* first-party use of the shims.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which side of an engine/reference pair a subsystem dispatches to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EngineSel {
    /// The optimized production engine (banded PR, queued XYI, indexed IG,
    /// interned precompute tables) — the default everywhere.
    #[default]
    Live,
    /// The literal full-scan reference oracle the engine is differentially
    /// pinned against.
    Reference,
}

impl EngineSel {
    /// True iff this selects the reference oracle.
    #[inline]
    pub fn is_reference(self) -> bool {
        self == EngineSel::Reference
    }
}

/// Per-subsystem engine selection, threaded explicitly through
/// [`RouteScratch`](crate::RouteScratch), the campaign and the session.
///
/// `Default` (and [`EngineConfig::LIVE`]) selects every production engine;
/// [`EngineConfig::REFERENCE`] selects every oracle. Mixed configs are
/// built with the `with_*` combinators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct EngineConfig {
    /// Path-Remover engine (banded reachability vs full re-sweep).
    pub pr: EngineSel,
    /// XY-improver engine (queued link scan vs full link scan).
    pub xyi: EngineSel,
    /// Improved-greedy engine (per-group min-load index vs full band scan).
    pub ig: EngineSel,
    /// Table sourcing (interned per-endpoint precompute vs rebuild per
    /// trial, direct `powf` instead of the cost ladder).
    pub precompute: EngineSel,
}

impl EngineConfig {
    /// Every subsystem on its optimized engine (the default).
    pub const LIVE: EngineConfig = EngineConfig::all(EngineSel::Live);

    /// Every subsystem on its reference oracle.
    pub const REFERENCE: EngineConfig = EngineConfig::all(EngineSel::Reference);

    /// The same selection for every subsystem.
    pub const fn all(sel: EngineSel) -> EngineConfig {
        EngineConfig {
            pr: sel,
            xyi: sel,
            ig: sel,
            precompute: sel,
        }
    }

    /// This config with the Path-Remover selection replaced.
    pub const fn with_pr(mut self, sel: EngineSel) -> EngineConfig {
        self.pr = sel;
        self
    }

    /// This config with the XY-improver selection replaced.
    pub const fn with_xyi(mut self, sel: EngineSel) -> EngineConfig {
        self.xyi = sel;
        self
    }

    /// This config with the Improved-greedy selection replaced.
    pub const fn with_ig(mut self, sel: EngineSel) -> EngineConfig {
        self.ig = sel;
        self
    }

    /// This config with the precompute selection replaced.
    pub const fn with_precompute(mut self, sel: EngineSel) -> EngineConfig {
        self.precompute = sel;
        self
    }
}

/// Bit positions of the process-default bitmask (bit set = `Reference`).
const BIT_PR: u8 = 1 << 0;
const BIT_XYI: u8 = 1 << 1;
const BIT_IG: u8 = 1 << 2;
const BIT_PRECOMPUTE: u8 = 1 << 3;

/// The process-default [`EngineConfig`] as a bitmask, written only through
/// [`set_process_default`] and the deprecated per-subsystem shims.
static PROCESS_DEFAULT: AtomicU8 = AtomicU8::new(0);

fn to_bits(cfg: EngineConfig) -> u8 {
    let mut bits = 0;
    if cfg.pr.is_reference() {
        bits |= BIT_PR;
    }
    if cfg.xyi.is_reference() {
        bits |= BIT_XYI;
    }
    if cfg.ig.is_reference() {
        bits |= BIT_IG;
    }
    if cfg.precompute.is_reference() {
        bits |= BIT_PRECOMPUTE;
    }
    bits
}

fn from_bits(bits: u8) -> EngineConfig {
    let sel = |bit: u8| {
        if bits & bit != 0 {
            EngineSel::Reference
        } else {
            EngineSel::Live
        }
    };
    EngineConfig {
        pr: sel(BIT_PR),
        xyi: sel(BIT_XYI),
        ig: sel(BIT_IG),
        precompute: sel(BIT_PRECOMPUTE),
    }
}

/// Replaces the process-default engine config — the fallback used by a
/// [`RouteScratch`](crate::RouteScratch) built without an explicit config
/// ([`RouteScratch::new`](crate::RouteScratch::new)).
///
/// Prefer passing an [`EngineConfig`] explicitly; this exists so the
/// deprecated per-subsystem `set_implementation` shims keep their old
/// process-global semantics during migration.
pub fn set_process_default(cfg: EngineConfig) {
    PROCESS_DEFAULT.store(to_bits(cfg), Ordering::Relaxed);
}

/// The current process-default engine config (all-`Live` unless changed).
pub fn process_default() -> EngineConfig {
    from_bits(PROCESS_DEFAULT.load(Ordering::Relaxed))
}

/// Updates one subsystem bit of the process default atomically — the
/// implementation behind the deprecated per-subsystem shims.
pub(crate) fn set_process_bit(which: ProcessBit, sel: EngineSel) {
    let bit = match which {
        ProcessBit::Pr => BIT_PR,
        ProcessBit::Xyi => BIT_XYI,
        ProcessBit::Ig => BIT_IG,
        ProcessBit::Precompute => BIT_PRECOMPUTE,
    };
    if sel.is_reference() {
        PROCESS_DEFAULT.fetch_or(bit, Ordering::Relaxed);
    } else {
        PROCESS_DEFAULT.fetch_and(!bit, Ordering::Relaxed);
    }
}

/// Subsystem addressed by [`set_process_bit`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum ProcessBit {
    Pr,
    Xyi,
    Ig,
    Precompute,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_live() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg, EngineConfig::LIVE);
        assert!(!cfg.pr.is_reference());
        assert!(!cfg.precompute.is_reference());
    }

    #[test]
    fn combinators_replace_one_subsystem() {
        let cfg = EngineConfig::LIVE.with_ig(EngineSel::Reference);
        assert_eq!(cfg.ig, EngineSel::Reference);
        assert_eq!(cfg.pr, EngineSel::Live);
        assert_eq!(cfg.xyi, EngineSel::Live);
        assert_eq!(cfg.precompute, EngineSel::Live);
    }

    #[test]
    fn bitmask_round_trips_every_config() {
        for bits in 0..16u8 {
            assert_eq!(to_bits(from_bits(bits)), bits);
        }
        assert_eq!(to_bits(EngineConfig::LIVE), 0);
        assert_eq!(to_bits(EngineConfig::REFERENCE), 0b1111);
    }

    #[test]
    fn process_default_round_trips() {
        // Serialized on this test alone: nothing else in the crate's test
        // binary writes the process default (the engine tests all pass
        // explicit configs).
        assert_eq!(process_default(), EngineConfig::LIVE);
        let mixed = EngineConfig::LIVE.with_xyi(EngineSel::Reference);
        set_process_default(mixed);
        assert_eq!(process_default(), mixed);
        set_process_bit(ProcessBit::Pr, EngineSel::Reference);
        assert_eq!(
            process_default(),
            mixed.with_pr(EngineSel::Reference),
            "single-bit update must preserve the other bits"
        );
        set_process_default(EngineConfig::LIVE);
        assert_eq!(process_default(), EngineConfig::LIVE);
    }
}
