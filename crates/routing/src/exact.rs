//! Exact optimal single-path (1-MP) routing by branch-and-bound.
//!
//! The problem is NP-complete (Theorem 3), so this solver only targets
//! small instances — the paper's future-work item "compute the optimal
//! solution for small problem instances, so that we could give an insight
//! on the absolute performance of our heuristics". It enumerates the
//! Manhattan paths of each communication depth-first (largest weight
//! first), prunes on the monotone surrogate cost, and respects link
//! capacities exactly.

use crate::comm::CommSet;
use crate::heuristic::surrogate_link_cost;
use crate::routing::Routing;
use pamr_mesh::{LoadMap, Path};
use pamr_power::PowerModel;

/// The search budget was exhausted before the search space was covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded;

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "branch-and-bound node budget exceeded")
    }
}

impl std::error::Error for BudgetExceeded {}

struct Search<'a> {
    cs: &'a CommSet,
    model: &'a PowerModel,
    order: Vec<usize>,
    /// Pre-enumerated Manhattan paths per communication (in `order`).
    paths: Vec<Vec<Path>>,
    loads: LoadMap,
    cost: f64,
    best_cost: f64,
    best: Option<Vec<Path>>,
    chosen: Vec<usize>,
    nodes: u64,
    budget: u64,
}

impl Search<'_> {
    fn dfs(&mut self, depth: usize) -> Result<(), BudgetExceeded> {
        if depth == self.order.len() {
            // All communications placed; feasibility is implied because the
            // surrogate cost of any overloaded link exceeds any feasible
            // total, and we only record strictly better costs.
            if self.cost < self.best_cost {
                self.best_cost = self.cost;
                let mut paths: Vec<Path> =
                    vec![Path::from_moves(pamr_mesh::Coord::new(0, 0), vec![]); self.order.len()];
                for (d, &i) in self.order.iter().enumerate() {
                    paths[i] = self.paths[d][self.chosen[d]].clone();
                }
                self.best = Some(paths);
            }
            return Ok(());
        }
        let mesh = self.cs.mesh();
        let weight = self.cs.comms()[self.order[depth]].weight;
        for pi in 0..self.paths[depth].len() {
            self.nodes += 1;
            if self.nodes > self.budget {
                return Err(BudgetExceeded);
            }
            // Apply the path, tracking the surrogate-cost delta.
            let mut delta = 0.0;
            let path = self.paths[depth][pi].clone();
            for l in path.links(mesh) {
                let load = self.loads.get(l);
                delta += surrogate_link_cost(self.model, load + weight)
                    - surrogate_link_cost(self.model, load);
                self.loads.add(l, weight);
            }
            self.cost += delta;
            self.chosen[depth] = pi;
            // Adding traffic never lowers any link's cost, so the current
            // cost is a valid lower bound for the subtree.
            if self.cost < self.best_cost {
                self.dfs(depth + 1)?;
            }
            // Undo.
            self.cost -= delta;
            for l in path.links(mesh) {
                self.loads.add(l, -weight);
            }
        }
        Ok(())
    }
}

/// Finds the optimal single-path routing (minimum total power subject to
/// the link bandwidths), or `None` when no feasible 1-MP routing exists.
///
/// `node_budget` bounds the number of branch-and-bound nodes explored;
/// exceeding it returns `Err(BudgetExceeded)`.
pub fn optimal_single_path(
    cs: &CommSet,
    model: &PowerModel,
    node_budget: u64,
) -> Result<Option<(Routing, f64)>, BudgetExceeded> {
    let order = cs.by_decreasing_weight();
    let paths: Vec<Vec<Path>> = order
        .iter()
        .map(|&i| {
            let c = &cs.comms()[i];
            Path::enumerate_all(cs.mesh(), c.src, c.snk)
        })
        .collect();
    let mut search = Search {
        cs,
        model,
        chosen: vec![0; order.len()],
        paths,
        order,
        loads: LoadMap::new(cs.mesh()),
        cost: 0.0,
        // Any feasible routing costs less than one overloaded link.
        best_cost: crate::heuristic::SURROGATE_PENALTY,
        best: None,
        nodes: 0,
        budget: node_budget,
    };
    search.dfs(0)?;
    Ok(search.best.map(|paths| {
        let routing = Routing::single(cs, paths);
        let power = routing
            .power(cs, model)
            .expect("optimal routing must be feasible")
            .total();
        (routing, power)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::heuristic::Best;
    use pamr_mesh::{Coord, Mesh};

    #[test]
    fn exact_matches_fig2_single_path_optimum() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let (routing, power) = optimal_single_path(&cs, &model, 1 << 20).unwrap().unwrap();
        assert!((power - 56.0).abs() < 1e-9);
        assert!(routing.is_structurally_valid(&cs, 1));
    }

    #[test]
    fn exact_detects_infeasible_instances() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(1, 1), 5.0)],
        );
        let model = PowerModel::fig2(); // BW = 4 < 5
        assert!(optimal_single_path(&cs, &model, 1 << 20).unwrap().is_none());
    }

    #[test]
    fn exact_budget_is_enforced() {
        let mesh = Mesh::new(4, 4);
        let comms = (0..6)
            .map(|_| Comm::new(Coord::new(0, 0), Coord::new(3, 3), 1.0))
            .collect();
        let cs = CommSet::new(mesh, comms);
        let model = PowerModel::theory(3.0);
        assert_eq!(
            optimal_single_path(&cs, &model, 10),
            Err(BudgetExceeded).map(|_: ()| None)
        );
    }

    #[test]
    fn heuristics_never_beat_exact() {
        let mesh = Mesh::new(3, 3);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(2, 2), 2.0),
                Comm::new(Coord::new(0, 2), Coord::new(2, 0), 1.5),
                Comm::new(Coord::new(1, 0), Coord::new(1, 2), 1.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let (_, opt) = optimal_single_path(&cs, &model, 1 << 22).unwrap().unwrap();
        for kind in crate::heuristic::HeuristicKind::ALL {
            let r = kind.route(&cs, &model);
            if let Ok(p) = r.power(&cs, &model) {
                assert!(
                    p.total() + 1e-9 >= opt,
                    "{kind} ({}) beat the optimum ({opt})",
                    p.total()
                );
            }
        }
        // And BEST is bounded below by the optimum too.
        if let Some(p) = Best::default().route(&cs, &model).power {
            assert!(p + 1e-9 >= opt);
        }
    }

    #[test]
    fn exact_uses_capacity_to_force_separation() {
        // Two weight-3 flows, BW 4: stacked they overload, so the optimum
        // must separate them; power = 2·(3³+3³)... = 108? Each path has 2
        // links at load 3 → 4·27 = 108.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let (routing, power) = optimal_single_path(&cs, &model, 1 << 16).unwrap().unwrap();
        assert!((power - 108.0).abs() < 1e-9);
        assert!(routing.is_feasible(&cs, &model));
    }
}
