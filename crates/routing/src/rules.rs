//! The oblivious baseline routings: XY and YX (§3.3).

use crate::comm::CommSet;
use crate::routing::Routing;
use pamr_mesh::Path;

/// XY routing: every communication goes **horizontally first, then
/// vertically** — "the most natural and widely used algorithm" the paper
/// compares against (§1).
pub fn xy_routing(cs: &CommSet) -> Routing {
    Routing::single(
        cs,
        cs.comms().iter().map(|c| Path::xy(c.src, c.snk)).collect(),
    )
}

/// YX routing: vertically first, then horizontally (used by the Lemma 2
/// worst-case construction).
pub fn yx_routing(cs: &CommSet) -> Routing {
    Routing::single(
        cs,
        cs.comms().iter().map(|c| Path::yx(c.src, c.snk)).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use pamr_mesh::{Coord, Mesh};

    #[test]
    fn xy_paths_have_at_most_one_bend() {
        let mesh = Mesh::new(5, 5);
        let comms = vec![
            Comm::new(Coord::new(0, 0), Coord::new(4, 4), 1.0),
            Comm::new(Coord::new(4, 0), Coord::new(0, 4), 2.0),
            Comm::new(Coord::new(2, 2), Coord::new(2, 2), 3.0),
            Comm::new(Coord::new(3, 3), Coord::new(0, 0), 4.0),
        ];
        let cs = CommSet::new(mesh, comms);
        for r in [xy_routing(&cs), yx_routing(&cs)] {
            assert!(r.is_structurally_valid(&cs, 1));
            for i in 0..cs.len() {
                assert!(r.path(i).bends() <= 1);
            }
        }
    }

    #[test]
    fn xy_first_move_is_horizontal() {
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(3, 3), 1.0)],
        );
        let xy = xy_routing(&cs);
        assert!(xy.path(0).moves()[0].is_horizontal());
        let yx = yx_routing(&cs);
        assert!(yx.path(0).moves()[0].is_vertical());
    }
}
