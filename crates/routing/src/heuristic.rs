//! The heuristic interface, the surrogate cost used during construction,
//! and the BEST portfolio (§5–§6).

use crate::comm::CommSet;
use crate::greedy::SimpleGreedy;
use crate::ig::ImprovedGreedy;
use crate::pr::PathRemover;
use crate::routing::Routing;
use crate::rules::xy_routing;
use crate::scratch::RouteScratch;
use crate::two_bend::TwoBend;
use crate::xyi::XyImprover;
use pamr_power::PowerModel;
use serde::{Deserialize, Serialize};

/// Cost assigned to one unit of capacity overflow by
/// [`surrogate_link_cost`]. Chosen so that any overloaded link dominates
/// every feasible configuration's power, while still ranking "less
/// overloaded" below "more overloaded" (which lets XYI repair instances on
/// which plain XY routing fails).
pub const SURROGATE_PENALTY: f64 = 1e12;

/// The cost a heuristic sees for a link carrying `load`: the model's power
/// when feasible, and a huge load-increasing penalty when the load exceeds
/// the maximum bandwidth.
///
/// Heuristics minimise this surrogate so that (a) among feasible solutions
/// they minimise true power, and (b) when forced into infeasibility they
/// still reduce the amount of overflow, maximising the chance that later
/// repair steps (XYI) find a feasible solution.
pub fn surrogate_link_cost(model: &PowerModel, load: f64) -> f64 {
    // Hypothetical loads can dip epsilon-below zero through floating-point
    // cancellation (e.g. XYI evaluating "this link without that flow").
    let load = load.max(0.0);
    match model.link_power(load) {
        Ok(p) => p,
        Err(_) => SURROGATE_PENALTY * (1.0 + load / model.capacity),
    }
}

/// One surrogate cost query, answered from the precomputed per-level
/// [`CostLadder`](crate::precompute::CostLadder) when the cached engine
/// path customized one for this model (bit-identical by construction), and
/// by evaluating the power fit through [`surrogate_link_cost`] otherwise —
/// the literal pre-split path.
#[inline]
pub(crate) fn link_cost(
    model: &PowerModel,
    ladder: Option<&crate::precompute::CostLadder>,
    load: f64,
) -> f64 {
    match ladder {
        Some(l) => l.cost(load),
        None => surrogate_link_cost(model, load),
    }
}

/// A single-path routing heuristic (§5). All heuristics are deterministic;
/// given the same instance and model they produce the same routing.
pub trait Heuristic {
    /// Short display name used in tables ("XY", "SG", ...).
    fn name(&self) -> &'static str;

    /// Routes the instance. The returned routing is always structurally
    /// valid; it may still be *infeasible* (some link over capacity), in
    /// which case the heuristic is counted as failed on this instance.
    fn route(&self, cs: &CommSet, model: &PowerModel) -> Routing {
        self.route_with(cs, model, &mut RouteScratch::new())
    }

    /// Routes the instance reusing `scratch`'s buffers. The result is
    /// bit-identical to [`Heuristic::route`]; campaign workers call this to
    /// keep the per-trial hot path allocation-free.
    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing;
}

/// Identifier for the six routing policies compared in §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeuristicKind {
    /// Baseline XY routing.
    Xy,
    /// Simple greedy (§5.1).
    Sg,
    /// Improved greedy (§5.2).
    Ig,
    /// Two-bend (§5.3).
    Tb,
    /// XY improver (§5.4).
    Xyi,
    /// Path remover (§5.5).
    Pr,
}

impl HeuristicKind {
    /// The six policies in the paper's presentation order.
    pub const ALL: [HeuristicKind; 6] = [
        HeuristicKind::Xy,
        HeuristicKind::Sg,
        HeuristicKind::Ig,
        HeuristicKind::Tb,
        HeuristicKind::Xyi,
        HeuristicKind::Pr,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            HeuristicKind::Xy => "XY",
            HeuristicKind::Sg => "SG",
            HeuristicKind::Ig => "IG",
            HeuristicKind::Tb => "TB",
            HeuristicKind::Xyi => "XYI",
            HeuristicKind::Pr => "PR",
        }
    }

    /// Runs this policy on an instance.
    pub fn route(&self, cs: &CommSet, model: &PowerModel) -> Routing {
        self.route_with(cs, model, &mut RouteScratch::new())
    }

    /// Runs this policy reusing `scratch`'s buffers (same result as
    /// [`HeuristicKind::route`], without the per-call allocations).
    pub fn route_with(
        &self,
        cs: &CommSet,
        model: &PowerModel,
        scratch: &mut RouteScratch,
    ) -> Routing {
        match self {
            HeuristicKind::Xy => xy_routing(cs),
            HeuristicKind::Sg => SimpleGreedy::default().route_with(cs, model, scratch),
            HeuristicKind::Ig => ImprovedGreedy::default().route_with(cs, model, scratch),
            HeuristicKind::Tb => TwoBend::default().route_with(cs, model, scratch),
            HeuristicKind::Xyi => XyImprover::default().route_with(cs, model, scratch),
            HeuristicKind::Pr => PathRemover.route_with(cs, model, scratch),
        }
    }
}

impl std::fmt::Display for HeuristicKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The virtual **BEST** heuristic of §6: run a portfolio and keep the
/// feasible routing of smallest power (`None` when every member fails).
#[derive(Debug, Clone)]
pub struct Best {
    portfolio: Vec<HeuristicKind>,
}

impl Default for Best {
    fn default() -> Self {
        Best {
            portfolio: HeuristicKind::ALL.to_vec(),
        }
    }
}

impl Best {
    /// BEST over a custom portfolio.
    pub fn of(portfolio: Vec<HeuristicKind>) -> Self {
        assert!(!portfolio.is_empty());
        Best { portfolio }
    }

    /// The portfolio members.
    pub fn portfolio(&self) -> &[HeuristicKind] {
        &self.portfolio
    }

    /// Runs every member and returns the best feasible `(kind, routing,
    /// power)`, or `None` if all members fail.
    pub fn route(&self, cs: &CommSet, model: &PowerModel) -> Option<(HeuristicKind, Routing, f64)> {
        let mut scratch = RouteScratch::new();
        let mut best: Option<(HeuristicKind, Routing, f64)> = None;
        for &kind in &self.portfolio {
            let routing = kind.route_with(cs, model, &mut scratch);
            if let Ok(p) = routing.power(cs, model) {
                let total = p.total();
                if best.as_ref().is_none_or(|(_, _, bp)| total < *bp) {
                    best = Some((kind, routing, total));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use pamr_mesh::{Coord, Mesh};

    #[test]
    fn surrogate_matches_power_when_feasible() {
        let model = PowerModel::fig2();
        assert_eq!(surrogate_link_cost(&model, 0.0), 0.0);
        assert!((surrogate_link_cost(&model, 2.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn surrogate_penalises_overflow_increasingly() {
        let model = PowerModel::fig2(); // BW = 4
        let a = surrogate_link_cost(&model, 4.5);
        let b = surrogate_link_cost(&model, 6.0);
        assert!(a >= SURROGATE_PENALTY);
        assert!(b > a, "more overflow must cost more");
        // Any overflow dominates any feasible power.
        assert!(a > surrogate_link_cost(&model, 4.0));
    }

    #[test]
    fn kind_names() {
        let names: Vec<_> = HeuristicKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["XY", "SG", "IG", "TB", "XYI", "PR"]);
    }

    #[test]
    fn best_picks_minimum_power_member() {
        // On the Fig. 2 instance XY is feasible (exactly at capacity) but
        // Manhattan heuristics find strictly better routings.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let (kind, routing, power) = Best::default().route(&cs, &model).unwrap();
        assert!(routing.is_structurally_valid(&cs, 1));
        // Best single-path power on this instance is 56 (Fig. 2b).
        assert!((power - 56.0).abs() < 1e-9, "got {power} from {kind}");
        assert_ne!(kind, HeuristicKind::Xy);
    }

    #[test]
    fn best_none_when_instance_impossible() {
        // Two weight-3 communications between the same poles with BW = 4:
        // any single-path routing overloads... actually 1-MP can separate
        // them (XY + YX). Force failure with BW = 2 so even one comm alone
        // overloads every path.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0)],
        );
        let model = PowerModel::continuous(0.0, 1.0, 3.0, 2.0);
        assert!(Best::default().route(&cs, &model).is_none());
    }
}
