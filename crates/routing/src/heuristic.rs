//! The heuristic interface, the surrogate cost used during construction,
//! and the BEST portfolio (§5–§6).

use crate::comm::CommSet;
use crate::greedy::SimpleGreedy;
use crate::ig::ImprovedGreedy;
use crate::pr::PathRemover;
use crate::routing::Routing;
use crate::rules::xy_routing;
use crate::scratch::RouteScratch;
use crate::two_bend::TwoBend;
use crate::xyi::XyImprover;
use pamr_power::PowerModel;
use serde::{Deserialize, Serialize};

/// Cost assigned to one unit of capacity overflow by
/// [`surrogate_link_cost`]. Chosen so that any overloaded link dominates
/// every feasible configuration's power, while still ranking "less
/// overloaded" below "more overloaded" (which lets XYI repair instances on
/// which plain XY routing fails).
pub const SURROGATE_PENALTY: f64 = 1e12;

/// The cost a heuristic sees for a link carrying `load`: the model's power
/// when feasible, and a huge load-increasing penalty when the load exceeds
/// the maximum bandwidth.
///
/// Heuristics minimise this surrogate so that (a) among feasible solutions
/// they minimise true power, and (b) when forced into infeasibility they
/// still reduce the amount of overflow, maximising the chance that later
/// repair steps (XYI) find a feasible solution.
pub fn surrogate_link_cost(model: &PowerModel, load: f64) -> f64 {
    // Hypothetical loads can dip epsilon-below zero through floating-point
    // cancellation (e.g. XYI evaluating "this link without that flow").
    let load = load.max(0.0);
    match model.link_power(load) {
        Ok(p) => p,
        Err(_) => SURROGATE_PENALTY * (1.0 + load / model.capacity),
    }
}

/// One surrogate cost query, answered from the precomputed per-level
/// [`CostLadder`](crate::precompute::CostLadder) when the cached engine
/// path customized one for this model (bit-identical by construction), and
/// by evaluating the power fit through [`surrogate_link_cost`] otherwise —
/// the literal pre-split path.
#[inline]
pub(crate) fn link_cost(
    model: &PowerModel,
    ladder: Option<&crate::precompute::CostLadder>,
    load: f64,
) -> f64 {
    match ladder {
        Some(l) => l.cost(load),
        None => surrogate_link_cost(model, load),
    }
}

/// A single-path routing heuristic (§5). All heuristics are deterministic;
/// given the same instance and model they produce the same routing.
pub trait Heuristic {
    /// Short display name used in tables ("XY", "SG", ...).
    fn name(&self) -> &'static str;

    /// Routes the instance. The returned routing is always structurally
    /// valid; it may still be *infeasible* (some link over capacity), in
    /// which case the heuristic is counted as failed on this instance.
    fn route(&self, cs: &CommSet, model: &PowerModel) -> Routing {
        self.route_with(cs, model, &mut RouteScratch::new())
    }

    /// Routes the instance reusing `scratch`'s buffers. The result is
    /// bit-identical to [`Heuristic::route`]; campaign workers call this to
    /// keep the per-trial hot path allocation-free.
    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing;
}

/// Identifier for the six routing policies compared in §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeuristicKind {
    /// Baseline XY routing.
    Xy,
    /// Simple greedy (§5.1).
    Sg,
    /// Improved greedy (§5.2).
    Ig,
    /// Two-bend (§5.3).
    Tb,
    /// XY improver (§5.4).
    Xyi,
    /// Path remover (§5.5).
    Pr,
}

impl HeuristicKind {
    /// The six policies in the paper's presentation order.
    pub const ALL: [HeuristicKind; 6] = [
        HeuristicKind::Xy,
        HeuristicKind::Sg,
        HeuristicKind::Ig,
        HeuristicKind::Tb,
        HeuristicKind::Xyi,
        HeuristicKind::Pr,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            HeuristicKind::Xy => "XY",
            HeuristicKind::Sg => "SG",
            HeuristicKind::Ig => "IG",
            HeuristicKind::Tb => "TB",
            HeuristicKind::Xyi => "XYI",
            HeuristicKind::Pr => "PR",
        }
    }

    /// Runs this policy on an instance.
    pub fn route(&self, cs: &CommSet, model: &PowerModel) -> Routing {
        self.route_with(cs, model, &mut RouteScratch::new())
    }

    /// Runs this policy reusing `scratch`'s buffers (same result as
    /// [`HeuristicKind::route`], without the per-call allocations).
    pub fn route_with(
        &self,
        cs: &CommSet,
        model: &PowerModel,
        scratch: &mut RouteScratch,
    ) -> Routing {
        match self {
            HeuristicKind::Xy => xy_routing(cs),
            HeuristicKind::Sg => SimpleGreedy::default().route_with(cs, model, scratch),
            HeuristicKind::Ig => ImprovedGreedy::default().route_with(cs, model, scratch),
            HeuristicKind::Tb => TwoBend::default().route_with(cs, model, scratch),
            HeuristicKind::Xyi => XyImprover::default().route_with(cs, model, scratch),
            HeuristicKind::Pr => PathRemover.route_with(cs, model, scratch),
        }
    }
}

impl std::fmt::Display for HeuristicKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned by [`Best::of`] when given an empty portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyPortfolio;

impl std::fmt::Display for EmptyPortfolio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("a BEST portfolio needs at least one heuristic")
    }
}

impl std::error::Error for EmptyPortfolio {}

/// The outcome of one [`Best::route`] call: which portfolio member won,
/// its routing, and its power.
///
/// The winner is the feasible member of smallest power. When *no* member
/// is feasible, `kind`/`routing` are the first portfolio member's attempt
/// (XY for the default portfolio) and `power` is `None` — so callers
/// always get a structurally valid routing to display, and feasibility is
/// one `power.is_some()` check instead of an `unwrap` on the whole result.
#[derive(Debug, Clone)]
pub struct BestRoute {
    /// The winning policy (or the first member when every member failed).
    pub kind: HeuristicKind,
    /// The winner's routing (always structurally valid, infeasible iff
    /// `power` is `None`).
    pub routing: Routing,
    /// Total power of the winning routing; `None` when every portfolio
    /// member produced an infeasible routing.
    pub power: Option<f64>,
}

impl BestRoute {
    /// True iff some portfolio member produced a feasible routing.
    #[inline]
    pub fn is_feasible(&self) -> bool {
        self.power.is_some()
    }
}

/// The virtual **BEST** heuristic of §6: run a portfolio and keep the
/// feasible routing of smallest power.
///
/// Non-empty by construction: [`Best::of`] rejects an empty portfolio, so
/// [`Best::route`] can always return a [`BestRoute`] (falling back to the
/// first member's attempt when nothing is feasible) instead of an
/// `Option` every caller must unwrap.
#[derive(Debug, Clone)]
pub struct Best {
    portfolio: Vec<HeuristicKind>,
}

impl Default for Best {
    fn default() -> Self {
        Best {
            portfolio: HeuristicKind::ALL.to_vec(),
        }
    }
}

impl Best {
    /// BEST over a custom portfolio. Fails on an empty portfolio — the
    /// only way to build a `Best`, so every constructed value can route.
    pub fn of(portfolio: Vec<HeuristicKind>) -> Result<Best, EmptyPortfolio> {
        if portfolio.is_empty() {
            return Err(EmptyPortfolio);
        }
        Ok(Best { portfolio })
    }

    /// The portfolio members (never empty).
    pub fn portfolio(&self) -> &[HeuristicKind] {
        &self.portfolio
    }

    /// Runs every member and returns the winner (see [`BestRoute`]).
    pub fn route(&self, cs: &CommSet, model: &PowerModel) -> BestRoute {
        self.route_with(cs, model, &mut RouteScratch::new())
    }

    /// [`Best::route`] reusing `scratch`'s buffers (and dispatching on its
    /// [`EngineConfig`](crate::engine::EngineConfig)).
    pub fn route_with(
        &self,
        cs: &CommSet,
        model: &PowerModel,
        scratch: &mut RouteScratch,
    ) -> BestRoute {
        let mut best: Option<(HeuristicKind, Routing, f64)> = None;
        let mut fallback: Option<(HeuristicKind, Routing)> = None;
        for &kind in &self.portfolio {
            let routing = kind.route_with(cs, model, scratch);
            match routing.power(cs, model) {
                Ok(p) => {
                    let total = p.total();
                    if best.as_ref().is_none_or(|(_, _, bp)| total < *bp) {
                        best = Some((kind, routing, total));
                    }
                }
                Err(_) => {
                    if fallback.is_none() {
                        fallback = Some((kind, routing));
                    }
                }
            }
        }
        match best {
            Some((kind, routing, power)) => BestRoute {
                kind,
                routing,
                power: Some(power),
            },
            None => {
                // Every member failed, so the first member is in `fallback`
                // (the portfolio is non-empty by construction).
                let (kind, routing) = fallback.expect("non-empty portfolio");
                BestRoute {
                    kind,
                    routing,
                    power: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use pamr_mesh::{Coord, Mesh};

    #[test]
    fn surrogate_matches_power_when_feasible() {
        let model = PowerModel::fig2();
        assert_eq!(surrogate_link_cost(&model, 0.0), 0.0);
        assert!((surrogate_link_cost(&model, 2.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn surrogate_penalises_overflow_increasingly() {
        let model = PowerModel::fig2(); // BW = 4
        let a = surrogate_link_cost(&model, 4.5);
        let b = surrogate_link_cost(&model, 6.0);
        assert!(a >= SURROGATE_PENALTY);
        assert!(b > a, "more overflow must cost more");
        // Any overflow dominates any feasible power.
        assert!(a > surrogate_link_cost(&model, 4.0));
    }

    #[test]
    fn kind_names() {
        let names: Vec<_> = HeuristicKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["XY", "SG", "IG", "TB", "XYI", "PR"]);
    }

    #[test]
    fn best_picks_minimum_power_member() {
        // On the Fig. 2 instance XY is feasible (exactly at capacity) but
        // Manhattan heuristics find strictly better routings.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let best = Best::default().route(&cs, &model);
        assert!(best.routing.is_structurally_valid(&cs, 1));
        // Best single-path power on this instance is 56 (Fig. 2b).
        let power = best.power.expect("Fig. 2 instance is feasible");
        assert!(
            (power - 56.0).abs() < 1e-9,
            "got {power} from {}",
            best.kind
        );
        assert_ne!(best.kind, HeuristicKind::Xy);
    }

    #[test]
    fn best_reports_infeasible_with_a_displayable_fallback() {
        // BW = 2 and one weight-3 communication: every single path (and
        // hence every portfolio member) overloads some link. The result
        // still carries the first member's attempt for display.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0)],
        );
        let model = PowerModel::continuous(0.0, 1.0, 3.0, 2.0);
        let best = Best::default().route(&cs, &model);
        assert!(!best.is_feasible());
        assert_eq!(best.power, None);
        assert_eq!(best.kind, HeuristicKind::Xy, "fallback is the first member");
        assert!(best.routing.is_structurally_valid(&cs, 1));
    }

    #[test]
    fn best_of_rejects_an_empty_portfolio() {
        assert_eq!(Best::of(vec![]).unwrap_err(), EmptyPortfolio);
        let one = Best::of(vec![HeuristicKind::Pr]).unwrap();
        assert_eq!(one.portfolio(), [HeuristicKind::Pr]);
    }
}
