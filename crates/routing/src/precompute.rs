//! The two-phase **precompute / customize** split (beyond the paper).
//!
//! Every §6 campaign trial used to rebuild structures that depend only on
//! the mesh topology and the `(src, snk)` endpoint pair: [`Band`] geometry
//! (IG's ideal-sharing pass, PR's staircase), the per-diagonal useful-row
//! intervals PR's banded reachability starts from, and the XY seed paths
//! XYI improves. None of that depends on the communication *weights*, so —
//! following the metric-independent / metric-customization split of
//! customizable contraction hierarchies — the engines now consume it from
//! two phases:
//!
//! 1. **Precompute** ([`MeshPrecompute`]): per-mesh state built once and
//!    shared — a flat CSR-style out-link adjacency, plus an interner of
//!    per-`(src, snk)` [`EndpointTables`] (band, diagonal row intervals,
//!    Manhattan path count, XY seed path) behind `Arc`s, so every trial,
//!    heuristic and [`crate::session::RoutingSession`] touching the same
//!    endpoint pair shares one allocation.
//! 2. **Customize** ([`MeshPrecompute::customize`]): a cheap
//!    weight-dependent pass per [`CommSet`] that resolves each
//!    communication's tables and the decreasing-weight processing order
//!    into a [`CustomizedInstance`].
//!
//! The engines reach both through their [`crate::RouteScratch`], so the
//! `Heuristic::route_with` signature is unchanged; a scratch with no
//! attached precompute lazily builds one for the mesh it sees.
//!
//! **Bit-identity.** Cached tables are pure functions of `(mesh, src,
//! snk)` — the same values the per-trial rebuild computes — so routings
//! and load maps are bit-identical with the cache on or off. The literal
//! rebuild-per-trial path survives behind the `Reference` engine selection
//! (`EngineConfig::LIVE.with_precompute(EngineSel::Reference)`, mirroring
//! `pr`/`xyi`/`ig`; the deprecated [`set_implementation`] shim moves the
//! process default), and `tests/precompute_differential.rs` pins the
//! equivalence: identical routings, bit-identical loads, and a
//! byte-identical seeded §6.4 campaign report.
//!
//! ```
//! use pamr_routing::{MeshPrecompute, Comm, CommSet};
//! use pamr_mesh::{Coord, Mesh};
//! use std::sync::Arc;
//!
//! let mesh = Mesh::new(4, 4);
//! let pre = MeshPrecompute::new(mesh);
//!
//! // Interned endpoint tables: same (src, snk) ⇒ same allocation.
//! let a = pre.endpoint_tables(Coord::new(0, 0), Coord::new(2, 3));
//! let b = pre.endpoint_tables(Coord::new(0, 0), Coord::new(2, 3));
//! assert!(Arc::ptr_eq(&a, &b));
//! assert_eq!(a.path_count(), 10); // C(2+3, 2) Manhattan paths (Lemma 1)
//!
//! // The cheap weight-dependent phase: per-comm tables + processing order.
//! let cs = CommSet::new(
//!     mesh,
//!     vec![
//!         Comm::new(Coord::new(0, 0), Coord::new(2, 3), 1.0),
//!         Comm::new(Coord::new(3, 0), Coord::new(0, 3), 2.0),
//!     ],
//! );
//! let cust = pre.customize(&cs);
//! assert!(Arc::ptr_eq(cust.table(0), &a));
//! assert_eq!(cust.by_weight(), [1, 0]); // heaviest first
//! ```

use crate::comm::{Comm, CommSet, SortOrder};
use crate::engine::{self, EngineSel, ProcessBit};
use crate::heuristic::SURROGATE_PENALTY;
use pamr_mesh::{Band, Coord, LinkId, Mesh, Path, Step};
use pamr_power::model::CAPACITY_EPS;
use pamr_power::{FrequencyScale, PowerModel};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Which table-sourcing strategy backs the routing engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecomputeImpl {
    /// Interned per-`(src, snk)` tables shared across trials, heuristics
    /// and sessions (the default).
    Cached,
    /// The literal rebuild-per-trial path: every `route_with` call
    /// reconstructs bands, intervals and seed paths from scratch — the
    /// differential oracle's side of `tests/precompute_differential.rs`.
    Rebuild,
}

/// Sets the *process-default* table-sourcing strategy.
///
/// Deprecated shim over [`engine::EngineConfig`]: it updates only the
/// fallback used by scratches built without an explicit config. Pass
/// `RouteScratch::with_engine(EngineConfig::LIVE.with_precompute(…))`
/// instead.
#[deprecated(
    since = "0.10.0",
    note = "pass an explicit engine::EngineConfig via RouteScratch::with_engine"
)]
pub fn set_implementation(imp: PrecomputeImpl) {
    let sel = match imp {
        PrecomputeImpl::Cached => EngineSel::Live,
        PrecomputeImpl::Rebuild => EngineSel::Reference,
    };
    engine::set_process_bit(ProcessBit::Precompute, sel);
}

/// The *process-default* table-sourcing strategy (deprecated shim; a
/// scratch pinned by [`RouteScratch::with_engine`](crate::RouteScratch::with_engine)
/// ignores it).
#[deprecated(
    since = "0.10.0",
    note = "read the engine::EngineConfig carried by the RouteScratch instead"
)]
pub fn implementation() -> PrecomputeImpl {
    match engine::process_default().precompute {
        EngineSel::Live => PrecomputeImpl::Cached,
        EngineSel::Reference => PrecomputeImpl::Rebuild,
    }
}

/// The metric-independent tables of one `(src, snk)` endpoint pair:
/// everything the engines need that does not depend on communication
/// weights.
///
/// Interned by [`MeshPrecompute::endpoint_tables`] behind an `Arc`, so
/// the thousands of trials of a campaign sweep point (and the requests of
/// a `pamr serve` session) share one allocation per distinct pair.
#[derive(Debug, Clone)]
pub struct EndpointTables {
    src: Coord,
    snk: Coord,
    /// The staircase band (§3.3): per-diagonal useful-link groups.
    band: Arc<Band>,
    /// Per-diagonal inclusive useful-row intervals, indexed by the
    /// band-relative diagonal `t ∈ 0..=band.len()` — the start state of
    /// PR's banded reachability ([`Band::diag_rows`] values).
    diag_rows: Arc<Vec<(usize, usize)>>,
    /// Number of Manhattan paths, `C(Δu + Δv, Δu)` (Lemma 1).
    path_count: u128,
    /// The XY (row-first) seed path XYI starts from.
    xy: Path,
    /// Flat IG support: every band link as `(link, endpoint, endpoint)`,
    /// group-major with links **id-ascending within each group**, so the
    /// flat position is a drop-in tie-breaker for the `(load bits, link
    /// id)` sort key and the endpoints need no per-trial mesh lookups.
    ig_flat: Vec<(LinkId, Coord, Coord)>,
    /// Group offsets into `ig_flat` (`band.len() + 1` entries).
    ig_off: Vec<u32>,
    /// Per-group `group.len() as f64` — the Figure 3 ideal-share divisor,
    /// converted once.
    ig_div: Vec<f64>,
}

impl EndpointTables {
    /// Computes the tables from scratch — exactly the values the
    /// per-trial rebuild path computes, which is what makes caching them
    /// bit-transparent.
    pub fn build(mesh: &Mesh, src: Coord, snk: Coord) -> EndpointTables {
        let band = Band::new(mesh, src, snk);
        let diag_rows = (0..=band.len()).map(|t| band.diag_rows(mesh, t)).collect();
        let mut ig_flat = Vec::new();
        let mut ig_off = Vec::with_capacity(band.len() + 1);
        let mut ig_div = Vec::with_capacity(band.len());
        ig_off.push(0u32);
        for g in band.groups() {
            let mut ids = g.to_vec();
            ids.sort_unstable();
            ig_flat.extend(ids.into_iter().map(|l| {
                let (a, b) = mesh.link_endpoints(l);
                (l, a, b)
            }));
            ig_off.push(ig_flat.len() as u32);
            ig_div.push(g.len() as f64);
        }
        EndpointTables {
            src,
            snk,
            band: Arc::new(band),
            diag_rows: Arc::new(diag_rows),
            path_count: Path::count(src, snk),
            xy: Path::xy(src, snk),
            ig_flat,
            ig_off,
            ig_div,
        }
    }

    /// The source core.
    pub fn src(&self) -> Coord {
        self.src
    }

    /// The sink core.
    pub fn snk(&self) -> Coord {
        self.snk
    }

    /// The staircase band of the pair.
    pub fn band(&self) -> &Band {
        &self.band
    }

    /// The band behind its shared handle (cloned by PR's per-comm state).
    pub fn band_arc(&self) -> &Arc<Band> {
        &self.band
    }

    /// Per-diagonal inclusive `(low, high)` useful-row intervals,
    /// `diag_rows()[t]` = [`Band::diag_rows`]`(mesh, t)`.
    pub fn diag_rows(&self) -> &[(usize, usize)] {
        &self.diag_rows
    }

    /// The row intervals behind their shared handle.
    pub fn diag_rows_arc(&self) -> &Arc<Vec<(usize, usize)>> {
        &self.diag_rows
    }

    /// Number of Manhattan `src → snk` paths (Lemma 1's
    /// `C(p + q − 2, p − 1)` on the band's bounding rectangle).
    pub fn path_count(&self) -> u128 {
        self.path_count
    }

    /// The XY (row-first) path of the pair — the seed every improvement
    /// engine starts from.
    pub fn xy(&self) -> &Path {
        &self.xy
    }

    /// Group `t`'s links as flat `(link, endpoint, endpoint)` entries,
    /// **id-ascending** (the [`Band::group`] slice re-sorted once at build
    /// time; same set of links, different order).
    pub fn ig_group(&self, t: usize) -> &[(LinkId, Coord, Coord)] {
        &self.ig_flat[self.ig_off[t] as usize..self.ig_off[t + 1] as usize]
    }

    /// Flat offset of group `t`'s first [`ig_group`](Self::ig_group) entry.
    pub fn ig_group_start(&self, t: usize) -> u32 {
        self.ig_off[t]
    }

    /// The whole flat link array, group-major ([`ig_group`](Self::ig_group)
    /// concatenated).
    pub fn ig_flat(&self) -> &[(LinkId, Coord, Coord)] {
        &self.ig_flat
    }

    /// Group `t`'s size as `f64` — exactly `band.group(t).len() as f64`,
    /// the ideal-share divisor of Figure 3.
    pub fn ig_div(&self, t: usize) -> f64 {
        self.ig_div[t]
    }
}

/// Phase-one state of one mesh: flat CSR link adjacency plus the
/// endpoint-tables interner. Built once per mesh (per sweep point, per
/// server) and shared via `Arc` clones; all methods take `&self`, so one
/// instance serves every campaign worker thread concurrently.
#[derive(Debug)]
pub struct MeshPrecompute {
    mesh: Mesh,
    /// CSR offsets: core `i`'s outgoing links are
    /// `out_links[first_out[i] .. first_out[i + 1]]`.
    first_out: Vec<u32>,
    /// Flat outgoing-link array, cores in [`Mesh::core_index`] order,
    /// links in [`Step::ALL`] order.
    out_links: Vec<LinkId>,
    /// Aligned with `out_links`: the head core (destination index) of each
    /// outgoing link — the `first_out`/`head` pair of a classic CSR graph,
    /// so neighbourhood walks read the next core straight from the arrays
    /// instead of re-deriving it from coordinates per step.
    heads: Vec<u32>,
    /// The `(src, snk) → tables` interner. Ordered map: never iterated on
    /// a report path today, but the interner is shared across sessions and
    /// an ordered debug dump costs nothing here (lookups dominate).
    tables: RwLock<BTreeMap<(Coord, Coord), Arc<EndpointTables>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MeshPrecompute {
    /// Builds the per-mesh state (adjacency only — endpoint tables are
    /// interned lazily on first use).
    ///
    /// ```
    /// use pamr_mesh::Mesh;
    /// use pamr_routing::MeshPrecompute;
    ///
    /// let mesh = Mesh::new(3, 3);
    /// let pre = MeshPrecompute::new(mesh);
    /// // A corner core has 2 outgoing links, an interior core 4.
    /// assert_eq!(pre.out_links(pamr_mesh::Coord::new(0, 0)).len(), 2);
    /// assert_eq!(pre.out_links(pamr_mesh::Coord::new(1, 1)).len(), 4);
    /// // The flat arrays cover every directed link exactly once.
    /// let total: usize = mesh.cores().map(|c| pre.out_links(c).len()).sum();
    /// assert_eq!(total, mesh.num_links());
    /// ```
    pub fn new(mesh: Mesh) -> MeshPrecompute {
        let mut first_out = Vec::with_capacity(mesh.num_cores() + 1);
        let mut out_links = Vec::with_capacity(mesh.num_links());
        let mut heads = Vec::with_capacity(mesh.num_links());
        first_out.push(0u32);
        for c in mesh.cores() {
            for s in Step::ALL {
                if let Some(l) = mesh.link_id(c, s) {
                    out_links.push(l);
                    heads.push(mesh.core_index(mesh.link_endpoints(l).1) as u32);
                }
            }
            first_out.push(out_links.len() as u32);
        }
        MeshPrecompute {
            mesh,
            first_out,
            out_links,
            heads,
            tables: RwLock::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The mesh this precompute describes.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The outgoing links of `core`, in [`Step::ALL`] order (CSR slice —
    /// no per-call allocation, the groundwork for large-mesh adjacency
    /// scans).
    pub fn out_links(&self, core: Coord) -> &[LinkId] {
        let i = self.mesh.core_index(core);
        let (lo, hi) = (self.first_out[i] as usize, self.first_out[i + 1] as usize);
        &self.out_links[lo..hi]
    }

    /// The head cores (as [`Mesh::core_index`] indices) of `core`'s
    /// outgoing links, aligned entry-for-entry with
    /// [`out_links`](Self::out_links) — `(link, head)` pairs come from
    /// zipping the two slices.
    ///
    /// ```
    /// use pamr_mesh::{Coord, Mesh};
    /// use pamr_routing::MeshPrecompute;
    ///
    /// let mesh = Mesh::new(3, 3);
    /// let pre = MeshPrecompute::new(mesh);
    /// for (l, &h) in pre.out_links(Coord::new(1, 1)).iter().zip(pre.out_heads(Coord::new(1, 1))) {
    ///     assert_eq!(mesh.core_index(mesh.link_endpoints(*l).1), h as usize);
    /// }
    /// ```
    pub fn out_heads(&self, core: Coord) -> &[u32] {
        let i = self.mesh.core_index(core);
        let (lo, hi) = (self.first_out[i] as usize, self.first_out[i + 1] as usize);
        &self.heads[lo..hi]
    }

    /// The interned tables of one endpoint pair: returns the shared
    /// allocation, building it on first request.
    ///
    /// Concurrent callers of a fresh pair may race to build it; the first
    /// insert wins and the content is deterministic either way.
    pub fn endpoint_tables(&self, src: Coord, snk: Coord) -> Arc<EndpointTables> {
        // A poisoned interner lock is recoverable: the map only ever holds
        // fully-built immutable tables (the insert below is the sole write,
        // and it cannot leave a partial entry), so a panic elsewhere does
        // not invalidate the cache.
        let tables = self.tables.read().unwrap_or_else(PoisonError::into_inner);
        if let Some(t) = tables.get(&(src, snk)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(t);
        }
        drop(tables);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(EndpointTables::build(&self.mesh, src, snk));
        let mut map = self.tables.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry((src, snk)).or_insert(built))
    }

    /// Phase two: resolves a weighted instance against the interner —
    /// per-communication tables plus the decreasing-weight processing
    /// order. Cheap relative to routing: one interner lookup per
    /// communication and one sort.
    pub fn customize(&self, cs: &CommSet) -> CustomizedInstance {
        assert_eq!(
            *cs.mesh(),
            self.mesh,
            "customize called with a CommSet from a different mesh"
        );
        // One read-lock pass resolves every already-interned pair (the
        // steady state of a campaign), with the hit counter batched;
        // only absent pairs fall back to the per-pair build path.
        let mut tables: Vec<Option<Arc<EndpointTables>>> = Vec::with_capacity(cs.len());
        {
            let map = self.tables.read().unwrap_or_else(PoisonError::into_inner);
            tables.extend(cs.comms().iter().map(|c| map.get(&(c.src, c.snk)).cloned()));
        }
        let hits = tables.iter().filter(|t| t.is_some()).count() as u64;
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        let tables = tables
            .into_iter()
            .zip(cs.comms())
            .map(|(t, c)| t.unwrap_or_else(|| self.endpoint_tables(c.src, c.snk)))
            .collect();
        CustomizedInstance {
            mesh: self.mesh,
            comms: cs.comms().to_vec(),
            tables,
            by_weight: cs.by_order(SortOrder::DecreasingWeight),
        }
    }

    /// Interner statistics: `(hits, misses)` of
    /// [`endpoint_tables`](Self::endpoint_tables) so far. Misses bound
    /// the number of distinct pairs seen.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// The metric-dependent half of customization: under a **discrete**
/// frequency-scaled model the surrogate link cost takes only one value per
/// frequency level, so the cached engine path evaluates the power fit once
/// per level up front and answers each per-hop cost query with a level
/// lookup instead of a `powf`.
///
/// Every stored power is [`surrogate_link_cost`]'s own expression evaluated
/// once, and the level search replicates the model's capacity slack, so
/// [`cost`](Self::cost) is **bit-identical** to calling the model — the
/// rebuild path never consults the ladder, and the differential oracle
/// pins the equivalence.
///
/// ```
/// use pamr_power::PowerModel;
/// use pamr_routing::{surrogate_link_cost, CostLadder};
///
/// let model = PowerModel::kim_horowitz();
/// let ladder = CostLadder::new(&model).expect("kim-horowitz is discrete");
/// // Bit-identical across idle, in-level, boundary and overload loads.
/// for load in [0.0, 1.0, 999.9, 1000.0, 2600.0, 3500.0, 9000.0] {
///     assert_eq!(
///         ladder.cost(load).to_bits(),
///         surrogate_link_cost(&model, load).to_bits(),
///     );
/// }
/// // Continuous models have no finite level set to tabulate.
/// assert!(CostLadder::new(&PowerModel::theory(3.0)).is_none());
/// ```
///
/// [`surrogate_link_cost`]: crate::heuristic::surrogate_link_cost
#[derive(Debug, Clone)]
pub struct CostLadder {
    /// The tabulated model — kept whole both as the validity fingerprint
    /// ([`matches`](Self::matches)) and for the overload penalty's
    /// capacity term.
    model: PowerModel,
    /// Ascending `(level, power)` pairs: the precomputed
    /// `P_leak + P_0 · (level · load_unit)^α` of each frequency level.
    steps: Vec<(f64, f64)>,
    /// The capacity slack of the model's level search
    /// (`capacity · CAPACITY_EPS`).
    slack: f64,
}

impl CostLadder {
    /// Tabulates `model`'s per-level link powers; `None` for continuous
    /// scaling, where the cost is a genuine function of the load and the
    /// callers keep evaluating the fit per query.
    pub fn new(model: &PowerModel) -> Option<CostLadder> {
        let FrequencyScale::Discrete(levels) = &model.scale else {
            return None;
        };
        let steps = levels
            .iter()
            .map(|&lv| {
                let p = model.p_leak + model.p0 * (lv * model.load_unit).powf(model.alpha);
                (lv, p)
            })
            .collect();
        Some(CostLadder {
            slack: model.capacity * CAPACITY_EPS,
            steps,
            model: model.clone(),
        })
    }

    /// Does the ladder tabulate exactly `model`?
    pub fn matches(&self, model: &PowerModel) -> bool {
        self.model == *model
    }

    /// The surrogate cost of one link carrying `load` — bit-identical to
    /// [`surrogate_link_cost`](crate::heuristic::surrogate_link_cost) on
    /// the tabulated model.
    #[inline]
    pub fn cost(&self, load: f64) -> f64 {
        // Mirrors surrogate_link_cost exactly: clamp the epsilon-negative
        // hypothetical loads, idle links are free, then the model's own
        // smallest-level-that-fits search with its capacity slack.
        let load = load.max(0.0);
        if load == 0.0 {
            return 0.0;
        }
        for &(lv, p) in &self.steps {
            if load <= lv + self.slack {
                return p;
            }
        }
        SURROGATE_PENALTY * (1.0 + load / self.model.capacity)
    }
}

/// The output of the weight-dependent customize phase: one routed
/// instance's endpoint tables and processing order, ready for the
/// engines. Validated against the `CommSet` it was built from (see
/// [`matches`](Self::matches)), so a stale instance is never consumed.
#[derive(Debug, Clone)]
pub struct CustomizedInstance {
    mesh: Mesh,
    comms: Vec<Comm>,
    tables: Vec<Arc<EndpointTables>>,
    by_weight: Vec<usize>,
}

impl CustomizedInstance {
    /// Does this instance describe exactly `cs`? (Same mesh, same
    /// communications in the same order.)
    pub fn matches(&self, cs: &CommSet) -> bool {
        self.mesh == *cs.mesh() && self.comms.as_slice() == cs.comms()
    }

    /// Number of communications.
    pub fn len(&self) -> usize {
        self.comms.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.comms.is_empty()
    }

    /// Tables of communication `i` (same indexing as the `CommSet`).
    pub fn table(&self, i: usize) -> &Arc<EndpointTables> {
        &self.tables[i]
    }

    /// All per-communication tables, in `CommSet` order.
    pub fn tables(&self) -> &[Arc<EndpointTables>] {
        &self.tables
    }

    /// Communication indices in decreasing-weight order (ties by index) —
    /// bit-identical to [`CommSet::by_order`] with
    /// [`SortOrder::DecreasingWeight`], because it *is* that call's
    /// cached result.
    pub fn by_weight(&self) -> &[usize] {
        &self.by_weight
    }

    /// The cached processing order for `order`, when one is cached
    /// (only the decreasing-weight order is; other orders return `None`
    /// and the caller sorts as before).
    pub fn order(&self, order: SortOrder) -> Option<&[usize]> {
        match order {
            SortOrder::DecreasingWeight => Some(&self.by_weight),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(5, 6)
    }

    #[test]
    fn csr_adjacency_matches_the_mesh() {
        let m = mesh();
        let pre = MeshPrecompute::new(m);
        let mut seen = Vec::new();
        for c in m.cores() {
            let out = pre.out_links(c);
            // Same links, same order, as querying the mesh directly.
            let direct: Vec<LinkId> = Step::ALL
                .into_iter()
                .filter_map(|s| m.link_id(c, s))
                .collect();
            assert_eq!(out, direct.as_slice(), "core {c}");
            for &l in out {
                let (from, _) = m.link_endpoints(l);
                assert_eq!(from, c);
            }
            seen.extend_from_slice(out);
        }
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), m.num_links());
    }

    #[test]
    fn endpoint_tables_are_interned() {
        let pre = MeshPrecompute::new(mesh());
        let (src, snk) = (Coord::new(0, 1), Coord::new(3, 4));
        let a = pre.endpoint_tables(src, snk);
        let b = pre.endpoint_tables(src, snk);
        assert!(Arc::ptr_eq(&a, &b), "same pair must share one allocation");
        // The reverse pair is a different band.
        let c = pre.endpoint_tables(snk, src);
        assert!(!Arc::ptr_eq(&a, &c));
        let (hits, misses) = pre.cache_stats();
        assert_eq!((hits, misses), (1, 2));
    }

    #[test]
    fn tables_equal_the_rebuilt_values() {
        let m = mesh();
        let pre = MeshPrecompute::new(m);
        for (src, snk) in [
            (Coord::new(0, 0), Coord::new(4, 5)), // corner to corner
            (Coord::new(2, 3), Coord::new(2, 3)), // local
            (Coord::new(1, 4), Coord::new(1, 0)), // straight, leftwards
            (Coord::new(4, 0), Coord::new(0, 5)), // up-right quadrant
        ] {
            let cached = pre.endpoint_tables(src, snk);
            let fresh = EndpointTables::build(&m, src, snk);
            let band = Band::new(&m, src, snk);
            assert_eq!(cached.band().len(), band.len());
            for t in 0..band.len() {
                assert_eq!(cached.band().group(t), band.group(t), "({src},{snk}) t={t}");
            }
            for t in 0..=band.len() {
                assert_eq!(cached.diag_rows()[t], band.diag_rows(&m, t));
                assert_eq!(fresh.diag_rows()[t], cached.diag_rows()[t]);
            }
            assert_eq!(cached.path_count(), Path::count(src, snk));
            assert_eq!(cached.xy(), &Path::xy(src, snk));
        }
    }

    #[test]
    fn customize_resolves_tables_and_order() {
        let m = mesh();
        let pre = MeshPrecompute::new(m);
        let cs = CommSet::new(
            m,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(2, 2), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(2, 2), 3.0),
                Comm::new(Coord::new(4, 4), Coord::new(0, 1), 2.0),
            ],
        );
        let cust = pre.customize(&cs);
        assert!(cust.matches(&cs));
        assert_eq!(cust.len(), 3);
        // Identical endpoints intern to the same allocation even within
        // one instance.
        assert!(Arc::ptr_eq(cust.table(0), cust.table(1)));
        assert!(!Arc::ptr_eq(cust.table(0), cust.table(2)));
        // The cached order is CommSet::by_order's result, verbatim.
        assert_eq!(cust.by_weight(), cs.by_order(SortOrder::DecreasingWeight));
        assert_eq!(
            cust.order(SortOrder::DecreasingWeight),
            Some(cust.by_weight())
        );
        assert_eq!(cust.order(SortOrder::DecreasingLength), None);
        // A different instance does not match.
        let other = CommSet::new(m, vec![Comm::new(Coord::new(0, 0), Coord::new(2, 2), 1.0)]);
        assert!(!cust.matches(&other));
    }

    #[test]
    fn cost_ladder_is_bit_identical_to_the_power_fit() {
        use crate::heuristic::surrogate_link_cost;
        let model = PowerModel::kim_horowitz();
        let ladder = CostLadder::new(&model).expect("discrete model");
        assert!(ladder.matches(&model));
        // Dense sweep over the feasible range, the level boundaries (and
        // their epsilon neighbourhoods), zero and overloads.
        let mut loads: Vec<f64> = (0..=40_000).map(|i| i as f64 * 0.1).collect();
        for lv in [1000.0, 2500.0, 3500.0] {
            loads.extend([lv - 1e-9, lv, lv + 1e-9, lv + 1e-3]);
        }
        loads.extend([-1e-12, 0.0, f64::MIN_POSITIVE]);
        for load in loads {
            assert_eq!(
                ladder.cost(load).to_bits(),
                surrogate_link_cost(&model, load).to_bits(),
                "ladder diverged from the model at load {load}"
            );
        }
        // A different model is rejected by the fingerprint, and continuous
        // scaling has no ladder.
        assert!(!ladder.matches(&PowerModel::kim_horowitz_continuous()));
        assert!(CostLadder::new(&PowerModel::fig2()).is_none());
    }

    #[test]
    fn engine_config_selects_table_sourcing() {
        // An explicit Reference precompute selection makes the scratch
        // decline to cache customizations (the rebuild-per-trial oracle
        // path); the Live default caches them.
        use crate::engine::{EngineConfig, EngineSel};
        use crate::scratch::RouteScratch;
        let mesh = Mesh::new(3, 3);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(2, 2), 1.0)],
        );
        let mut live = RouteScratch::with_engine(EngineConfig::LIVE);
        assert!(live.ensure_customized(&cs));
        let mut rebuild =
            RouteScratch::with_engine(EngineConfig::LIVE.with_precompute(EngineSel::Reference));
        assert!(!rebuild.ensure_customized(&cs));
    }
}
