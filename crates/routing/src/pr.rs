//! The Path-remover heuristic (§5.5), with a diagonal-banded incremental
//! reachability engine.
//!
//! PR dominates the per-instance runtime of the §6 campaign because every
//! link removal re-validates the communication's remaining paths. The
//! original formulation (kept verbatim in [`mod@reference`]) re-sweeps the
//! whole band — forward reachability from the source, backward from the
//! sink, one pass over every diagonal group — on **every** removal. But a
//! removal in diagonal group `t_rm` can only change forward reachability on
//! diagonals *downstream* of `t_rm` and backward reachability *upstream* of
//! it, and in practice the change dies out after one or two diagonals.
//!
//! The banded implementation here exploits the §3.3 band structure: the
//! cores of one diagonal `D_k^{(d)}` inside a bounding box occupy
//! consecutive rows, so the set of *useful* cores per diagonal (those on at
//! least one surviving source→sink path) is stored as a row interval
//! ([`Band::diag_rows`]). On each removal only the affected diagonals are
//! recomputed, stopping as soon as the recomputed interval matches the
//! stored one; path cleaning then re-examines only the touched groups. When
//! a recomputed reachable set is not contiguous (an interval *fragments*),
//! the communication permanently falls back to the full sweep — a rare,
//! always-correct escape hatch.
//!
//! Both implementations produce **bit-identical** routings, errors and load
//! maps: they kill the same links in the same order and perform the same
//! floating-point operations per link. `tests/pr_differential.rs` enforces
//! this with a differential oracle over randomized §6 workloads. Tests and
//! benchmarks swap the engine behind
//! [`HeuristicKind::Pr`](crate::HeuristicKind) by threading an explicit
//! [`EngineConfig`](crate::EngineConfig) (e.g.
//! `EngineConfig::LIVE.with_pr(EngineSel::Reference)`) through their
//! scratch, session or campaign state; the deprecated
//! [`set_implementation`] shim only moves the process-wide *default* that
//! unconfigured scratches fall back to.

use crate::comm::CommSet;
use crate::engine::{self, EngineSel, ProcessBit};
use crate::heuristic::Heuristic;
use crate::loadq::LoadQueue;
use crate::precompute::EndpointTables;
use crate::routing::Routing;
use crate::scratch::{reset_flags, RouteScratch};
use pamr_mesh::{Band, Coord, LinkId, LoadMap, Mesh, Path, Step};
use pamr_power::PowerModel;
use std::sync::Arc;

pub mod reference;

pub use reference::ReferencePathRemover;

/// **PR — Path remover** (§5.5).
///
/// Every communication starts (virtually) pre-routed over *all* its
/// Manhattan paths with the ideal fractional sharing of Figure 3. Links are
/// then removed iteratively: take the most loaded link and the largest
/// communication using it, and delete that link from the communication's
/// allowed set unless this would break its last remaining path (in which
/// case the next communication on the link is considered, then the next
/// link). After each deletion the allowed-link set is *cleaned* — links no
/// longer on any remaining source→sink path are dropped too — and the
/// communication's fractional load is re-spread over the surviving links of
/// each diagonal crossing. The process ends when every communication has
/// exactly one remaining path.
///
/// This is the banded incremental implementation (see the module docs);
/// [`ReferencePathRemover`] is the bit-identical full-sweep oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathRemover;

/// Which Path-Remover engine [`PathRemover`] (and hence
/// [`HeuristicKind::Pr`](crate::HeuristicKind)) dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrImpl {
    /// The banded incremental engine (default).
    Banded,
    /// The full-sweep oracle ([`mod@reference`]).
    Reference,
}

/// Sets the *process-default* Path-Remover engine.
///
/// Deprecated shim over [`engine::EngineConfig`]: it updates only the
/// fallback used by scratches built without an explicit config. Pass
/// `RouteScratch::with_engine(EngineConfig::LIVE.with_pr(…))` instead.
#[deprecated(
    since = "0.10.0",
    note = "pass an explicit engine::EngineConfig via RouteScratch::with_engine"
)]
pub fn set_implementation(imp: PrImpl) {
    let sel = match imp {
        PrImpl::Banded => EngineSel::Live,
        PrImpl::Reference => EngineSel::Reference,
    };
    engine::set_process_bit(ProcessBit::Pr, sel);
}

/// The *process-default* Path-Remover engine (deprecated shim; a scratch
/// pinned by [`RouteScratch::with_engine`] ignores it).
#[deprecated(
    since = "0.10.0",
    note = "read the engine::EngineConfig carried by the RouteScratch instead"
)]
pub fn implementation() -> PrImpl {
    match engine::process_default().pr {
        EngineSel::Live => PrImpl::Banded,
        EngineSel::Reference => PrImpl::Reference,
    }
}

/// A violated structural invariant inside the PR heuristic.
///
/// These conditions cannot occur on well-formed Manhattan bands (path
/// cleaning preserves at least one source→sink path, and a resolved band's
/// surviving links chain by construction), so any occurrence is a bug — but
/// they were previously guarded only by `debug_assert!`/`unwrap`, which in
/// release builds silently divided by zero (NaN shares poisoning the load
/// map) or panicked with a bare `Option::unwrap` message. They are now
/// checked identically in debug and release and reported as a structured
/// error by [`PathRemover::try_route_with`]. The banded and reference
/// engines report bit-identical errors — part of the differential contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrError {
    /// Path cleaning left diagonal group `group` of communication `comm`
    /// with no alive link (the re-share would divide by zero).
    EmptiedGroup {
        /// Index of the communication in the instance.
        comm: usize,
        /// Diagonal-group index within the communication's band.
        group: usize,
    },
    /// Some communications remain unresolved but no link can be removed
    /// from any of them (the outer loop would spin or, previously,
    /// `final_path` would `unwrap` on a multi-link group).
    Stuck {
        /// Number of still-unresolved communications.
        unresolved: usize,
    },
    /// A resolved communication's surviving links do not chain from its
    /// source to its sink.
    BrokenChain {
        /// Index of the communication in the instance.
        comm: usize,
    },
}

impl std::fmt::Display for PrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrError::EmptiedGroup { comm, group } => write!(
                f,
                "PR path cleaning emptied diagonal group {group} of communication {comm}"
            ),
            PrError::Stuck { unresolved } => write!(
                f,
                "PR found no removable link although {unresolved} communication(s) remain unresolved"
            ),
            PrError::BrokenChain { comm } => write!(
                f,
                "PR resolved communication {comm} to links that do not chain into a path"
            ),
        }
    }
}

impl std::error::Error for PrError {}

/// A row interval on one diagonal: inclusive `(lo, hi)` in mesh rows.
type Iv = (usize, usize);

/// The canonical empty interval.
const IV_EMPTY: Iv = (usize::MAX, 0);

#[inline]
fn iv_is_empty(iv: Iv) -> bool {
    iv.0 > iv.1
}

#[inline]
fn iv_contains(iv: Iv, u: usize) -> bool {
    iv.0 <= u && u <= iv.1
}

#[inline]
fn iv_intersect(a: Iv, b: Iv) -> Iv {
    let lo = a.0.max(b.0);
    let hi = a.1.min(b.1);
    if lo > hi {
        IV_EMPTY
    } else {
        (lo, hi)
    }
}

/// The reusable per-removal buffers the banded engine borrows from
/// [`RouteScratch`], split out so the candidate scan can keep reading
/// `scratch.xusers` while a removal mutates these.
struct BandBufs<'a> {
    loads: &'a mut LoadMap,
    queue: &'a mut LoadQueue,
    live: &'a [u32],
    fwd_iv: &'a mut Vec<Iv>,
    bwd_iv: &'a mut Vec<Iv>,
    rows: &'a mut Vec<bool>,
    fwd: &'a mut Vec<bool>,
    bwd: &'a mut Vec<bool>,
}

impl BandBufs<'_> {
    /// [`LoadMap::add`] that also keeps the shared [`LoadQueue`] in sync:
    /// the queue holds exactly the links with strictly positive load and at
    /// least one unresolved user. The load *values* are bit-identical to
    /// the full-sweep oracle's (same operations per link in the same
    /// order), so the queue's descending iteration reproduces its
    /// loaded-link scan order exactly.
    fn add_load(&mut self, l: LinkId, delta: f64) {
        self.loads.add(l, delta);
        if self.live[l.index()] > 0 {
            self.queue.set(l, self.loads.get(l));
        }
    }
}

/// Per-communication removal state of the banded engine.
///
/// `band` and `base_rows` are metric-independent and therefore shareable:
/// with the precompute cache active they are `Arc` clones of the interned
/// [`EndpointTables`]; on the rebuild path they are freshly computed —
/// identical values either way. (They stay plain struct fields, not
/// accessor calls, so `remove_and_reshare`'s disjoint field borrows keep
/// compiling.)
struct BandedComm {
    band: Arc<Band>,
    /// The pristine per-diagonal useful-row intervals
    /// ([`Band::diag_rows`] for `t ∈ 0..=len`) — the start state `reach`
    /// is seeded from and `rebuild_reach` clamps against.
    base_rows: Arc<Vec<Iv>>,
    weight: f64,
    /// Aliveness aligned with `band.groups()`.
    alive: Vec<Vec<bool>>,
    /// Current equal share per alive link, per group (`δ / alive_count`).
    share: Vec<f64>,
    /// Alive-link count per group (kept in lock-step with `alive`).
    counts: Vec<usize>,
    /// Useful-core row interval per diagonal `0 ..= len`: the cores lying
    /// on at least one surviving source→sink path. Invariant between
    /// removals (unless `fragmented`): forward and backward reachability
    /// over the alive links both equal exactly this set, because path
    /// cleaning prunes the alive set down to the union of surviving paths.
    reach: Vec<Iv>,
    /// Number of groups with more than one alive link.
    multi: usize,
    /// Set while a reachable set is not a contiguous row interval: the next
    /// removal of this communication full-sweeps instead of propagating
    /// incrementally. The full sweep rebuilds the `reach` intervals from
    /// its own reachability flags, so the flag clears again as soon as
    /// every diagonal's useful set is back to one contiguous run —
    /// fragmentation no longer pins a communication to the slow path for
    /// good.
    fragmented: bool,
}

impl BandedComm {
    /// Builds the removal state. `tables` supplies the interned band and
    /// row intervals when the precompute cache is active; `None` rebuilds
    /// both from the mesh (the literal pre-split path — same values).
    fn new(
        mesh: &Mesh,
        src: Coord,
        snk: Coord,
        weight: f64,
        tables: Option<&EndpointTables>,
    ) -> Self {
        let (band, base_rows) = match tables {
            Some(t) => (Arc::clone(t.band_arc()), Arc::clone(t.diag_rows_arc())),
            None => {
                let band = Band::new(mesh, src, snk);
                let rows: Vec<Iv> = (0..=band.len()).map(|t| band.diag_rows(mesh, t)).collect();
                (Arc::new(band), Arc::new(rows))
            }
        };
        let alive: Vec<Vec<bool>> = band.groups().map(|g| vec![true; g.len()]).collect();
        let share: Vec<f64> = band.groups().map(|g| weight / g.len() as f64).collect();
        let counts: Vec<usize> = band.groups().map(|g| g.len()).collect();
        let multi = counts.iter().filter(|&&c| c > 1).count();
        let reach: Vec<Iv> = base_rows.as_ref().clone();
        BandedComm {
            band,
            base_rows,
            weight,
            alive,
            share,
            counts,
            reach,
            multi,
            fragmented: false,
        }
    }

    /// True when every group retains exactly one link.
    #[inline]
    fn resolved(&self) -> bool {
        self.multi == 0
    }

    /// Applies this communication's fractional load with sign `sign`.
    fn apply_loads(&self, loads: &mut LoadMap, sign: f64) {
        for (t, g) in self.band.groups().enumerate() {
            let s = self.share[t] * sign;
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    loads.add(l, s);
                }
            }
        }
    }

    /// One reachability step across diagonal group `g`: the rows of the
    /// next (forward) or previous (backward) diagonal reached from the row
    /// interval `prev` through the group's alive links. Returns `None` when
    /// the reached set is not contiguous (the caller must fall back to the
    /// full sweep), `Some(IV_EMPTY)` when nothing is reached.
    fn propagate(
        &self,
        mesh: &Mesh,
        g: usize,
        prev: Iv,
        rows: &mut [bool],
        forward: bool,
    ) -> Option<Iv> {
        if iv_is_empty(prev) {
            return Some(IV_EMPTY);
        }
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for (j, &l) in self.band.group(g).iter().enumerate() {
            if self.alive[g][j] {
                let (from, to) = mesh.link_endpoints(l);
                let (key, dst) = if forward {
                    (from.u, to.u)
                } else {
                    (to.u, from.u)
                };
                if iv_contains(prev, key) {
                    rows[dst] = true;
                    lo = lo.min(dst);
                    hi = hi.max(dst);
                }
            }
        }
        if lo == usize::MAX {
            return Some(IV_EMPTY);
        }
        let mut contiguous = true;
        for r in rows.iter_mut().take(hi + 1).skip(lo) {
            contiguous &= *r;
            *r = false;
        }
        contiguous.then_some((lo, hi))
    }

    /// Removes link `(t_rm, j_rm)` and performs the paper's "path cleaning"
    /// and re-sharing, recomputing reachability only on the diagonals the
    /// removal can affect: forward intervals downstream of `t_rm` and
    /// backward intervals upstream, each propagation stopping as soon as it
    /// re-matches the stored `reach` interval. Cleaning then touches only
    /// the groups adjacent to a changed diagonal (plus `t_rm` itself) — the
    /// bit-identical subset of the operations the full sweep performs,
    /// because unchanged groups reproduce the identical share quotient and
    /// skip their load updates entirely.
    fn remove_and_reshare(
        &mut self,
        mesh: &Mesh,
        ci: usize,
        (t_rm, j_rm): (usize, usize),
        bufs: &mut BandBufs<'_>,
    ) -> Result<(), PrError> {
        // Subtract the removed link's current share and kill it.
        bufs.add_load(self.band.group(t_rm)[j_rm], -self.share[t_rm]);
        self.alive[t_rm][j_rm] = false;

        if self.fragmented {
            return self.full_reshare(mesh, ci, bufs);
        }
        let len = self.band.len();
        if bufs.fwd_iv.len() < len + 1 {
            bufs.fwd_iv.resize(len + 1, IV_EMPTY);
            bufs.bwd_iv.resize(len + 1, IV_EMPTY);
        }
        if bufs.rows.len() < mesh.rows() {
            bufs.rows.resize(mesh.rows(), false);
        }

        // Forward reachability, recomputed downstream of the removed group
        // until it re-matches the stored useful interval. `f_stop` is the
        // first diagonal ≥ t_rm+1 whose forward set did not change.
        let mut f_stop = len + 1;
        let mut prev = self.reach[t_rm];
        for t in t_rm + 1..=len {
            let Some(next) = self.propagate(mesh, t - 1, prev, bufs.rows, true) else {
                self.fragmented = true;
                return self.full_reshare(mesh, ci, bufs);
            };
            if next == self.reach[t] {
                f_stop = t;
                break;
            }
            bufs.fwd_iv[t] = next;
            prev = next;
        }
        // Backward reachability upstream. `b_start` is the first (lowest)
        // diagonal whose backward set changed.
        let mut b_start = 0;
        let mut prev = self.reach[t_rm + 1];
        let mut matched = false;
        for t in (0..=t_rm).rev() {
            let Some(next) = self.propagate(mesh, t, prev, bufs.rows, false) else {
                self.fragmented = true;
                return self.full_reshare(mesh, ci, bufs);
            };
            if next == self.reach[t] {
                b_start = t + 1;
                matched = true;
                break;
            }
            bufs.bwd_iv[t] = next;
            prev = next;
        }
        if !matched {
            b_start = 0;
        }

        // Clean and re-share the affected groups, in increasing order so a
        // structural error names the same group as the full sweep. Group t
        // is affected iff its source diagonal's forward set changed
        // (t_rm < t < f_stop), its sink diagonal's backward set changed
        // (b_start ≤ t+1 ≤ t_rm), or it lost the removed link (t = t_rm).
        let g_lo = b_start.saturating_sub(1);
        let g_hi = (f_stop - 1).min(len - 1);
        for t in g_lo..=g_hi {
            let fwd_t = if t > t_rm && t < f_stop {
                bufs.fwd_iv[t]
            } else {
                self.reach[t]
            };
            let bwd_t1 = if t + 1 >= b_start && t < t_rm {
                bufs.bwd_iv[t + 1]
            } else {
                self.reach[t + 1]
            };
            let g = self.band.group(t);
            let old_share = self.share[t];
            let old_count = self.counts[t];
            let mut count = 0usize;
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    let (from, to) = mesh.link_endpoints(l);
                    if iv_contains(fwd_t, from.u) && iv_contains(bwd_t1, to.u) {
                        count += 1;
                    } else {
                        self.alive[t][j] = false;
                        bufs.add_load(l, -old_share);
                    }
                }
            }
            if count == 0 {
                return Err(PrError::EmptiedGroup { comm: ci, group: t });
            }
            let new_share = self.weight / count as f64;
            // Exact comparison: an unchanged count reproduces the identical
            // quotient, so untouched groups skip the load updates entirely.
            if new_share != old_share {
                for (j, &l) in g.iter().enumerate() {
                    if self.alive[t][j] {
                        bufs.add_load(l, new_share - old_share);
                    }
                }
                self.share[t] = new_share;
            }
            self.counts[t] = count;
            if old_count > 1 && count == 1 {
                self.multi -= 1;
            }
        }

        // Fold the recomputed reachability into the stored useful sets:
        // after cleaning, the useful cores of a diagonal are exactly the
        // forward-reachable ∩ backward-reachable ones, and an empty
        // intersection would have surfaced above as an emptied group.
        for t in b_start..=t_rm {
            self.reach[t] = iv_intersect(self.reach[t], bufs.bwd_iv[t]);
            debug_assert!(!iv_is_empty(self.reach[t]));
        }
        for t in t_rm + 1..f_stop {
            self.reach[t] = iv_intersect(bufs.fwd_iv[t], self.reach[t]);
            debug_assert!(!iv_is_empty(self.reach[t]));
        }
        Ok(())
    }

    /// The full-sweep fallback: identical to the reference engine's
    /// cleaning pass (same operations on the load map, in the same order),
    /// plus the banded bookkeeping of `counts` and `multi`. Afterwards the
    /// `reach` intervals are rebuilt from the sweep's reachability flags
    /// ([`BandedComm::rebuild_reach`]); when every diagonal's useful set is
    /// a contiguous run again, `fragmented` clears and later removals
    /// re-enter the fast banded path.
    fn full_reshare(
        &mut self,
        mesh: &Mesh,
        ci: usize,
        bufs: &mut BandBufs<'_>,
    ) -> Result<(), PrError> {
        let n = mesh.num_cores();
        reset_flags(bufs.fwd, n);
        bufs.fwd[mesh.core_index(self.band.src())] = true;
        for (t, g) in self.band.groups().enumerate() {
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    let (from, to) = mesh.link_endpoints(l);
                    if bufs.fwd[mesh.core_index(from)] {
                        bufs.fwd[mesh.core_index(to)] = true;
                    }
                }
            }
        }
        reset_flags(bufs.bwd, n);
        bufs.bwd[mesh.core_index(self.band.snk())] = true;
        for (t, g) in self.band.groups().enumerate().rev() {
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    let (from, to) = mesh.link_endpoints(l);
                    if bufs.bwd[mesh.core_index(to)] {
                        bufs.bwd[mesh.core_index(from)] = true;
                    }
                }
            }
        }
        self.multi = 0;
        for (t, g) in self.band.groups().enumerate() {
            let old_share = self.share[t];
            let mut count = 0usize;
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    let (from, to) = mesh.link_endpoints(l);
                    if bufs.fwd[mesh.core_index(from)] && bufs.bwd[mesh.core_index(to)] {
                        count += 1;
                    } else {
                        self.alive[t][j] = false;
                        bufs.add_load(l, -old_share);
                    }
                }
            }
            if count == 0 {
                return Err(PrError::EmptiedGroup { comm: ci, group: t });
            }
            let new_share = self.weight / count as f64;
            if new_share != old_share {
                for (j, &l) in g.iter().enumerate() {
                    if self.alive[t][j] {
                        bufs.add_load(l, new_share - old_share);
                    }
                }
                self.share[t] = new_share;
            }
            self.counts[t] = count;
            if count > 1 {
                self.multi += 1;
            }
        }
        self.fragmented = !self.rebuild_reach(mesh, bufs.fwd, bufs.bwd);
        Ok(())
    }

    /// Rebuilds the per-diagonal useful-core intervals from a full sweep's
    /// reachability flags, returning `true` when every diagonal's useful
    /// set is one contiguous row run (the banded invariant) and `false`
    /// when any set is still fragmented.
    ///
    /// The flags were computed *before* path cleaning, but `fwd ∩ bwd` is
    /// the same set either way: a core that is forward- and
    /// backward-reachable lies on a full source→sink path, and every link
    /// of that path survives cleaning. On `false` the partially-rewritten
    /// intervals are left stale, which is safe because the caller keeps
    /// `fragmented` set and the next removal full-sweeps again.
    fn rebuild_reach(&mut self, mesh: &Mesh, fwd: &[bool], bwd: &[bool]) -> bool {
        for t in 0..=self.band.len() {
            let (b_lo, b_hi) = self.base_rows[t];
            let mut iv = IV_EMPTY;
            for u in b_lo..=b_hi {
                let c = self
                    .band
                    .core_on_diag(mesh, t, u)
                    // pamr-lint: allow(P001, reason = "base_rows stores per-diagonal row ranges computed from this band's geometry, so every (t, u) it yields is a band core")
                    .expect("diag_rows rows hold a band core");
                let i = mesh.core_index(c);
                if fwd[i] && bwd[i] {
                    if iv_is_empty(iv) {
                        iv = (u, u);
                    } else if u == iv.1 + 1 {
                        iv.1 = u;
                    } else {
                        return false; // still fragmented
                    }
                }
            }
            // Path cleaning already errored on an emptied group, so every
            // diagonal keeps at least one useful core here.
            debug_assert!(!iv_is_empty(iv));
            self.reach[t] = iv;
        }
        true
    }

    /// Number of alive links in the group containing `link` and the link's
    /// position, if it is alive. O(1) in the group size thanks to `counts`.
    fn locate(&self, mesh: &Mesh, link: LinkId) -> Option<(usize, usize, usize)> {
        if self.band.is_empty() {
            return None;
        }
        let (from, _) = mesh.link_endpoints(link);
        let k = mesh.diag_index(from, self.band.quadrant());
        let t = k.checked_sub(self.band.k_src())?;
        if t >= self.band.len() {
            return None;
        }
        let g = self.band.group(t);
        let j = g.iter().position(|&l| l == link)?;
        if !self.alive[t][j] {
            return None;
        }
        Some((t, j, self.counts[t]))
    }

    /// Extracts the unique remaining path; `ci` labels errors. Fails with
    /// [`PrError::BrokenChain`] when the communication is not resolved or
    /// its surviving links do not connect source to sink.
    fn final_path(&self, mesh: &Mesh, ci: usize) -> Result<Path, PrError> {
        if !self.resolved() {
            return Err(PrError::BrokenChain { comm: ci });
        }
        let mut cur = self.band.src();
        let mut moves: Vec<Step> = Vec::with_capacity(self.band.len());
        for (t, g) in self.band.groups().enumerate() {
            let Some(j) = self.alive[t].iter().position(|&a| a) else {
                return Err(PrError::EmptiedGroup { comm: ci, group: t });
            };
            let link = g[j];
            let (from, to) = mesh.link_endpoints(link);
            if from != cur {
                return Err(PrError::BrokenChain { comm: ci });
            }
            moves.push(mesh.link_step(link));
            cur = to;
        }
        if cur != self.band.snk() {
            return Err(PrError::BrokenChain { comm: ci });
        }
        Ok(Path::from_moves(self.band.src(), moves))
    }
}

impl PathRemover {
    /// [`Heuristic::route_with`], but surfacing violated invariants as a
    /// structured [`PrError`] instead of panicking. The checks run in
    /// debug and release builds alike. Dispatches on the
    /// [`EngineConfig`](crate::engine::EngineConfig) carried by `scratch`
    /// (banded by default).
    pub fn try_route_with(
        &self,
        cs: &CommSet,
        model: &PowerModel,
        scratch: &mut RouteScratch,
    ) -> Result<Routing, PrError> {
        match scratch.engine().pr {
            EngineSel::Live => self.try_route_banded_with(cs, model, scratch),
            EngineSel::Reference => ReferencePathRemover.try_route_with(cs, model, scratch),
        }
    }

    /// The banded engine, unconditionally — what the differential suite
    /// compares against [`ReferencePathRemover::try_route_with`] regardless
    /// of the scratch's engine config.
    pub fn try_route_banded_with(
        &self,
        cs: &CommSet,
        _model: &PowerModel,
        scratch: &mut RouteScratch,
    ) -> Result<Routing, PrError> {
        let mesh = cs.mesh();
        // Per-comm removal state — band geometry and pristine row
        // intervals come from the interned endpoint tables when the
        // precompute cache is active (Arc clones, no Band::new), and are
        // rebuilt from the mesh otherwise.
        let use_cache = scratch.ensure_customized(cs);
        let mut comms: Vec<BandedComm> = match scratch.cust.as_ref().filter(|_| use_cache) {
            Some(cust) => cs
                .comms()
                .iter()
                .enumerate()
                .map(|(i, c)| BandedComm::new(mesh, c.src, c.snk, c.weight, Some(cust.table(i))))
                .collect(),
            None => cs
                .comms()
                .iter()
                .map(|c| BandedComm::new(mesh, c.src, c.snk, c.weight, None))
                .collect(),
        };
        scratch.loads.fit(mesh);
        for c in &comms {
            c.apply_loads(&mut scratch.loads, 1.0);
        }
        // Which communications' bands contain each link (static superset,
        // built flat-CSR in two counting passes over the bands).
        let nslots = mesh.num_link_slots();
        scratch.xusers.rebuild(nslots, |push| {
            for (i, c) in comms.iter().enumerate() {
                for l in c.band.links() {
                    push(l.index(), i as u32);
                }
            }
        });
        // Presort each occupied link's users by decreasing weight (ties
        // towards the smaller index) once: the weights are static, so this
        // yields exactly the candidate order the full-sweep oracle re-sorts
        // per examined link. `sort_rows_by` visits only the rows the
        // rebuild populated — sorting the empty slots was a no-op anyway.
        // total_cmp orders these finite positive weights identically to
        // partial_cmp and removes the NaN panic path.
        scratch.xusers.sort_rows_by(|a, b| {
            let (a, b) = (a as usize, b as usize);
            comms[b].weight.total_cmp(&comms[a].weight).then(a.cmp(&b))
        });
        // Per-link unresolved-user counts: a link none of whose users is
        // unresolved is rejected by the candidate scan without effect, so
        // skipping it up front cannot change which link hosts the next
        // removal — it only spares the scan. Decremented for a comm's whole
        // band when the comm resolves.
        scratch.live_users.clear();
        scratch.live_users.resize(nslots, 0);
        for c in &comms {
            if !c.resolved() {
                for l in c.band.links() {
                    scratch.live_users[l.index()] += 1;
                }
            }
        }

        // Shared loaded-link priority queue ([`LoadQueue`]): exactly the
        // links with positive load and at least one unresolved user, whose
        // descending iteration yields decreasing load with ties towards the
        // smaller link id — the full-sweep oracle's scan order. Maintained
        // incrementally by [`BandBufs::add_load`] instead of being rebuilt
        // (and re-scanned, O(links²)) on every removal.
        {
            let live = &scratch.live_users;
            scratch.queue.rebuild(
                nslots,
                scratch
                    .loads
                    .iter_active()
                    .filter(|(l, _)| live[l.index()] > 0),
            );
        }

        // Iteratively remove the most loaded link from the largest
        // removable communication crossing it.
        let mut unresolved = comms.iter().filter(|c| !c.resolved()).count();
        while unresolved > 0 {
            let mut removed = false;
            // Examine queued links in decreasing-load order; rejected links
            // keep their key, so the scan resumes strictly below the
            // cursor.
            let mut cursor = scratch.queue.cursor();
            'links: while let Some((link, _)) = cursor.next(&scratch.queue) {
                // Candidates in presorted decreasing-weight order.
                for &i in scratch.xusers.row(link.index()) {
                    let i = i as usize;
                    if comms[i].resolved() {
                        continue;
                    }
                    // Removable iff the link is alive for the communication
                    // and its group keeps another alive link (every alive
                    // link lies on some path after cleaning, so a sibling
                    // link guarantees a surviving path).
                    if let Some((t, j, count)) = comms[i].locate(mesh, link) {
                        if count >= 2 {
                            let mut bufs = BandBufs {
                                loads: &mut scratch.loads,
                                queue: &mut scratch.queue,
                                live: &scratch.live_users,
                                fwd_iv: &mut scratch.fwd_iv,
                                bwd_iv: &mut scratch.bwd_iv,
                                rows: &mut scratch.rows,
                                fwd: &mut scratch.fwd,
                                bwd: &mut scratch.bwd,
                            };
                            comms[i].remove_and_reshare(mesh, i, (t, j), &mut bufs)?;
                            if comms[i].resolved() {
                                unresolved -= 1;
                                for l in comms[i].band.links() {
                                    let slot = l.index();
                                    scratch.live_users[slot] -= 1;
                                    if scratch.live_users[slot] == 0 {
                                        scratch.queue.set(l, 0.0);
                                    }
                                }
                            }
                            removed = true;
                            break 'links;
                        }
                    }
                }
            }
            // An unresolved communication always has a removable link;
            // failing that is a structural error in both builds.
            if !removed {
                return Err(PrError::Stuck { unresolved });
            }
        }

        let paths = comms
            .iter()
            .enumerate()
            .map(|(i, c)| c.final_path(mesh, i))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Routing::single(cs, paths))
    }
}

impl Heuristic for PathRemover {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        // A PrError is a routing-engine bug, not an infeasible instance:
        // escalate to a hard panic with the structured diagnosis, the same
        // way in debug and release builds.
        self.try_route_with(cs, model, scratch)
            // pamr-lint: allow(P001, reason = "documented escalation policy: a PrError here is an engine bug, and the infallible Heuristic interface has no error channel — callers wanting Result use try_route_with")
            .unwrap_or_else(|e| panic!("PR invariant violated: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::rules::xy_routing;
    use pamr_mesh::Mesh;
    use pamr_power::PowerModel;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pr_resolves_to_single_paths() {
        let mesh = Mesh::new(5, 5);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(4, 4), 3.0),
                Comm::new(Coord::new(4, 0), Coord::new(0, 4), 2.0),
                Comm::new(Coord::new(0, 4), Coord::new(4, 0), 1.5),
                Comm::new(Coord::new(2, 2), Coord::new(2, 2), 1.0), // local
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = PathRemover.route(&cs, &model);
        assert!(r.is_structurally_valid(&cs, 1));
        assert_eq!(r.max_paths_per_comm(), 1);
        assert!(r.path(3).is_empty());
    }

    #[test]
    fn pr_separates_two_identical_flows() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let r = PathRemover.route(&cs, &model);
        let p = r.power(&cs, &model).unwrap().total();
        assert!(
            (p - 56.0).abs() < 1e-9,
            "PR should reach the 1-MP optimum 56, got {p}"
        );
    }

    #[test]
    fn pr_balances_heavy_parallel_traffic() {
        // Four equal flows corner to corner on a 3×3: best single-path max
        // load keeps pairs separated.
        let mesh = Mesh::new(3, 3);
        let comms = (0..4)
            .map(|_| Comm::new(Coord::new(0, 0), Coord::new(2, 2), 1.0))
            .collect();
        let cs = CommSet::new(mesh, comms);
        let model = PowerModel::theory(3.0);
        let r = PathRemover.route(&cs, &model);
        let loads = r.loads(&cs);
        // The two links out of the corner must carry 2.0 each (perfect
        // split); interior spread keeps the maximum at 2.0.
        assert!(
            loads.max_load() <= 2.0 + 1e-9,
            "max load {}",
            loads.max_load()
        );
        let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        let p_pr = r.power(&cs, &model).unwrap().total();
        assert!(p_pr < p_xy);
    }

    #[test]
    fn pr_handles_straight_lines() {
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(1, 0), Coord::new(1, 3), 2.0),
                Comm::new(Coord::new(0, 2), Coord::new(3, 2), 2.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = PathRemover.route(&cs, &model);
        assert_eq!(r.path(0).len(), 3);
        assert_eq!(r.path(1).len(), 3);
        assert!(r.path(0).bends() == 0 && r.path(1).bends() == 0);
    }

    #[test]
    fn try_route_with_succeeds_on_normal_instances() {
        let mesh = Mesh::new(5, 5);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(4, 4), 3.0),
                Comm::new(Coord::new(4, 0), Coord::new(0, 4), 2.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = PathRemover
            .try_route_with(&cs, &model, &mut crate::RouteScratch::new())
            .expect("well-formed instance must not trip PR invariants");
        assert!(r.is_structurally_valid(&cs, 1));
        assert_eq!(
            PrError::Stuck { unresolved: 2 }.to_string(),
            "PR found no removable link although 2 communication(s) remain unresolved"
        );
    }

    #[test]
    fn pr_loads_match_final_paths() {
        // After resolution the internal fractional loads must equal the
        // loads recomputed from the final single paths.
        let mesh = Mesh::new(6, 6);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 1), Coord::new(5, 4), 2.0),
                Comm::new(Coord::new(3, 0), Coord::new(1, 5), 1.0),
                Comm::new(Coord::new(5, 5), Coord::new(0, 0), 3.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = PathRemover.route(&cs, &model);
        // Re-derive loads from returned paths and check conservation:
        // each comm contributes weight × length.
        let loads = r.loads(&cs);
        let expected: f64 = cs.comms().iter().map(|c| c.weight * c.len() as f64).sum();
        assert!((loads.total() - expected).abs() < 1e-6);
    }

    #[test]
    fn banded_matches_reference_on_random_instances() {
        // A compact in-crate differential check (the full oracle lives in
        // tests/pr_differential.rs): identical routings on random instances
        // covering all four quadrants, straight lines and local traffic.
        let model = PowerModel::theory(3.0);
        let mut scratch = crate::RouteScratch::new();
        for seed in 0..24u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let (p, q) = (rng.gen_range(2..=7), rng.gen_range(2..=7));
            let mesh = Mesh::new(p, q);
            let n = rng.gen_range(1..=12);
            let comms = (0..n)
                .map(|_| {
                    Comm::new(
                        Coord::new(rng.gen_range(0..p), rng.gen_range(0..q)),
                        Coord::new(rng.gen_range(0..p), rng.gen_range(0..q)),
                        rng.gen_range(1.0..100.0),
                    )
                })
                .collect();
            let cs = CommSet::new(mesh, comms);
            let banded = PathRemover.try_route_banded_with(&cs, &model, &mut scratch);
            let reference = ReferencePathRemover.try_route_with(&cs, &model, &mut scratch);
            assert_eq!(
                banded.unwrap(),
                reference.unwrap(),
                "seed {seed}: banded PR diverged from the full-sweep oracle"
            );
        }
    }

    #[test]
    fn fragmentation_falls_back_to_the_full_sweep() {
        // Drive a banded comm and a reference comm through the identical
        // removal sequence, picking removals that disconnect the middle of
        // a diagonal: the diagonal-2 reachable rows of a 4×4 corner-to-
        // corner band become {0, 2} (not contiguous), which must flip the
        // banded comm to its full-sweep fallback and keep the states
        // bit-identical throughout.
        let mesh = Mesh::new(4, 4);
        let (src, snk) = (Coord::new(0, 0), Coord::new(3, 3));
        let mut banded = BandedComm::new(&mesh, src, snk, 2.0, None);
        let mut reference = reference::RefComm::new(&mesh, src, snk, 2.0);
        let mut loads_b = pamr_mesh::LoadMap::new(&mesh);
        let mut loads_r = pamr_mesh::LoadMap::new(&mesh);
        banded.apply_loads(&mut loads_b, 1.0);
        reference.apply_loads(&mut loads_r, 1.0);
        let mut scratch = crate::RouteScratch::new();
        let (mut fwd, mut bwd) = (Vec::new(), Vec::new());
        // Not testing queue maintenance here: an all-zero live-user table
        // keeps `add_load` from touching the (unused) queue.
        let live = vec![0u32; mesh.num_link_slots()];

        // Group 1 holds the four links leaving diagonal 1; find the two
        // links entering the middle core (1,1) of diagonal 2.
        let into_middle: Vec<usize> = banded
            .band
            .group(1)
            .iter()
            .enumerate()
            .filter(|(_, &l)| mesh.link_endpoints(l).1 == Coord::new(1, 1))
            .map(|(j, _)| j)
            .collect();
        assert_eq!(into_middle.len(), 2);
        for (step, &j) in into_middle.iter().enumerate() {
            let mut bufs = BandBufs {
                loads: &mut loads_b,
                queue: &mut scratch.queue,
                live: &live,
                fwd_iv: &mut scratch.fwd_iv,
                bwd_iv: &mut scratch.bwd_iv,
                rows: &mut scratch.rows,
                fwd: &mut scratch.fwd,
                bwd: &mut scratch.bwd,
            };
            banded
                .remove_and_reshare(&mesh, 0, (1, j), &mut bufs)
                .unwrap();
            reference
                .remove_and_reshare(&mesh, 0, (1, j), &mut loads_r, &mut fwd, &mut bwd)
                .unwrap();
            assert_eq!(
                banded.fragmented,
                step == 1,
                "fragmentation must trigger exactly on the second removal"
            );
            assert_eq!(banded.alive, reference.alive, "alive sets diverged");
            for l in mesh.links() {
                assert_eq!(
                    loads_b.get(l).to_bits(),
                    loads_r.get(l).to_bits(),
                    "load of {l} diverged"
                );
            }
        }
        // The fragmented comm keeps matching the oracle on later removals —
        // and the fallback is no longer sticky: each full sweep rebuilds
        // the per-diagonal intervals, so the communication re-enters the
        // fast banded path as soon as every useful set is contiguous again.
        // Drive the removal sequence to full resolution, checking
        // bit-identity after every step and recording the fragmented flag.
        let mut flag_history = vec![banded.fragmented];
        while !banded.resolved() {
            let (t, j) = banded
                .counts
                .iter()
                .enumerate()
                .find(|&(_, &c)| c >= 2)
                .map(|(t, _)| (t, banded.alive[t].iter().position(|&a| a).unwrap()))
                .expect("unresolved comm has a multi-link group");
            let mut bufs = BandBufs {
                loads: &mut loads_b,
                queue: &mut scratch.queue,
                live: &live,
                fwd_iv: &mut scratch.fwd_iv,
                bwd_iv: &mut scratch.bwd_iv,
                rows: &mut scratch.rows,
                fwd: &mut scratch.fwd,
                bwd: &mut scratch.bwd,
            };
            banded
                .remove_and_reshare(&mesh, 0, (t, j), &mut bufs)
                .unwrap();
            reference
                .remove_and_reshare(&mesh, 0, (t, j), &mut loads_r, &mut fwd, &mut bwd)
                .unwrap();
            assert_eq!(banded.alive, reference.alive, "alive sets diverged");
            for l in mesh.links() {
                assert_eq!(
                    loads_b.get(l).to_bits(),
                    loads_r.get(l).to_bits(),
                    "load of {l} diverged"
                );
            }
            flag_history.push(banded.fragmented);
        }
        assert_eq!(banded.resolved(), reference.resolved);
        // The workload fragmented the band mid-run…
        assert!(flag_history.iter().any(|&f| f), "workload never fragmented");
        // …and the rebuilt intervals un-stuck it before resolution: the
        // final removals run through the banded fast path again.
        assert!(
            !flag_history.last().unwrap(),
            "fragmentation fallback stayed sticky to the end"
        );
        let first_frag = flag_history.iter().position(|&f| f).unwrap();
        let unstuck_at = first_frag
            + flag_history[first_frag..]
                .iter()
                .position(|&f| !f)
                .expect("flag must clear after fragmenting");
        assert!(
            unstuck_at < flag_history.len() - 1,
            "un-sticking must happen before the final removal so later \
             removals exercise the banded path (history: {flag_history:?})"
        );
    }

    #[test]
    fn engine_config_swaps_the_engine() {
        // Both engine selections must produce identical routings through
        // the public dispatch (the differential contract), with no shared
        // process state: each scratch pins its own config.
        use crate::engine::EngineConfig;
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 2.0),
                Comm::new(Coord::new(3, 0), Coord::new(0, 3), 1.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let mut live = RouteScratch::with_engine(EngineConfig::LIVE);
        let mut oracle = RouteScratch::with_engine(EngineConfig::REFERENCE);
        assert_eq!(live.engine().pr, EngineSel::Live);
        assert_eq!(oracle.engine().pr, EngineSel::Reference);
        let banded = PathRemover.route_with(&cs, &model, &mut live);
        let reference = PathRemover.route_with(&cs, &model, &mut oracle);
        assert_eq!(banded, reference);
    }
}
