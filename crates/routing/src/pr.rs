//! The Path-remover heuristic (§5.5).

use crate::comm::CommSet;
use crate::heuristic::Heuristic;
use crate::routing::Routing;
use crate::scratch::{reset_flags, select_max, RouteScratch};
use pamr_mesh::{Band, Coord, LinkId, LoadMap, Mesh, Path, Step};
use pamr_power::PowerModel;

/// **PR — Path remover** (§5.5).
///
/// Every communication starts (virtually) pre-routed over *all* its
/// Manhattan paths with the ideal fractional sharing of Figure 3. Links are
/// then removed iteratively: take the most loaded link and the largest
/// communication using it, and delete that link from the communication's
/// allowed set unless this would break its last remaining path (in which
/// case the next communication on the link is considered, then the next
/// link). After each deletion the allowed-link set is *cleaned* — links no
/// longer on any remaining source→sink path are dropped too — and the
/// communication's fractional load is re-spread over the surviving links of
/// each diagonal crossing. The process ends when every communication has
/// exactly one remaining path.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathRemover;

/// A violated structural invariant inside the PR heuristic.
///
/// These conditions cannot occur on well-formed Manhattan bands (path
/// cleaning preserves at least one source→sink path, and a resolved band's
/// surviving links chain by construction), so any occurrence is a bug — but
/// they were previously guarded only by `debug_assert!`/`unwrap`, which in
/// release builds silently divided by zero (NaN shares poisoning the load
/// map) or panicked with a bare `Option::unwrap` message. They are now
/// checked identically in debug and release and reported as a structured
/// error by [`PathRemover::try_route_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrError {
    /// Path cleaning left diagonal group `group` of communication `comm`
    /// with no alive link (the re-share would divide by zero).
    EmptiedGroup {
        /// Index of the communication in the instance.
        comm: usize,
        /// Diagonal-group index within the communication's band.
        group: usize,
    },
    /// Some communications remain unresolved but no link can be removed
    /// from any of them (the outer loop would spin or, previously,
    /// `final_path` would `unwrap` on a multi-link group).
    Stuck {
        /// Number of still-unresolved communications.
        unresolved: usize,
    },
    /// A resolved communication's surviving links do not chain from its
    /// source to its sink.
    BrokenChain {
        /// Index of the communication in the instance.
        comm: usize,
    },
}

impl std::fmt::Display for PrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrError::EmptiedGroup { comm, group } => write!(
                f,
                "PR path cleaning emptied diagonal group {group} of communication {comm}"
            ),
            PrError::Stuck { unresolved } => write!(
                f,
                "PR found no removable link although {unresolved} communication(s) remain unresolved"
            ),
            PrError::BrokenChain { comm } => write!(
                f,
                "PR resolved communication {comm} to links that do not chain into a path"
            ),
        }
    }
}

impl std::error::Error for PrError {}

/// Per-communication removal state.
struct PrComm {
    band: Band,
    weight: f64,
    /// Aliveness aligned with `band.groups()`.
    alive: Vec<Vec<bool>>,
    /// Current equal share per alive link, per group (`δ / alive_count`).
    share: Vec<f64>,
    /// True when every group retains exactly one link.
    resolved: bool,
}

impl PrComm {
    fn new(mesh: &Mesh, src: Coord, snk: Coord, weight: f64) -> Self {
        let band = Band::new(mesh, src, snk);
        let alive: Vec<Vec<bool>> = band.groups().iter().map(|g| vec![true; g.len()]).collect();
        let share: Vec<f64> = band
            .groups()
            .iter()
            .map(|g| weight / g.len() as f64)
            .collect();
        let resolved = band.groups().iter().all(|g| g.len() == 1);
        PrComm {
            band,
            weight,
            alive,
            share,
            resolved,
        }
    }

    /// Applies this communication's fractional load with sign `sign`.
    fn apply_loads(&self, loads: &mut LoadMap, sign: f64) {
        for (t, g) in self.band.groups().iter().enumerate() {
            let s = self.share[t] * sign;
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    loads.add(l, s);
                }
            }
        }
    }

    /// Removes link `(t_rm, j_rm)` and performs the paper's "path cleaning"
    /// and re-sharing, updating `loads` **incrementally**: only the links
    /// whose fractional contribution actually changed are touched (the
    /// removed link, newly-unreachable links, and the survivors of groups
    /// whose alive count shrank). Groups left untouched by the removal cost
    /// nothing — previously every removal re-applied the full band twice.
    ///
    /// `fwd` / `bwd` are reusable per-core reachability buffers; `ci` is
    /// the communication's index, used only to label [`PrError`]s.
    fn remove_and_reshare(
        &mut self,
        mesh: &Mesh,
        ci: usize,
        (t_rm, j_rm): (usize, usize),
        loads: &mut LoadMap,
        fwd: &mut Vec<bool>,
        bwd: &mut Vec<bool>,
    ) -> Result<(), PrError> {
        // Subtract the removed link's current share and kill it.
        loads.add(self.band.group(t_rm)[j_rm], -self.share[t_rm]);
        self.alive[t_rm][j_rm] = false;

        // Forward reachability from the source, diagonal by diagonal.
        let n = mesh.num_cores();
        reset_flags(fwd, n);
        fwd[mesh.core_index(self.band.src())] = true;
        for (t, g) in self.band.groups().iter().enumerate() {
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    let (from, to) = mesh.link_endpoints(l);
                    if fwd[mesh.core_index(from)] {
                        fwd[mesh.core_index(to)] = true;
                    }
                }
            }
        }
        // Backward reachability from the sink.
        reset_flags(bwd, n);
        bwd[mesh.core_index(self.band.snk())] = true;
        for (t, g) in self.band.groups().iter().enumerate().rev() {
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    let (from, to) = mesh.link_endpoints(l);
                    if bwd[mesh.core_index(to)] {
                        bwd[mesh.core_index(from)] = true;
                    }
                }
            }
        }
        // A link is useful iff it is alive and joins a forward-reachable
        // core to a backward-reachable one. Re-share each changed group.
        self.resolved = true;
        for (t, g) in self.band.groups().iter().enumerate() {
            let old_share = self.share[t];
            let mut count = 0usize;
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    let (from, to) = mesh.link_endpoints(l);
                    if fwd[mesh.core_index(from)] && bwd[mesh.core_index(to)] {
                        count += 1;
                    } else {
                        self.alive[t][j] = false;
                        loads.add(l, -old_share);
                    }
                }
            }
            // Checked in release too: dividing by a zero count would poison
            // the load map with NaN shares instead of failing loudly.
            if count == 0 {
                return Err(PrError::EmptiedGroup { comm: ci, group: t });
            }
            let new_share = self.weight / count as f64;
            // Exact comparison: an unchanged count reproduces the identical
            // quotient, so untouched groups skip the load updates entirely.
            if new_share != old_share {
                for (j, &l) in g.iter().enumerate() {
                    if self.alive[t][j] {
                        loads.add(l, new_share - old_share);
                    }
                }
                self.share[t] = new_share;
            }
            if count > 1 {
                self.resolved = false;
            }
        }
        Ok(())
    }

    /// Number of alive links in the group containing `link` and the link's
    /// position, if it is alive.
    fn locate(&self, mesh: &Mesh, link: LinkId) -> Option<(usize, usize, usize)> {
        if self.band.is_empty() {
            return None;
        }
        let (from, _) = mesh.link_endpoints(link);
        let k = mesh.diag_index(from, self.band.quadrant());
        let t = k.checked_sub(self.band.k_src())?;
        if t >= self.band.len() {
            return None;
        }
        let g = self.band.group(t);
        let j = g.iter().position(|&l| l == link)?;
        if !self.alive[t][j] {
            return None;
        }
        let count = self.alive[t].iter().filter(|&&a| a).count();
        Some((t, j, count))
    }

    /// Extracts the unique remaining path; `ci` labels errors. Fails with
    /// [`PrError::BrokenChain`] when the communication is not resolved or
    /// its surviving links do not connect source to sink — conditions the
    /// previous `unwrap`/`assert!` mix reported inconsistently.
    fn final_path(&self, mesh: &Mesh, ci: usize) -> Result<Path, PrError> {
        if !self.resolved {
            return Err(PrError::BrokenChain { comm: ci });
        }
        let mut cur = self.band.src();
        let mut moves: Vec<Step> = Vec::with_capacity(self.band.len());
        for (t, g) in self.band.groups().iter().enumerate() {
            let Some(j) = self.alive[t].iter().position(|&a| a) else {
                return Err(PrError::EmptiedGroup { comm: ci, group: t });
            };
            let link = g[j];
            let (from, to) = mesh.link_endpoints(link);
            if from != cur {
                return Err(PrError::BrokenChain { comm: ci });
            }
            moves.push(mesh.link_step(link));
            cur = to;
        }
        if cur != self.band.snk() {
            return Err(PrError::BrokenChain { comm: ci });
        }
        Ok(Path::from_moves(self.band.src(), moves))
    }
}

impl PathRemover {
    /// [`Heuristic::route_with`], but surfacing violated invariants as a
    /// structured [`PrError`] instead of panicking. The checks run in
    /// debug and release builds alike — the release build previously
    /// produced NaN load shares (silent `weight / 0`) or a bare
    /// `Option::unwrap` panic on the same conditions.
    pub fn try_route_with(
        &self,
        cs: &CommSet,
        _model: &PowerModel,
        scratch: &mut RouteScratch,
    ) -> Result<Routing, PrError> {
        let mesh = cs.mesh();
        let mut comms: Vec<PrComm> = cs
            .comms()
            .iter()
            .map(|c| PrComm::new(mesh, c.src, c.snk, c.weight))
            .collect();
        scratch.loads.fit(mesh);
        for c in &comms {
            c.apply_loads(&mut scratch.loads, 1.0);
        }
        // Which communications' bands contain each link (static superset,
        // built in reused buffers).
        let nslots = mesh.num_link_slots();
        for v in scratch.users.iter_mut() {
            v.clear();
        }
        if scratch.users.len() < nslots {
            scratch.users.resize_with(nslots, Vec::new);
        }
        for (i, c) in comms.iter().enumerate() {
            for l in c.band.links() {
                scratch.users[l.index()].push(i);
            }
        }

        // Iteratively remove the most loaded link from the largest
        // removable communication crossing it.
        let mut unresolved = comms.iter().filter(|c| !c.resolved).count();
        while unresolved > 0 {
            scratch.active.clear();
            scratch.active.extend(scratch.loads.iter_active());
            let mut removed = false;
            let mut next = 0;
            // Lazily select links in decreasing-load order: a removal
            // usually happens within the first few, so the full sort the
            // paper's description implies is almost never needed.
            'links: while let Some((link, _)) = select_max(&mut scratch.active, next) {
                next += 1;
                // Candidate communications by decreasing weight.
                scratch.cands.clear();
                scratch.cands.extend(
                    scratch.users[link.index()]
                        .iter()
                        .copied()
                        .filter(|&i| !comms[i].resolved),
                );
                scratch.cands.sort_by(|&a, &b| {
                    comms[b]
                        .weight
                        .partial_cmp(&comms[a].weight)
                        .unwrap()
                        .then(a.cmp(&b))
                });
                for &i in &scratch.cands {
                    // Removable iff the link is alive for the communication
                    // and its group keeps another alive link (every alive
                    // link lies on some path after cleaning, so a sibling
                    // link guarantees a surviving path).
                    if let Some((t, j, count)) = comms[i].locate(mesh, link) {
                        if count >= 2 {
                            comms[i].remove_and_reshare(
                                mesh,
                                i,
                                (t, j),
                                &mut scratch.loads,
                                &mut scratch.fwd,
                                &mut scratch.bwd,
                            )?;
                            if comms[i].resolved {
                                unresolved -= 1;
                            }
                            removed = true;
                            break 'links;
                        }
                    }
                }
            }
            // An unresolved communication always has a removable link;
            // failing that (previously a debug_assert + silent break that
            // let `final_path` panic) is a structural error in both builds.
            if !removed {
                return Err(PrError::Stuck { unresolved });
            }
        }

        let paths = comms
            .iter()
            .enumerate()
            .map(|(i, c)| c.final_path(mesh, i))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Routing::single(cs, paths))
    }
}

impl Heuristic for PathRemover {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        // A PrError is a routing-engine bug, not an infeasible instance:
        // escalate to a hard panic with the structured diagnosis, the same
        // way in debug and release builds.
        self.try_route_with(cs, model, scratch)
            .unwrap_or_else(|e| panic!("PR invariant violated: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::rules::xy_routing;
    use pamr_mesh::Mesh;
    use pamr_power::PowerModel;

    #[test]
    fn pr_resolves_to_single_paths() {
        let mesh = Mesh::new(5, 5);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(4, 4), 3.0),
                Comm::new(Coord::new(4, 0), Coord::new(0, 4), 2.0),
                Comm::new(Coord::new(0, 4), Coord::new(4, 0), 1.5),
                Comm::new(Coord::new(2, 2), Coord::new(2, 2), 1.0), // local
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = PathRemover.route(&cs, &model);
        assert!(r.is_structurally_valid(&cs, 1));
        assert_eq!(r.max_paths_per_comm(), 1);
        assert!(r.path(3).is_empty());
    }

    #[test]
    fn pr_separates_two_identical_flows() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let r = PathRemover.route(&cs, &model);
        let p = r.power(&cs, &model).unwrap().total();
        assert!(
            (p - 56.0).abs() < 1e-9,
            "PR should reach the 1-MP optimum 56, got {p}"
        );
    }

    #[test]
    fn pr_balances_heavy_parallel_traffic() {
        // Four equal flows corner to corner on a 3×3: best single-path max
        // load keeps pairs separated.
        let mesh = Mesh::new(3, 3);
        let comms = (0..4)
            .map(|_| Comm::new(Coord::new(0, 0), Coord::new(2, 2), 1.0))
            .collect();
        let cs = CommSet::new(mesh, comms);
        let model = PowerModel::theory(3.0);
        let r = PathRemover.route(&cs, &model);
        let loads = r.loads(&cs);
        // The two links out of the corner must carry 2.0 each (perfect
        // split); interior spread keeps the maximum at 2.0.
        assert!(
            loads.max_load() <= 2.0 + 1e-9,
            "max load {}",
            loads.max_load()
        );
        let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        let p_pr = r.power(&cs, &model).unwrap().total();
        assert!(p_pr < p_xy);
    }

    #[test]
    fn pr_handles_straight_lines() {
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(1, 0), Coord::new(1, 3), 2.0),
                Comm::new(Coord::new(0, 2), Coord::new(3, 2), 2.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = PathRemover.route(&cs, &model);
        assert_eq!(r.path(0).len(), 3);
        assert_eq!(r.path(1).len(), 3);
        assert!(r.path(0).bends() == 0 && r.path(1).bends() == 0);
    }

    #[test]
    fn emptied_group_is_a_structured_error_not_a_division() {
        // Regression: `remove_and_reshare` used to guard `weight / count`
        // with only a `debug_assert!`, so a release build would compute
        // `weight / 0` and spread NaN over the load map. Force the
        // condition by killing one of a group's two links behind the
        // cleaner's back, then removing the other.
        let mesh = Mesh::new(2, 2);
        let mut comm = PrComm::new(&mesh, Coord::new(0, 0), Coord::new(1, 1), 2.0);
        let mut loads = pamr_mesh::LoadMap::new(&mesh);
        comm.apply_loads(&mut loads, 1.0);
        comm.alive[1][1] = false;
        let (mut fwd, mut bwd) = (Vec::new(), Vec::new());
        let err = comm
            .remove_and_reshare(&mesh, 7, (1, 0), &mut loads, &mut fwd, &mut bwd)
            .unwrap_err();
        assert_eq!(err, PrError::EmptiedGroup { comm: 7, group: 0 });
        // The load map never saw a NaN share.
        assert!(loads.iter_active().all(|(_, l)| l.is_finite()));
    }

    #[test]
    fn unresolved_final_path_is_a_structured_error() {
        // Regression: `final_path` used to `unwrap` on an unresolved band
        // (both links of a group still alive), which the `!removed` early
        // break of the outer loop could reach in release builds.
        let mesh = Mesh::new(2, 2);
        let comm = PrComm::new(&mesh, Coord::new(0, 0), Coord::new(1, 1), 1.0);
        assert!(!comm.resolved);
        let err = comm.final_path(&mesh, 3).unwrap_err();
        assert_eq!(err, PrError::BrokenChain { comm: 3 });
    }

    #[test]
    fn try_route_with_succeeds_on_normal_instances() {
        let mesh = Mesh::new(5, 5);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(4, 4), 3.0),
                Comm::new(Coord::new(4, 0), Coord::new(0, 4), 2.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = PathRemover
            .try_route_with(&cs, &model, &mut crate::RouteScratch::new())
            .expect("well-formed instance must not trip PR invariants");
        assert!(r.is_structurally_valid(&cs, 1));
        assert_eq!(
            PrError::Stuck { unresolved: 2 }.to_string(),
            "PR found no removable link although 2 communication(s) remain unresolved"
        );
    }

    #[test]
    fn pr_loads_match_final_paths() {
        // After resolution the internal fractional loads must equal the
        // loads recomputed from the final single paths.
        let mesh = Mesh::new(6, 6);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 1), Coord::new(5, 4), 2.0),
                Comm::new(Coord::new(3, 0), Coord::new(1, 5), 1.0),
                Comm::new(Coord::new(5, 5), Coord::new(0, 0), 3.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = PathRemover.route(&cs, &model);
        // Re-derive loads from returned paths and check conservation:
        // each comm contributes weight × length.
        let loads = r.loads(&cs);
        let expected: f64 = cs.comms().iter().map(|c| c.weight * c.len() as f64).sum();
        assert!((loads.total() - expected).abs() < 1e-6);
    }
}
