//! The Path-remover heuristic (§5.5).

use crate::comm::CommSet;
use crate::heuristic::Heuristic;
use crate::routing::Routing;
use crate::scratch::{reset_flags, select_max, RouteScratch};
use pamr_mesh::{Band, Coord, LinkId, LoadMap, Mesh, Path, Step};
use pamr_power::PowerModel;

/// **PR — Path remover** (§5.5).
///
/// Every communication starts (virtually) pre-routed over *all* its
/// Manhattan paths with the ideal fractional sharing of Figure 3. Links are
/// then removed iteratively: take the most loaded link and the largest
/// communication using it, and delete that link from the communication's
/// allowed set unless this would break its last remaining path (in which
/// case the next communication on the link is considered, then the next
/// link). After each deletion the allowed-link set is *cleaned* — links no
/// longer on any remaining source→sink path are dropped too — and the
/// communication's fractional load is re-spread over the surviving links of
/// each diagonal crossing. The process ends when every communication has
/// exactly one remaining path.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathRemover;

/// Per-communication removal state.
struct PrComm {
    band: Band,
    weight: f64,
    /// Aliveness aligned with `band.groups()`.
    alive: Vec<Vec<bool>>,
    /// Current equal share per alive link, per group (`δ / alive_count`).
    share: Vec<f64>,
    /// True when every group retains exactly one link.
    resolved: bool,
}

impl PrComm {
    fn new(mesh: &Mesh, src: Coord, snk: Coord, weight: f64) -> Self {
        let band = Band::new(mesh, src, snk);
        let alive: Vec<Vec<bool>> = band.groups().iter().map(|g| vec![true; g.len()]).collect();
        let share: Vec<f64> = band
            .groups()
            .iter()
            .map(|g| weight / g.len() as f64)
            .collect();
        let resolved = band.groups().iter().all(|g| g.len() == 1);
        PrComm {
            band,
            weight,
            alive,
            share,
            resolved,
        }
    }

    /// Applies this communication's fractional load with sign `sign`.
    fn apply_loads(&self, loads: &mut LoadMap, sign: f64) {
        for (t, g) in self.band.groups().iter().enumerate() {
            let s = self.share[t] * sign;
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    loads.add(l, s);
                }
            }
        }
    }

    /// Removes link `(t_rm, j_rm)` and performs the paper's "path cleaning"
    /// and re-sharing, updating `loads` **incrementally**: only the links
    /// whose fractional contribution actually changed are touched (the
    /// removed link, newly-unreachable links, and the survivors of groups
    /// whose alive count shrank). Groups left untouched by the removal cost
    /// nothing — previously every removal re-applied the full band twice.
    ///
    /// `fwd` / `bwd` are reusable per-core reachability buffers.
    fn remove_and_reshare(
        &mut self,
        mesh: &Mesh,
        t_rm: usize,
        j_rm: usize,
        loads: &mut LoadMap,
        fwd: &mut Vec<bool>,
        bwd: &mut Vec<bool>,
    ) {
        // Subtract the removed link's current share and kill it.
        loads.add(self.band.group(t_rm)[j_rm], -self.share[t_rm]);
        self.alive[t_rm][j_rm] = false;

        // Forward reachability from the source, diagonal by diagonal.
        let n = mesh.num_cores();
        reset_flags(fwd, n);
        fwd[mesh.core_index(self.band.src())] = true;
        for (t, g) in self.band.groups().iter().enumerate() {
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    let (from, to) = mesh.link_endpoints(l);
                    if fwd[mesh.core_index(from)] {
                        fwd[mesh.core_index(to)] = true;
                    }
                }
            }
        }
        // Backward reachability from the sink.
        reset_flags(bwd, n);
        bwd[mesh.core_index(self.band.snk())] = true;
        for (t, g) in self.band.groups().iter().enumerate().rev() {
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    let (from, to) = mesh.link_endpoints(l);
                    if bwd[mesh.core_index(to)] {
                        bwd[mesh.core_index(from)] = true;
                    }
                }
            }
        }
        // A link is useful iff it is alive and joins a forward-reachable
        // core to a backward-reachable one. Re-share each changed group.
        self.resolved = true;
        for (t, g) in self.band.groups().iter().enumerate() {
            let old_share = self.share[t];
            let mut count = 0usize;
            for (j, &l) in g.iter().enumerate() {
                if self.alive[t][j] {
                    let (from, to) = mesh.link_endpoints(l);
                    if fwd[mesh.core_index(from)] && bwd[mesh.core_index(to)] {
                        count += 1;
                    } else {
                        self.alive[t][j] = false;
                        loads.add(l, -old_share);
                    }
                }
            }
            debug_assert!(count > 0, "cleaning must preserve at least one path");
            let new_share = self.weight / count as f64;
            // Exact comparison: an unchanged count reproduces the identical
            // quotient, so untouched groups skip the load updates entirely.
            if new_share != old_share {
                for (j, &l) in g.iter().enumerate() {
                    if self.alive[t][j] {
                        loads.add(l, new_share - old_share);
                    }
                }
                self.share[t] = new_share;
            }
            if count > 1 {
                self.resolved = false;
            }
        }
    }

    /// Number of alive links in the group containing `link` and the link's
    /// position, if it is alive.
    fn locate(&self, mesh: &Mesh, link: LinkId) -> Option<(usize, usize, usize)> {
        if self.band.is_empty() {
            return None;
        }
        let (from, _) = mesh.link_endpoints(link);
        let k = mesh.diag_index(from, self.band.quadrant());
        let t = k.checked_sub(self.band.k_src())?;
        if t >= self.band.len() {
            return None;
        }
        let g = self.band.group(t);
        let j = g.iter().position(|&l| l == link)?;
        if !self.alive[t][j] {
            return None;
        }
        let count = self.alive[t].iter().filter(|&&a| a).count();
        Some((t, j, count))
    }

    /// Extracts the unique remaining path (requires `resolved`).
    fn final_path(&self, mesh: &Mesh) -> Path {
        assert!(self.resolved);
        let mut cur = self.band.src();
        let mut moves: Vec<Step> = Vec::with_capacity(self.band.len());
        for (t, g) in self.band.groups().iter().enumerate() {
            let j = self.alive[t].iter().position(|&a| a).unwrap();
            let link = g[j];
            let (from, to) = mesh.link_endpoints(link);
            assert_eq!(from, cur, "resolved PR links do not chain into a path");
            moves.push(mesh.link_step(link));
            cur = to;
        }
        assert_eq!(cur, self.band.snk());
        Path::from_moves(self.band.src(), moves)
    }
}

impl Heuristic for PathRemover {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn route_with(&self, cs: &CommSet, _model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        let mesh = cs.mesh();
        let mut comms: Vec<PrComm> = cs
            .comms()
            .iter()
            .map(|c| PrComm::new(mesh, c.src, c.snk, c.weight))
            .collect();
        scratch.loads.fit(mesh);
        for c in &comms {
            c.apply_loads(&mut scratch.loads, 1.0);
        }
        // Which communications' bands contain each link (static superset,
        // built in reused buffers).
        let nslots = mesh.num_link_slots();
        for v in scratch.users.iter_mut() {
            v.clear();
        }
        if scratch.users.len() < nslots {
            scratch.users.resize_with(nslots, Vec::new);
        }
        for (i, c) in comms.iter().enumerate() {
            for l in c.band.links() {
                scratch.users[l.index()].push(i);
            }
        }

        // Iteratively remove the most loaded link from the largest
        // removable communication crossing it.
        let mut unresolved = comms.iter().filter(|c| !c.resolved).count();
        while unresolved > 0 {
            scratch.active.clear();
            scratch.active.extend(scratch.loads.iter_active());
            let mut removed = false;
            let mut next = 0;
            // Lazily select links in decreasing-load order: a removal
            // usually happens within the first few, so the full sort the
            // paper's description implies is almost never needed.
            'links: while let Some((link, _)) = select_max(&mut scratch.active, next) {
                next += 1;
                // Candidate communications by decreasing weight.
                scratch.cands.clear();
                scratch.cands.extend(
                    scratch.users[link.index()]
                        .iter()
                        .copied()
                        .filter(|&i| !comms[i].resolved),
                );
                scratch.cands.sort_by(|&a, &b| {
                    comms[b]
                        .weight
                        .partial_cmp(&comms[a].weight)
                        .unwrap()
                        .then(a.cmp(&b))
                });
                for &i in &scratch.cands {
                    // Removable iff the link is alive for the communication
                    // and its group keeps another alive link (every alive
                    // link lies on some path after cleaning, so a sibling
                    // link guarantees a surviving path).
                    if let Some((t, j, count)) = comms[i].locate(mesh, link) {
                        if count >= 2 {
                            comms[i].remove_and_reshare(
                                mesh,
                                t,
                                j,
                                &mut scratch.loads,
                                &mut scratch.fwd,
                                &mut scratch.bwd,
                            );
                            if comms[i].resolved {
                                unresolved -= 1;
                            }
                            removed = true;
                            break 'links;
                        }
                    }
                }
            }
            debug_assert!(
                removed,
                "an unresolved communication always has a removable link"
            );
            if !removed {
                break;
            }
        }

        Routing::single(cs, comms.iter().map(|c| c.final_path(mesh)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::rules::xy_routing;
    use pamr_mesh::Mesh;
    use pamr_power::PowerModel;

    #[test]
    fn pr_resolves_to_single_paths() {
        let mesh = Mesh::new(5, 5);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(4, 4), 3.0),
                Comm::new(Coord::new(4, 0), Coord::new(0, 4), 2.0),
                Comm::new(Coord::new(0, 4), Coord::new(4, 0), 1.5),
                Comm::new(Coord::new(2, 2), Coord::new(2, 2), 1.0), // local
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = PathRemover.route(&cs, &model);
        assert!(r.is_structurally_valid(&cs, 1));
        assert_eq!(r.max_paths_per_comm(), 1);
        assert!(r.path(3).is_empty());
    }

    #[test]
    fn pr_separates_two_identical_flows() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let r = PathRemover.route(&cs, &model);
        let p = r.power(&cs, &model).unwrap().total();
        assert!(
            (p - 56.0).abs() < 1e-9,
            "PR should reach the 1-MP optimum 56, got {p}"
        );
    }

    #[test]
    fn pr_balances_heavy_parallel_traffic() {
        // Four equal flows corner to corner on a 3×3: best single-path max
        // load keeps pairs separated.
        let mesh = Mesh::new(3, 3);
        let comms = (0..4)
            .map(|_| Comm::new(Coord::new(0, 0), Coord::new(2, 2), 1.0))
            .collect();
        let cs = CommSet::new(mesh, comms);
        let model = PowerModel::theory(3.0);
        let r = PathRemover.route(&cs, &model);
        let loads = r.loads(&cs);
        // The two links out of the corner must carry 2.0 each (perfect
        // split); interior spread keeps the maximum at 2.0.
        assert!(
            loads.max_load() <= 2.0 + 1e-9,
            "max load {}",
            loads.max_load()
        );
        let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        let p_pr = r.power(&cs, &model).unwrap().total();
        assert!(p_pr < p_xy);
    }

    #[test]
    fn pr_handles_straight_lines() {
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(1, 0), Coord::new(1, 3), 2.0),
                Comm::new(Coord::new(0, 2), Coord::new(3, 2), 2.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = PathRemover.route(&cs, &model);
        assert_eq!(r.path(0).len(), 3);
        assert_eq!(r.path(1).len(), 3);
        assert!(r.path(0).bends() == 0 && r.path(1).bends() == 0);
    }

    #[test]
    fn pr_loads_match_final_paths() {
        // After resolution the internal fractional loads must equal the
        // loads recomputed from the final single paths.
        let mesh = Mesh::new(6, 6);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 1), Coord::new(5, 4), 2.0),
                Comm::new(Coord::new(3, 0), Coord::new(1, 5), 1.0),
                Comm::new(Coord::new(5, 5), Coord::new(0, 0), 3.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = PathRemover.route(&cs, &model);
        // Re-derive loads from returned paths and check conservation:
        // each comm contributes weight × length.
        let loads = r.loads(&cs);
        let expected: f64 = cs.comms().iter().map(|c| c.weight * c.len() as f64).sum();
        assert!((loads.total() - expected).abs() < 1e-6);
    }
}
