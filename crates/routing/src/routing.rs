//! Routings: weighted Manhattan paths per communication, their validity
//! and their power (§3.4 of the paper).

use crate::comm::CommSet;
use pamr_mesh::{LoadMap, Path};
use pamr_power::{Infeasible, PowerBreakdown, PowerModel};
use serde::{Deserialize, Serialize};

/// Relative tolerance used when checking that a communication's flows sum
/// to its weight.
const FLOW_EPS: f64 = 1e-6;

/// A routing of a [`CommSet`]: for every communication, one or more
/// `(path, rate)` flows.
///
/// * **XY / 1-MP** routings have exactly one flow per communication carrying
///   its full weight;
/// * **s-MP / max-MP** routings may split a communication over several
///   Manhattan paths (all with the same endpoints), the rates summing to
///   the weight (§3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Routing {
    flows: Vec<Vec<(Path, f64)>>,
}

impl Routing {
    /// Single-path routing: `paths[i]` carries the full weight of
    /// communication `i`.
    pub fn single(cs: &CommSet, paths: Vec<Path>) -> Self {
        assert_eq!(paths.len(), cs.len());
        let flows = paths
            .into_iter()
            .zip(cs.comms())
            .map(|(p, c)| vec![(p, c.weight)])
            .collect();
        Routing { flows }
    }

    /// Multi-path routing from raw flows (one vector per communication).
    pub fn multi(flows: Vec<Vec<(Path, f64)>>) -> Self {
        Routing { flows }
    }

    /// The flows of communication `i`.
    #[inline]
    pub fn flows(&self, i: usize) -> &[(Path, f64)] {
        &self.flows[i]
    }

    /// All flows.
    #[inline]
    pub fn all_flows(&self) -> &[Vec<(Path, f64)>] {
        &self.flows
    }

    /// Number of communications covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True iff the routing covers no communication.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The single path of communication `i`.
    ///
    /// # Panics
    /// Panics if the communication is split over several paths.
    pub fn path(&self, i: usize) -> &Path {
        assert_eq!(
            self.flows[i].len(),
            1,
            "communication {i} uses {} paths",
            self.flows[i].len()
        );
        &self.flows[i][0].0
    }

    /// Maximum number of paths used by any single communication (the `s` of
    /// s-MP for which this routing is admissible).
    pub fn max_paths_per_comm(&self) -> usize {
        self.flows.iter().map(|f| f.len()).max().unwrap_or(0)
    }

    /// Aggregated per-link loads.
    pub fn loads(&self, cs: &CommSet) -> LoadMap {
        let mut lm = LoadMap::new(cs.mesh());
        for flows in &self.flows {
            for (path, rate) in flows {
                lm.add_path(cs.mesh(), path, *rate);
            }
        }
        lm
    }

    /// Structural validity (§3.3/§3.4, *excluding* the bandwidth
    /// constraint): every communication is covered, each flow is a Manhattan
    /// path from its source to its sink, rates are positive and sum to the
    /// communication's weight, and no communication uses more than
    /// `max_paths` paths (`usize::MAX` for max-MP).
    pub fn is_structurally_valid(&self, cs: &CommSet, max_paths: usize) -> bool {
        if self.flows.len() != cs.len() {
            return false;
        }
        for (i, c) in cs.comms().iter().enumerate() {
            let flows = &self.flows[i];
            if flows.is_empty() || flows.len() > max_paths {
                return false;
            }
            let mut sum = 0.0;
            for (path, rate) in flows {
                if *rate <= 0.0
                    || path.src() != c.src
                    || path.snk() != c.snk
                    || !path.is_manhattan(cs.mesh())
                {
                    return false;
                }
                sum += rate;
            }
            if (sum - c.weight).abs() > FLOW_EPS * c.weight.max(1.0) {
                return false;
            }
        }
        true
    }

    /// Power of the routing under `model`, or `Err(Infeasible)` when some
    /// link bandwidth is exceeded (the heuristic *failed* on this instance,
    /// in the paper's terminology).
    pub fn power(&self, cs: &CommSet, model: &PowerModel) -> Result<PowerBreakdown, Infeasible> {
        model.power(cs.mesh(), &self.loads(cs))
    }

    /// True iff no link bandwidth is exceeded under `model`.
    pub fn is_feasible(&self, cs: &CommSet, model: &PowerModel) -> bool {
        self.power(cs, model).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use pamr_mesh::{Coord, Mesh};

    fn fig2_instance() -> CommSet {
        let mesh = Mesh::new(2, 2);
        CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        )
    }

    #[test]
    fn fig2_xy_vs_1mp_vs_2mp() {
        // Reproduces Figure 2 exactly: P_XY = 128, P_1MP = 56, P_2MP = 32.
        let cs = fig2_instance();
        let model = PowerModel::fig2();
        let src = Coord::new(0, 0);
        let snk = Coord::new(1, 1);

        let xy = Routing::single(&cs, vec![Path::xy(src, snk), Path::xy(src, snk)]);
        assert!(xy.is_structurally_valid(&cs, 1));
        assert!((xy.power(&cs, &model).unwrap().total() - 128.0).abs() < 1e-9);

        let mp1 = Routing::single(&cs, vec![Path::xy(src, snk), Path::yx(src, snk)]);
        assert!((mp1.power(&cs, &model).unwrap().total() - 56.0).abs() < 1e-9);

        let mp2 = Routing::multi(vec![
            vec![(Path::xy(src, snk), 1.0)],
            vec![(Path::xy(src, snk), 1.0), (Path::yx(src, snk), 2.0)],
        ]);
        assert!(mp2.is_structurally_valid(&cs, 2));
        assert!(!mp2.is_structurally_valid(&cs, 1));
        assert!((mp2.power(&cs, &model).unwrap().total() - 32.0).abs() < 1e-9);
        assert_eq!(mp2.max_paths_per_comm(), 2);
    }

    #[test]
    fn structural_validity_rejects_wrong_endpoints() {
        let cs = fig2_instance();
        let bad = Routing::single(
            &cs,
            vec![
                Path::xy(Coord::new(0, 0), Coord::new(1, 0)), // wrong sink
                Path::xy(Coord::new(0, 0), Coord::new(1, 1)),
            ],
        );
        assert!(!bad.is_structurally_valid(&cs, 1));
    }

    #[test]
    fn structural_validity_rejects_wrong_rate_sum() {
        let cs = fig2_instance();
        let src = Coord::new(0, 0);
        let snk = Coord::new(1, 1);
        let bad = Routing::multi(vec![
            vec![(Path::xy(src, snk), 1.0)],
            vec![(Path::xy(src, snk), 1.0), (Path::yx(src, snk), 1.0)], // sums to 2 ≠ 3
        ]);
        assert!(!bad.is_structurally_valid(&cs, 2));
    }

    #[test]
    fn feasibility_matches_capacity() {
        let cs = fig2_instance(); // total weight 4, BW = 4
        let model = PowerModel::fig2();
        let src = Coord::new(0, 0);
        let snk = Coord::new(1, 1);
        let xy = Routing::single(&cs, vec![Path::xy(src, snk), Path::xy(src, snk)]);
        assert!(xy.is_feasible(&cs, &model)); // exactly at capacity
        let tight = PowerModel::continuous(0.0, 1.0, 3.0, 3.9);
        assert!(!xy.is_feasible(&cs, &tight));
    }

    #[test]
    fn loads_accumulate_over_flows() {
        let cs = fig2_instance();
        let src = Coord::new(0, 0);
        let snk = Coord::new(1, 1);
        let r = Routing::multi(vec![
            vec![(Path::xy(src, snk), 1.0)],
            vec![(Path::xy(src, snk), 1.5), (Path::yx(src, snk), 1.5)],
        ]);
        let lm = r.loads(&cs);
        assert!((lm.max_load() - 2.5).abs() < 1e-12);
        assert_eq!(lm.active_links(), 4);
        assert!((lm.total() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_routing() {
        let cs = CommSet::new(Mesh::new(2, 2), vec![]);
        let r = Routing::single(&cs, vec![]);
        assert!(r.is_empty());
        assert!(r.is_structurally_valid(&cs, 1));
        assert_eq!(r.max_paths_per_comm(), 0);
        let model = PowerModel::fig2();
        assert_eq!(r.power(&cs, &model).unwrap().total(), 0.0);
    }
}
