//! Bi-objective power × max-hop-latency frontier (ε-constraint
//! scalarization).
//!
//! The paper optimises power alone; every routing also has a **latency**:
//! a link running at effective bandwidth `b` forwards one unit in `1/b`
//! time, a communication's latency is the (worst-path) sum of its links'
//! latencies, and a routing's latency is the maximum over communications.
//! Under discrete frequency scaling the two objectives genuinely trade
//! off — running a link *above* its load-minimal level burns more power
//! but lowers its hop latency — so the interesting object is the Pareto
//! frontier.
//!
//! The frontier is computed by ε-constraint scalarization: a range of
//! latency budgets (the **segments**) is fixed, and each segment is solved
//! independently — for every candidate routing (the six §6 policies plus
//! the [`FwMp`] rounder), links on the critical path are greedily uplifted
//! to the next frequency level, best latency-gain-per-power-cost first,
//! until the budget is met. Segments are embarrassingly parallel (each
//! touches only its own budget), which is exactly the shape the `pamr-sim`
//! work pool fans out; the per-segment point lists are then merged and
//! [dominance-filtered](pareto_filter) into a deterministic Pareto set.
//! Everything here is pure and single-threaded so that a sharded run can
//! be byte-identical to a 1-process run.
//!
//! Under continuous scaling the load-minimal level is also the
//! latency-minimal one for a fixed routing (uplift has no discrete step to
//! buy), so the frontier degenerates to the portfolio's non-dominated
//! base points.

use crate::comm::CommSet;
use crate::heuristic::{Heuristic, HeuristicKind};
use crate::multipath::FwMp;
use crate::routing::Routing;
use crate::scratch::RouteScratch;
use pamr_mesh::LinkId;
use pamr_power::{FrequencyScale, PowerModel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Relative slack on latency-budget comparisons, mirroring the capacity
/// slack of the power model.
const LATENCY_EPS: f64 = 1e-9;

/// One latency budget of the ε-constraint sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Position in the sweep (`0..segments`), tightest budget first.
    pub index: usize,
    /// Maximum admissible routing latency (see the [module docs](self)).
    pub budget: f64,
}

/// One point of the power × latency plane: a routing (identified by its
/// label) with a frequency-level assignment meeting a latency budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Total power at the chosen levels (leakage + dynamic).
    pub power: f64,
    /// Routing latency at the chosen levels.
    pub latency: f64,
    /// Candidate routing that produced the point ("XY", "PR",
    /// "FW-MP(s=2)", …).
    pub label: String,
}

/// A candidate routing competing on the frontier.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Display label ("XY" … "PR", "FW-MP(s=…)").
    pub label: String,
    /// The routing (fixed across the sweep; only link levels vary).
    pub routing: Routing,
}

/// One frontier instance: the communications, the model, and the sweep
/// shape.
#[derive(Debug, Clone, Copy)]
pub struct FrontierProblem<'a> {
    /// The instance.
    pub cs: &'a CommSet,
    /// The power model (its scale decides whether uplift exists).
    pub model: &'a PowerModel,
    /// Number of ε-constraint budgets.
    pub segments: usize,
    /// Path bound of the [`FwMp`] candidate; `< 2` drops the multi-path
    /// candidate and sweeps the 1-MP portfolio only.
    pub split: usize,
}

impl FrontierProblem<'_> {
    /// The candidate routings, in deterministic order: the six §6 policies,
    /// then (for `split ≥ 2`) the Frank–Wolfe s-MP rounder.
    pub fn candidates(&self, scratch: &mut RouteScratch) -> Vec<Candidate> {
        let mut out: Vec<Candidate> = HeuristicKind::ALL
            .iter()
            .map(|kind| Candidate {
                label: kind.name().to_string(),
                routing: kind.route_with(self.cs, self.model, scratch),
            })
            .collect();
        if self.split >= 2 {
            out.push(Candidate {
                label: format!("FW-MP(s={})", self.split),
                routing: FwMp::new(self.split).route_with(self.cs, self.model, scratch),
            });
        }
        out
    }

    /// The sweep's budgets: `segments` values linearly spaced from the
    /// tightest achievable latency (every active link at the top level,
    /// minimized over feasible candidates) to the loosest needed one (the
    /// largest load-minimal latency). Empty when no candidate is feasible.
    pub fn segment_budgets(&self, candidates: &[Candidate]) -> Vec<Segment> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for cand in candidates {
            let Some((_, base_lat)) = base_point(self.cs, self.model, &cand.routing) else {
                continue;
            };
            hi = hi.max(base_lat);
            lo = lo.min(min_latency(self.cs, self.model, &cand.routing).unwrap_or(base_lat));
        }
        if !hi.is_finite() || self.segments == 0 {
            return Vec::new();
        }
        (0..self.segments)
            .map(|index| {
                let t = if self.segments == 1 {
                    1.0
                } else {
                    index as f64 / (self.segments - 1) as f64
                };
                Segment {
                    index,
                    budget: lo + (hi - lo) * t,
                }
            })
            .collect()
    }

    /// Solves one segment: for every candidate, the cheapest level
    /// assignment meeting the budget (greedy uplift; see the
    /// [module docs](self)). Candidates that cannot meet the budget (or
    /// are infeasible outright) contribute no point. Pure and
    /// deterministic — the fan-out unit of the `pamr frontier` pool.
    pub fn solve_segment(&self, candidates: &[Candidate], segment: Segment) -> Vec<FrontierPoint> {
        candidates
            .iter()
            .filter_map(|cand| self.point_under_budget(cand, segment.budget))
            .collect()
    }

    fn point_under_budget(&self, cand: &Candidate, budget: f64) -> Option<FrontierPoint> {
        match &self.model.scale {
            FrequencyScale::Continuous => {
                let (power, latency) = base_point(self.cs, self.model, &cand.routing)?;
                (latency <= budget * (1.0 + LATENCY_EPS) + f64::MIN_POSITIVE).then(|| {
                    FrontierPoint {
                        power,
                        latency,
                        label: cand.label.clone(),
                    }
                })
            }
            FrequencyScale::Discrete(levels) => {
                greedy_uplift(self.cs, self.model, levels, cand, budget)
            }
        }
    }
}

/// Power and latency of a routing at its load-minimal levels; `None` when
/// some link is overloaded.
fn base_point(cs: &CommSet, model: &PowerModel, routing: &Routing) -> Option<(f64, f64)> {
    let power = routing.power(cs, model).ok()?.total();
    let loads = routing.loads(cs);
    let mut latency: BTreeMap<LinkId, f64> = BTreeMap::new();
    for (l, load) in loads.iter_active() {
        latency.insert(l, 1.0 / model.effective_bandwidth(load)?);
    }
    Some((power, routing_latency(cs, routing, &latency).0))
}

/// Tightest latency reachable for a fixed routing: every active link at
/// the top discrete level (`None` under continuous scaling: the base point
/// is already tight).
fn min_latency(cs: &CommSet, model: &PowerModel, routing: &Routing) -> Option<f64> {
    let FrequencyScale::Discrete(levels) = &model.scale else {
        return None;
    };
    let top = *levels.last()?;
    let loads = routing.loads(cs);
    let mut latency: BTreeMap<LinkId, f64> = BTreeMap::new();
    for (l, _) in loads.iter_active() {
        latency.insert(l, 1.0 / top);
    }
    Some(routing_latency(cs, routing, &latency).0)
}

/// The routing latency under per-link latencies, plus the critical
/// `(comm, path)` pair achieving it (first in comm order, then flow
/// order — deterministic). Idle comms contribute zero.
fn routing_latency(
    cs: &CommSet,
    routing: &Routing,
    latency: &BTreeMap<LinkId, f64>,
) -> (f64, (usize, usize)) {
    let mesh = cs.mesh();
    let mut worst = 0.0f64;
    let mut critical = (0usize, 0usize);
    for i in 0..cs.len() {
        for (j, (path, _)) in routing.flows(i).iter().enumerate() {
            let lat: f64 = path
                .links(mesh)
                .map(|l| latency.get(&l).copied().unwrap_or(0.0))
                .sum();
            if lat > worst {
                worst = lat;
                critical = (i, j);
            }
        }
    }
    (worst, critical)
}

/// Greedy ε-constraint solve for one candidate under a discrete scale:
/// start from the load-minimal level of every active link and repeatedly
/// uplift one link on the critical path — the one buying the most latency
/// per unit of extra power (ties to the smaller [`LinkId`]) — until the
/// budget is met or the critical path has nothing left to uplift.
fn greedy_uplift(
    cs: &CommSet,
    model: &PowerModel,
    levels: &[f64],
    cand: &Candidate,
    budget: f64,
) -> Option<FrontierPoint> {
    let mesh = cs.mesh();
    let loads = cand.routing.loads(cs);
    // Load-minimal level index per active link; an unservable load makes
    // the whole candidate infeasible.
    let mut level: BTreeMap<LinkId, usize> = BTreeMap::new();
    let slack = model.capacity * pamr_power::model::CAPACITY_EPS;
    for (l, load) in loads.iter_active() {
        let idx = levels.iter().position(|&lv| load <= lv + slack)?;
        level.insert(l, idx);
    }
    let link_latency = |level: &BTreeMap<LinkId, usize>| -> BTreeMap<LinkId, f64> {
        level.iter().map(|(&l, &i)| (l, 1.0 / levels[i])).collect()
    };
    let allowed = budget * (1.0 + LATENCY_EPS) + f64::MIN_POSITIVE;
    loop {
        let lat_map = link_latency(&level);
        let (lat, (ci, pj)) = routing_latency(cs, &cand.routing, &lat_map);
        if lat <= allowed {
            let power: f64 = level
                .values()
                .map(|&i| model.p_leak + model.p0 * (levels[i] * model.load_unit).powf(model.alpha))
                .sum();
            return Some(FrontierPoint {
                power,
                latency: lat,
                label: cand.label.clone(),
            });
        }
        // Best uplift on the critical path: max Δlatency/Δpower, ties to
        // the smaller link id (BTreeMap order scans ids ascending and we
        // replace only on a strict improvement).
        let (crit_path, _) = &cand.routing.flows(ci)[pj];
        let mut best: Option<(f64, LinkId)> = None;
        for l in crit_path.links(mesh) {
            let Some(&i) = level.get(&l) else { continue };
            if i + 1 >= levels.len() {
                continue;
            }
            let d_lat = 1.0 / levels[i] - 1.0 / levels[i + 1];
            let d_pow = model.p0
                * ((levels[i + 1] * model.load_unit).powf(model.alpha)
                    - (levels[i] * model.load_unit).powf(model.alpha));
            let score = d_lat / d_pow.max(f64::MIN_POSITIVE);
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, l));
            }
        }
        let (_, uplift) = best?; // critical path saturated: budget unreachable
        *level.get_mut(&uplift).expect("came from the map") += 1;
    }
}

/// Keeps the non-dominated points, in deterministic order: ascending
/// latency ([`f64::total_cmp`]), then ascending power, then label. A point
/// is dropped iff some other point has `latency ≤` **and** `power ≤` with
/// at least one strict (exact duplicates keep the lexicographically
/// smallest label).
pub fn pareto_filter(mut points: Vec<FrontierPoint>) -> Vec<FrontierPoint> {
    points.sort_by(|a, b| {
        a.latency
            .total_cmp(&b.latency)
            .then(a.power.total_cmp(&b.power))
            .then(a.label.cmp(&b.label))
    });
    let mut out: Vec<FrontierPoint> = Vec::new();
    let mut best_power = f64::INFINITY;
    for p in points {
        // Sorted by latency: every earlier point has latency ≤ p's, so p
        // survives iff it strictly beats the best power seen so far.
        if p.power < best_power {
            best_power = p.power;
            out.push(p);
        }
    }
    out
}

/// The full frontier of a problem, single-threaded: route the candidates,
/// sweep every segment, merge and dominance-filter. The parallel
/// `pamr frontier` pipeline must produce byte-identical output.
pub fn frontier_points(problem: &FrontierProblem) -> Vec<FrontierPoint> {
    let mut scratch = RouteScratch::new();
    let candidates = problem.candidates(&mut scratch);
    let segments = problem.segment_budgets(&candidates);
    let mut all = Vec::new();
    for seg in segments {
        all.extend(problem.solve_segment(&candidates, seg));
    }
    pareto_filter(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use pamr_mesh::{Coord, Mesh};

    fn kh_instance() -> CommSet {
        CommSet::new(
            Mesh::new(4, 4),
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 900.0),
                Comm::new(Coord::new(0, 3), Coord::new(3, 0), 1400.0),
                Comm::new(Coord::new(1, 0), Coord::new(2, 3), 600.0),
            ],
        )
    }

    #[test]
    fn frontier_is_dominance_free_and_sorted() {
        let cs = kh_instance();
        let model = PowerModel::kim_horowitz();
        let problem = FrontierProblem {
            cs: &cs,
            model: &model,
            segments: 8,
            split: 2,
        };
        let pts = frontier_points(&problem);
        assert!(!pts.is_empty(), "feasible instance must yield points");
        for w in pts.windows(2) {
            assert!(w[0].latency <= w[1].latency, "latency must ascend");
            assert!(w[1].power < w[0].power, "power must strictly descend");
        }
    }

    #[test]
    fn tighter_budgets_cost_power() {
        // The tightest segment runs links above their load-minimal level,
        // so its cheapest point must cost at least as much as the loosest
        // segment's (and strictly more when an uplift actually happened).
        let cs = kh_instance();
        let model = PowerModel::kim_horowitz();
        let problem = FrontierProblem {
            cs: &cs,
            model: &model,
            segments: 6,
            split: 0,
        };
        let mut scratch = RouteScratch::new();
        let cands = problem.candidates(&mut scratch);
        let segs = problem.segment_budgets(&cands);
        let tight = problem.solve_segment(&cands, segs[0]);
        let loose = problem.solve_segment(&cands, *segs.last().unwrap());
        let min_p =
            |pts: &[FrontierPoint]| pts.iter().map(|p| p.power).fold(f64::INFINITY, f64::min);
        assert!(!loose.is_empty());
        if !tight.is_empty() {
            assert!(min_p(&tight) >= min_p(&loose));
        }
    }

    #[test]
    fn continuous_scale_yields_portfolio_points_only() {
        let cs = kh_instance();
        let model = PowerModel::kim_horowitz_continuous();
        let problem = FrontierProblem {
            cs: &cs,
            model: &model,
            segments: 5,
            split: 2,
        };
        let pts = frontier_points(&problem);
        assert!(!pts.is_empty());
        // No uplift exists, so every point is a candidate base point and
        // the Pareto set is at most the candidate count.
        assert!(pts.len() <= 7);
    }

    #[test]
    fn pareto_filter_drops_dominated_and_duplicate_points() {
        let p = |power: f64, latency: f64, label: &str| FrontierPoint {
            power,
            latency,
            label: label.to_string(),
        };
        let pts = pareto_filter(vec![
            p(10.0, 1.0, "a"),
            p(9.0, 2.0, "b"),
            p(11.0, 2.0, "dominated"),
            p(9.0, 2.0, "b-dup"),
            p(8.0, 3.0, "c"),
        ]);
        let labels: Vec<_> = pts.iter().map(|q| q.label.as_str()).collect();
        assert_eq!(labels, ["a", "b", "c"], "got {labels:?}");
    }

    #[test]
    fn infeasible_instance_has_an_empty_frontier() {
        let cs = CommSet::new(
            Mesh::new(2, 2),
            vec![Comm::new(Coord::new(0, 0), Coord::new(1, 1), 9000.0)],
        );
        let model = PowerModel::kim_horowitz(); // top level 3500 < 9000
        let problem = FrontierProblem {
            cs: &cs,
            model: &model,
            segments: 4,
            split: 2,
        };
        assert!(frontier_points(&problem).is_empty());
    }
}
