//! The ideal fractional sharing of Figure 3, and the diagonal-aggregation
//! power lower bound used by the proofs of Theorems 1 and 2.
//!
//! *Ideal sharing* distributes a communication's traffic equally over all
//! the links its Manhattan paths can use between two successive diagonals.
//! The paper notes "such a splitting cannot be achieved but provides a
//! bound on how to load-balance the communication across the links"; the
//! IG and PR heuristics use it as a virtual initial distribution, and the
//! theory uses the whole-diagonal variant as a lower bound on any
//! Manhattan routing's dynamic power.

use crate::comm::{Comm, CommSet};
use pamr_mesh::{LinkId, LoadMap, Mesh, Quadrant};
use pamr_power::{FrequencyScale, PowerModel};

/// Per-link contribution of one communication under band-restricted ideal
/// sharing: weight `δ / |group|` on every link of each of its band groups.
pub fn comm_ideal_contribution(mesh: &Mesh, comm: &Comm) -> Vec<(LinkId, f64)> {
    let band = comm.band(mesh);
    let mut out = Vec::new();
    for g in band.groups() {
        let share = comm.weight / g.len() as f64;
        out.extend(g.iter().map(|&l| (l, share)));
    }
    out
}

/// Aggregated ideal-sharing loads of a whole instance (the virtual
/// pre-routing that IG removes communication by communication, §5.2).
pub fn ideal_loads(cs: &CommSet) -> LoadMap {
    let mut lm = LoadMap::new(cs.mesh());
    for comm in cs.comms() {
        for (l, share) in comm_ideal_contribution(cs.mesh(), comm) {
            lm.add(l, share);
        }
    }
    lm
}

/// Number of links going from diagonal `k` to diagonal `k + 1` of direction
/// `d` **on the whole mesh** (the `2k`, `2p − 1`, … coefficients in the
/// proof of Theorem 1).
pub fn links_between_diagonals(mesh: &Mesh, d: Quadrant, k: usize) -> usize {
    let (sv, sh) = d.steps();
    mesh.diagonal(d, k)
        .into_iter()
        .map(|c| {
            [sv, sh]
                .into_iter()
                .filter(|&s| mesh.step(c, s).is_some())
                .count()
        })
        .sum()
}

/// Lower bound on the **dynamic** power of *any* Manhattan routing
/// (single- or multi-path) of the instance, under continuous frequency
/// scaling.
///
/// Following the proof of Theorem 2: for every direction `d` and diagonal
/// `k`, the total weight `K_k^{(d)}` of communications of direction `d`
/// crossing diagonal `k` must traverse the `n_k^{(d)}` links between
/// `D_k^{(d)}` and `D_{k+1}^{(d)}`; by convexity of the power function the
/// cheapest conceivable arrangement spreads it equally, costing
/// `n · P_dyn(K/n)`. Summing over directions and diagonals lower-bounds the
/// true power because each direction's communications use disjoint
/// link-crossing events (a link crossed in direction `d` by a flow counts
/// against that flow's diagonal only, and the bound ignores inter-direction
/// sharing, which can only increase convex costs).
pub fn ideal_power_lower_bound(cs: &CommSet, model: &PowerModel) -> f64 {
    // The bound is computed with exact (continuous) frequency matching;
    // discrete levels only round bandwidth up, so the continuous figure
    // remains a valid lower bound.
    let cont = PowerModel {
        scale: FrequencyScale::Continuous,
        capacity: f64::INFINITY,
        p_leak: 0.0,
        ..model.clone()
    };
    let mesh = cs.mesh();
    let mut bound = 0.0;
    for d in Quadrant::ALL {
        // K_k^{(d)}: total weight of direction-d communications whose source
        // diagonal is ≤ k and sink diagonal is > k.
        let mut cross = vec![0.0; mesh.num_diagonals()];
        for c in cs.comms() {
            if c.is_local() || c.quadrant() != d {
                continue;
            }
            let ks = mesh.diag_index(c.src, d);
            let ke = mesh.diag_index(c.snk, d);
            for slot in &mut cross[ks..ke] {
                *slot += c.weight;
            }
        }
        for (k, &load) in cross.iter().enumerate() {
            if load == 0.0 {
                continue;
            }
            let n = links_between_diagonals(mesh, d, k) as f64;
            debug_assert!(n > 0.0);
            bound += n * cont.link_dynamic_power(load / n).unwrap();
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::xy_routing;
    use pamr_mesh::{Coord, Mesh};

    #[test]
    fn contribution_conserves_weight_per_diagonal() {
        let mesh = Mesh::new(5, 5);
        let comm = Comm::new(Coord::new(0, 0), Coord::new(3, 2), 10.0);
        let band = comm.band(&mesh);
        let contrib = comm_ideal_contribution(&mesh, &comm);
        // Per diagonal crossing, shares sum to the full weight.
        let mut per_group = vec![0.0; band.len()];
        for (l, share) in &contrib {
            per_group[band.group_of(&mesh, *l)] += share;
        }
        for (t, s) in per_group.iter().enumerate() {
            assert!((s - 10.0).abs() < 1e-9, "group {t} sums to {s}");
        }
    }

    #[test]
    fn ideal_loads_total_is_weight_times_length() {
        let mesh = Mesh::new(6, 6);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(2, 2), 4.0),
                Comm::new(Coord::new(5, 5), Coord::new(3, 0), 2.0),
            ],
        );
        let lm = ideal_loads(&cs);
        let expected = 4.0 * 4.0 + 2.0 * 7.0;
        assert!((lm.total() - expected).abs() < 1e-9);
    }

    #[test]
    fn whole_mesh_diagonal_link_counts_match_theorem1() {
        // Proof of Theorem 1: 2k links for k < p, 2p−1 in the middle band of
        // a p×q mesh, then symmetric. (0-based k here.)
        let mesh = Mesh::new(3, 5);
        let d = Quadrant::DownRight;
        // k=0: corner core, 2 links.
        assert_eq!(links_between_diagonals(&mesh, d, 0), 2);
        // k=1: two cores, 4 links.
        assert_eq!(links_between_diagonals(&mesh, d, 1), 4);
        // k=2: three cores but the bottom one cannot go down: 2p−1 = 5.
        assert_eq!(links_between_diagonals(&mesh, d, 2), 5);
        assert_eq!(links_between_diagonals(&mesh, d, 3), 5);
        assert_eq!(links_between_diagonals(&mesh, d, 4), 4);
        assert_eq!(links_between_diagonals(&mesh, d, 5), 2);
    }

    #[test]
    fn diagonal_links_partition_all_links() {
        // Every link goes between consecutive diagonals of exactly two
        // directions; summing counts over one direction family covers each
        // (d-compatible) link once.
        let mesh = Mesh::new(4, 4);
        for d in Quadrant::ALL {
            let total: usize = (0..mesh.num_diagonals() - 1)
                .map(|k| links_between_diagonals(&mesh, d, k))
                .sum();
            // Exactly half the links move "forward" in any direction d.
            assert_eq!(total, mesh.num_links() / 2);
        }
    }

    #[test]
    fn lower_bound_below_any_actual_routing() {
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 2.0),
                Comm::new(Coord::new(3, 0), Coord::new(0, 3), 3.0),
                Comm::new(Coord::new(0, 3), Coord::new(2, 0), 1.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let bound = ideal_power_lower_bound(&cs, &model);
        let xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        assert!(bound > 0.0);
        assert!(bound <= xy + 1e-9, "bound {bound} exceeds XY power {xy}");
    }

    #[test]
    fn lower_bound_tight_for_single_link_instance() {
        // One unit-length communication: the bound equals the exact power.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(0, 1), 2.0)],
        );
        let model = PowerModel::theory(3.0);
        let bound = ideal_power_lower_bound(&cs, &model);
        // Only one link exists between the crossed diagonal pair inside
        // direction 1 at k=0... the whole mesh has 2 (right and down), so
        // the ideal bound halves the load: 2·(2/2)³ = 2.
        assert!((bound - 2.0).abs() < 1e-9);
        let xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        assert!((xy - 8.0).abs() < 1e-9);
        assert!(bound <= xy);
    }
}
