//! # pamr-routing — power-aware Manhattan routing (the paper's core)
//!
//! This crate implements the central contribution of *Power-aware Manhattan
//! routing on chip multiprocessors* (Benoit, Melhem, Renaud-Goud, Robert;
//! INRIA RR-7752 / IPDPS 2012):
//!
//! * the problem instance ([`Comm`], [`CommSet`]) — a set of communications
//!   `γ_i = (src_i, snk_i, δ_i)` to route on a mesh CMP (§3.2);
//! * routings ([`Routing`]) — one or several weighted Manhattan paths per
//!   communication, their bandwidth validity and their power (§3.4);
//! * the baseline rules XY and YX (§3.3);
//! * the five single-path heuristics of §5 — [`SimpleGreedy`] (SG),
//!   [`ImprovedGreedy`] (IG), [`TwoBend`] (TB), [`XyImprover`] (XYI) and
//!   [`PathRemover`] (PR) — plus the portfolio [`Best`];
//! * the ideal fractional sharing of Figure 3 ([`fractional`]), shared by
//!   IG and PR and used as a power lower bound;
//! * a Frank–Wolfe convex multi-commodity-flow solver ([`frank_wolfe`])
//!   approximating the optimal **max-MP** routing under continuous
//!   frequency scaling (the paper's future-work item on bounding the
//!   optimum);
//! * an exact branch-and-bound optimal **1-MP** solver for small instances
//!   ([`exact`]).
//!
//! ## Quick example
//!
//! ```
//! use pamr_mesh::{Coord, Mesh};
//! use pamr_power::PowerModel;
//! use pamr_routing::{Best, CommSet, Comm, Heuristic, PathRemover, xy_routing};
//!
//! let mesh = Mesh::new(8, 8);
//! let cs = CommSet::new(mesh, vec![
//!     Comm::new(Coord::new(0, 0), Coord::new(5, 6), 1200.0),
//!     Comm::new(Coord::new(3, 1), Coord::new(0, 7), 800.0),
//! ]);
//! let model = PowerModel::kim_horowitz();
//! let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
//! let pr = PathRemover.route(&cs, &model);
//! assert!(pr.is_feasible(&cs, &model));
//! // BEST never loses to XY (XY is in its portfolio).
//! let best = Best::default().route(&cs, &model);
//! assert!(best.power.expect("XY is feasible here") <= p_xy);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod csr;
pub mod engine;
pub mod exact;
pub mod fractional;
pub mod frontier;
pub mod fw;
pub mod greedy;
pub mod heuristic;
pub mod ig;
pub mod loadq;
pub mod multipath;
pub mod pr;
pub mod precompute;
pub mod routing;
pub mod rules;
pub mod scratch;
pub mod session;
pub mod tables;
pub mod two_bend;
pub mod xyi;

pub use comm::{Comm, CommSet, SortOrder};
pub use csr::CrossingIndex;
pub use engine::{EngineConfig, EngineSel};
pub use exact::optimal_single_path;
pub use fractional::{ideal_loads, ideal_power_lower_bound};
pub use frontier::{frontier_points, FrontierPoint, FrontierProblem, Segment};
pub use fw::{frank_wolfe, FrankWolfeResult};
pub use greedy::SimpleGreedy;
pub use heuristic::{
    surrogate_link_cost, Best, BestRoute, EmptyPortfolio, Heuristic, HeuristicKind,
    SURROGATE_PENALTY,
};
pub use ig::{IgImpl, ImprovedGreedy, ReferenceImprovedGreedy};
pub use loadq::LoadQueue;
pub use multipath::{FwMp, SplitMp};
pub use pr::{PathRemover, PrError, PrImpl, ReferencePathRemover};
pub use precompute::{
    CostLadder, CustomizedInstance, EndpointTables, MeshPrecompute, PrecomputeImpl,
};
pub use routing::Routing;
pub use rules::{xy_routing, yx_routing};
pub use scratch::RouteScratch;
pub use session::{RepairMode, RoutingSession, SessionConfig, SessionStats, SlotId};
pub use tables::{FlowId, RoutingTables};
pub use two_bend::TwoBend;
pub use xyi::{ReferenceXyImprover, XyImprover, XyiImpl};
