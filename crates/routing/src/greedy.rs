//! The Simple-greedy heuristic (§5.1).
//!
//! Its sibling, Improved greedy (§5.2), lives in [`crate::ig`] — it shares
//! the fractional pre-routing machinery with PR and got its own module when
//! the candidate selection was rewritten on the shared load index.

use crate::comm::{Comm, CommSet, SortOrder};
use crate::heuristic::Heuristic;
use crate::routing::Routing;
use crate::scratch::RouteScratch;
use pamr_mesh::{Coord, LoadMap, Mesh, Path};
use pamr_power::PowerModel;

/// **SG — Simple greedy** (§5.1).
///
/// Communications are processed by decreasing weight. Each path is built
/// hop by hop: among the (at most two) next links that stay on a Manhattan
/// path, take the least loaded one; break ties by moving closer to the
/// straight source–sink diagonal.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimpleGreedy {
    /// Processing order (decreasing weight by default, per the paper).
    pub order: SortOrder,
}

impl Heuristic for SimpleGreedy {
    fn name(&self) -> &'static str {
        "SG"
    }

    fn route_with(&self, cs: &CommSet, _model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        let mesh = cs.mesh();
        let use_cache = scratch.ensure_customized(cs);
        scratch.loads.fit(mesh);
        // The processing order is the only weight-dependent precomputation
        // SG does; take the customize phase's cached copy when available
        // (bit-identical — it is CommSet::by_order's own result).
        let order_buf;
        let order: &[usize] = match scratch
            .cust
            .as_ref()
            .filter(|_| use_cache)
            .and_then(|cu| cu.order(self.order))
        {
            Some(o) => o,
            None => {
                order_buf = cs.by_order(self.order);
                &order_buf
            }
        };
        let loads = &mut scratch.loads;
        let mut paths: Vec<Option<Path>> = vec![None; cs.len()];
        for &i in order {
            let c = &cs.comms()[i];
            let path = sg_route_one(mesh, loads, c);
            loads.add_path(mesh, &path, c.weight);
            paths[i] = Some(path);
        }
        Routing::single(cs, paths.into_iter().map(Option::unwrap).collect())
    }
}

/// Twice the (unsigned) area of the triangle (src, snk, c): zero when `c`
/// is exactly on the straight src–snk segment, growing as `c` drifts away.
/// SG's tie-break picks the next core minimising this.
fn dist_to_diagonal(src: Coord, snk: Coord, c: Coord) -> i64 {
    let (au, av) = (snk.u as i64 - src.u as i64, snk.v as i64 - src.v as i64);
    let (bu, bv) = (c.u as i64 - src.u as i64, c.v as i64 - src.v as i64);
    (au * bv - av * bu).abs()
}

fn sg_route_one(mesh: &Mesh, loads: &LoadMap, c: &Comm) -> Path {
    let (sv, sh) = c.quadrant().steps();
    let mut cur = c.src;
    let mut moves = Vec::with_capacity(c.len());
    while cur != c.snk {
        let step = match (cur.u != c.snk.u, cur.v != c.snk.v) {
            (true, false) => sv,
            (false, true) => sh,
            (true, true) => {
                let lv = loads.get(mesh.link_id(cur, sv).unwrap());
                let lh = loads.get(mesh.link_id(cur, sh).unwrap());
                if lv < lh {
                    sv
                } else if lh < lv {
                    sh
                } else {
                    // Tie: pick the link getting closer to the source–sink
                    // diagonal; if still tied, prefer the vertical move
                    // (deterministic).
                    let nv = mesh.step(cur, sv).unwrap();
                    let nh = mesh.step(cur, sh).unwrap();
                    if dist_to_diagonal(c.src, c.snk, nv) <= dist_to_diagonal(c.src, c.snk, nh) {
                        sv
                    } else {
                        sh
                    }
                }
            }
            (false, false) => unreachable!(),
        };
        moves.push(step);
        cur = mesh.step(cur, step).unwrap();
    }
    Path::from_moves(c.src, moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ig::ImprovedGreedy;
    use pamr_mesh::Mesh;

    fn check_valid(h: &dyn Heuristic, cs: &CommSet, model: &PowerModel) -> Routing {
        let r = h.route(cs, model);
        assert!(
            r.is_structurally_valid(cs, 1),
            "{} produced an invalid routing",
            h.name()
        );
        r
    }

    #[test]
    fn sg_separates_two_equal_flows() {
        // Two identical communications: the second must avoid the first's
        // links wherever possible.
        let mesh = Mesh::new(3, 3);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(2, 2), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(2, 2), 1.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = check_valid(&SimpleGreedy::default(), &cs, &model);
        let loads = r.loads(&cs);
        // A perfect separation yields max load 1.0 (XY would give 2.0).
        assert!(loads.max_load() <= 1.0 + 1e-9, "max = {}", loads.max_load());
    }

    #[test]
    fn sg_tie_break_follows_diagonal() {
        // A single comm on an empty mesh: all loads are 0, so every hop is a
        // tie broken towards the diagonal — the path must stay within one
        // unit of the straight line.
        let mesh = Mesh::new(6, 6);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(5, 5), 1.0)],
        );
        let model = PowerModel::theory(3.0);
        let r = SimpleGreedy::default().route(&cs, &model);
        for core in r.path(0).cores() {
            assert!(
                dist_to_diagonal(Coord::new(0, 0), Coord::new(5, 5), core) <= 5,
                "core {core} strays from the diagonal"
            );
        }
    }

    #[test]
    fn greedy_handles_local_and_straight_comms() {
        let mesh = Mesh::new(3, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(1, 1), Coord::new(1, 1), 5.0), // local
                Comm::new(Coord::new(0, 0), Coord::new(0, 3), 2.0), // straight
                Comm::new(Coord::new(2, 3), Coord::new(0, 3), 2.0), // straight up
            ],
        );
        let model = PowerModel::kim_horowitz();
        for h in [
            &SimpleGreedy::default() as &dyn Heuristic,
            &ImprovedGreedy::default(),
        ] {
            let r = check_valid(h, &cs, &model);
            assert!(r.path(0).is_empty());
            assert_eq!(r.path(1).len(), 3);
            assert_eq!(r.path(2).len(), 2);
        }
    }

    #[test]
    fn dist_to_diagonal_zero_on_segment() {
        let src = Coord::new(0, 0);
        let snk = Coord::new(4, 4);
        assert_eq!(dist_to_diagonal(src, snk, Coord::new(2, 2)), 0);
        assert!(dist_to_diagonal(src, snk, Coord::new(2, 3)) > 0);
        assert_eq!(
            dist_to_diagonal(src, snk, Coord::new(1, 3)),
            dist_to_diagonal(src, snk, Coord::new(3, 1))
        );
    }
}
