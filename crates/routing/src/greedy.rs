//! The two greedy heuristics: Simple Greedy (§5.1) and Improved Greedy
//! (§5.2).

use crate::comm::{Comm, CommSet, SortOrder};
use crate::heuristic::{surrogate_link_cost, Heuristic};
use crate::routing::Routing;
use crate::scratch::RouteScratch;
use pamr_mesh::{Band, Coord, LoadMap, Mesh, Path, Rect, Step};
use pamr_power::PowerModel;

/// **SG — Simple greedy** (§5.1).
///
/// Communications are processed by decreasing weight. Each path is built
/// hop by hop: among the (at most two) next links that stay on a Manhattan
/// path, take the least loaded one; break ties by moving closer to the
/// straight source–sink diagonal.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimpleGreedy {
    /// Processing order (decreasing weight by default, per the paper).
    pub order: SortOrder,
}

impl Heuristic for SimpleGreedy {
    fn name(&self) -> &'static str {
        "SG"
    }

    fn route_with(&self, cs: &CommSet, _model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        let mesh = cs.mesh();
        scratch.loads.fit(mesh);
        let loads = &mut scratch.loads;
        let mut paths: Vec<Option<Path>> = vec![None; cs.len()];
        for &i in &cs.by_order(self.order) {
            let c = &cs.comms()[i];
            let path = sg_route_one(mesh, loads, c);
            loads.add_path(mesh, &path, c.weight);
            paths[i] = Some(path);
        }
        Routing::single(cs, paths.into_iter().map(Option::unwrap).collect())
    }
}

/// Twice the (unsigned) area of the triangle (src, snk, c): zero when `c`
/// is exactly on the straight src–snk segment, growing as `c` drifts away.
/// SG's tie-break picks the next core minimising this.
fn dist_to_diagonal(src: Coord, snk: Coord, c: Coord) -> i64 {
    let (au, av) = (snk.u as i64 - src.u as i64, snk.v as i64 - src.v as i64);
    let (bu, bv) = (c.u as i64 - src.u as i64, c.v as i64 - src.v as i64);
    (au * bv - av * bu).abs()
}

fn sg_route_one(mesh: &Mesh, loads: &LoadMap, c: &Comm) -> Path {
    let (sv, sh) = c.quadrant().steps();
    let mut cur = c.src;
    let mut moves = Vec::with_capacity(c.len());
    while cur != c.snk {
        let step = match (cur.u != c.snk.u, cur.v != c.snk.v) {
            (true, false) => sv,
            (false, true) => sh,
            (true, true) => {
                let lv = loads.get(mesh.link_id(cur, sv).unwrap());
                let lh = loads.get(mesh.link_id(cur, sh).unwrap());
                if lv < lh {
                    sv
                } else if lh < lv {
                    sh
                } else {
                    // Tie: pick the link getting closer to the source–sink
                    // diagonal; if still tied, prefer the vertical move
                    // (deterministic).
                    let nv = mesh.step(cur, sv).unwrap();
                    let nh = mesh.step(cur, sh).unwrap();
                    if dist_to_diagonal(c.src, c.snk, nv) <= dist_to_diagonal(c.src, c.snk, nh) {
                        sv
                    } else {
                        sh
                    }
                }
            }
            (false, false) => unreachable!(),
        };
        moves.push(step);
        cur = mesh.step(cur, step).unwrap();
    }
    Path::from_moves(c.src, moves)
}

/// **IG — Improved greedy** (§5.2).
///
/// All communications are first virtually pre-routed with the ideal
/// fractional sharing of Figure 3. Processing them by decreasing weight,
/// IG removes the current communication's fractional contribution and then
/// builds its single path hop by hop: each candidate next link is scored by
/// a lower bound on the power to reach the sink through it (the candidate
/// link's own power plus, for every remaining diagonal, the power of the
/// least loaded link that remains reachable), and the cheaper candidate is
/// taken.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImprovedGreedy {
    /// Processing order (decreasing weight by default, per the paper).
    pub order: SortOrder,
}

impl Heuristic for ImprovedGreedy {
    fn name(&self) -> &'static str {
        "IG"
    }

    fn route_with(&self, cs: &CommSet, model: &PowerModel, scratch: &mut RouteScratch) -> Routing {
        let mesh = cs.mesh();
        scratch.loads.fit(mesh);
        let loads = &mut scratch.loads;
        // One band per communication, computed once and reused both for the
        // virtual pre-routing (Figure 3 ideal sharing) and for the per-hop
        // tail bound below — the tail bound used to rebuild a `Band` for
        // every candidate hop, which dominated IG's runtime.
        let bands: Vec<Band> = cs.comms().iter().map(|c| c.band(mesh)).collect();
        for (c, band) in cs.comms().iter().zip(&bands) {
            apply_ideal(loads, band, c.weight, 1.0);
        }
        let mut paths: Vec<Option<Path>> = vec![None; cs.len()];
        for &i in &cs.by_order(self.order) {
            let c = &cs.comms()[i];
            // Remove this communication's own pre-routing before choosing
            // its real path.
            apply_ideal(loads, &bands[i], c.weight, -1.0);
            let path = ig_route_one(mesh, loads, model, c, &bands[i]);
            loads.add_path(mesh, &path, c.weight);
            paths[i] = Some(path);
        }
        Routing::single(cs, paths.into_iter().map(Option::unwrap).collect())
    }
}

/// Adds (`sign = 1.0`) or removes (`-1.0`) a communication's Figure 3 ideal
/// fractional contribution: `weight / |group|` on every band-group link.
fn apply_ideal(loads: &mut LoadMap, band: &Band, weight: f64, sign: f64) {
    for g in band.groups() {
        let share = sign * weight / g.len() as f64;
        for &l in g {
            loads.add(l, share);
        }
    }
}

/// Lower bound on the power to go from `from` to `snk` assuming for each
/// remaining diagonal crossing the least-loaded reachable link can be used.
///
/// `band` is the *communication's* full band, `t_from` the diagonal
/// crossings already taken and `rect` the bounding box of the remaining
/// sub-path: the links of the `from → snk` sub-band are exactly the band
/// links of the remaining groups whose endpoints lie in `rect`, so no
/// sub-band needs to be built.
fn ig_tail_bound(
    mesh: &Mesh,
    loads: &LoadMap,
    model: &PowerModel,
    band: &Band,
    t_from: usize,
    rect: Rect,
    weight: f64,
) -> f64 {
    let mut total = 0.0;
    for g in &band.groups()[t_from..] {
        let mut cheapest = f64::INFINITY;
        for &l in g {
            let (a, b) = mesh.link_endpoints(l);
            if rect.contains(a) && rect.contains(b) {
                let cost = surrogate_link_cost(model, loads.get(l) + weight);
                cheapest = cheapest.min(cost);
            }
        }
        total += cheapest;
    }
    total
}

fn ig_route_one(mesh: &Mesh, loads: &LoadMap, model: &PowerModel, c: &Comm, band: &Band) -> Path {
    let (sv, sh) = c.quadrant().steps();
    let mut cur = c.src;
    let mut moves = Vec::with_capacity(c.len());
    while cur != c.snk {
        let step = match (cur.u != c.snk.u, cur.v != c.snk.v) {
            (true, false) => sv,
            (false, true) => sh,
            (true, true) => {
                let mut best = (f64::INFINITY, sv);
                for s in [sv, sh] {
                    let link = mesh.link_id(cur, s).unwrap();
                    let next = mesh.step(cur, s).unwrap();
                    let tail = if next == c.snk {
                        0.0
                    } else {
                        ig_tail_bound(
                            mesh,
                            loads,
                            model,
                            band,
                            moves.len() + 1,
                            Rect::spanning(next, c.snk),
                            c.weight,
                        )
                    };
                    let bound = surrogate_link_cost(model, loads.get(link) + c.weight) + tail;
                    // Strict `<` keeps the vertical move on ties (sv first).
                    if bound < best.0 {
                        best = (bound, s);
                    }
                }
                best.1
            }
            (false, false) => unreachable!(),
        };
        moves.push(step);
        cur = mesh.step(cur, step).unwrap();
    }
    debug_assert!(moves.iter().all(|&s: &Step| c.quadrant().allows(s)));
    Path::from_moves(c.src, moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamr_mesh::Mesh;

    fn check_valid(h: &dyn Heuristic, cs: &CommSet, model: &PowerModel) -> Routing {
        let r = h.route(cs, model);
        assert!(
            r.is_structurally_valid(cs, 1),
            "{} produced an invalid routing",
            h.name()
        );
        r
    }

    #[test]
    fn sg_separates_two_equal_flows() {
        // Two identical communications: the second must avoid the first's
        // links wherever possible.
        let mesh = Mesh::new(3, 3);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(2, 2), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(2, 2), 1.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let r = check_valid(&SimpleGreedy::default(), &cs, &model);
        let loads = r.loads(&cs);
        // A perfect separation yields max load 1.0 (XY would give 2.0).
        assert!(loads.max_load() <= 1.0 + 1e-9, "max = {}", loads.max_load());
    }

    #[test]
    fn sg_tie_break_follows_diagonal() {
        // A single comm on an empty mesh: all loads are 0, so every hop is a
        // tie broken towards the diagonal — the path must stay within one
        // unit of the straight line.
        let mesh = Mesh::new(6, 6);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(5, 5), 1.0)],
        );
        let model = PowerModel::theory(3.0);
        let r = SimpleGreedy::default().route(&cs, &model);
        for core in r.path(0).cores() {
            assert!(
                dist_to_diagonal(Coord::new(0, 0), Coord::new(5, 5), core) <= 5,
                "core {core} strays from the diagonal"
            );
        }
    }

    #[test]
    fn ig_beats_or_matches_xy_on_crossing_traffic() {
        let mesh = Mesh::new(4, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 2.0),
                Comm::new(Coord::new(0, 0), Coord::new(3, 3), 2.0),
                Comm::new(Coord::new(0, 3), Coord::new(3, 0), 1.0),
            ],
        );
        let model = PowerModel::theory(3.0);
        let ig = check_valid(&ImprovedGreedy::default(), &cs, &model);
        let xy = crate::rules::xy_routing(&cs);
        let p_ig = ig.power(&cs, &model).unwrap().total();
        let p_xy = xy.power(&cs, &model).unwrap().total();
        assert!(p_ig <= p_xy + 1e-9, "IG {p_ig} worse than XY {p_xy}");
    }

    #[test]
    fn greedy_handles_local_and_straight_comms() {
        let mesh = Mesh::new(3, 4);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(1, 1), Coord::new(1, 1), 5.0), // local
                Comm::new(Coord::new(0, 0), Coord::new(0, 3), 2.0), // straight
                Comm::new(Coord::new(2, 3), Coord::new(0, 3), 2.0), // straight up
            ],
        );
        let model = PowerModel::kim_horowitz();
        for h in [
            &SimpleGreedy::default() as &dyn Heuristic,
            &ImprovedGreedy::default(),
        ] {
            let r = check_valid(h, &cs, &model);
            assert!(r.path(0).is_empty());
            assert_eq!(r.path(1).len(), 3);
            assert_eq!(r.path(2).len(), 2);
        }
    }

    #[test]
    fn dist_to_diagonal_zero_on_segment() {
        let src = Coord::new(0, 0);
        let snk = Coord::new(4, 4);
        assert_eq!(dist_to_diagonal(src, snk, Coord::new(2, 2)), 0);
        assert!(dist_to_diagonal(src, snk, Coord::new(2, 3)) > 0);
        assert_eq!(
            dist_to_diagonal(src, snk, Coord::new(1, 3)),
            dist_to_diagonal(src, snk, Coord::new(3, 1))
        );
    }

    #[test]
    fn ig_processes_heaviest_first() {
        // The heavy flow should get the contention-free diagonal spread
        // benefit: with one heavy and one light comm sharing poles, both
        // must end feasible and the heavy one's path must avoid sharing all
        // of its links with the light one.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
            ],
        );
        let model = PowerModel::fig2();
        let r = ImprovedGreedy::default().route(&cs, &model);
        // Optimal 1-MP on Fig. 2 is 56: one comm on XY, the other on YX.
        let p = r.power(&cs, &model).unwrap().total();
        assert!(
            (p - 56.0).abs() < 1e-9,
            "IG should find the Fig. 2 1-MP optimum, got {p}"
        );
    }
}
