//! Table-based routing: compiling a [`Routing`] into per-core forwarding
//! tables.
//!
//! The paper positions its result at the system level: "each communication
//! is routed from source to destination along a given path using either
//! source routing or table-based routing", and envisions "a table-driven
//! scheduling algorithm, which the system can safely call each time there
//! is a new set of applications to be routed" (§5). This module provides
//! the table side: every core gets a forwarding table mapping a *flow id*
//! (a `(communication, path)` pair) to the outgoing port, and the tables
//! can be walked to prove they reproduce the compiled routing exactly.

use crate::comm::CommSet;
use crate::routing::Routing;
use pamr_mesh::{Coord, Mesh, Path, Step};
use serde::{Deserialize, Serialize};

/// Identifier of one flow: communication index plus path index within the
/// communication's flow list (0 for single-path routings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId {
    /// Index of the communication in the [`CommSet`].
    pub comm: usize,
    /// Index of the path within the communication's flows.
    pub path: usize,
}

/// One forwarding-table entry: a flow and its outgoing port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    /// The flow this entry forwards.
    pub flow: FlowId,
    /// The outgoing step.
    pub step: Step,
}

/// Per-core forwarding tables for a compiled routing.
///
/// Each core's table is a flat vector sorted by [`FlowId`]; lookups binary
/// search it. Per-router tables hold at most one entry per flow, so the
/// flat layout beats hashing at these sizes and keeps the per-core memory
/// contiguous (it is also the natural model of a TCAM/SRAM table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingTables {
    /// `tables[core_index]`, sorted by flow id.
    tables: Vec<Vec<TableEntry>>,
    mesh: Mesh,
}

/// Error produced when a routing cannot be compiled into tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// A flow visits the same core twice (impossible for Manhattan paths;
    /// indicates a corrupted routing).
    RevisitedCore {
        /// The offending flow.
        flow: FlowId,
        /// The revisited core.
        core: Coord,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::RevisitedCore { flow, core } => {
                write!(f, "flow {flow:?} visits core {core} twice")
            }
        }
    }
}

impl std::error::Error for TableError {}

impl RoutingTables {
    /// Compiles a routing into per-core tables.
    ///
    /// Fails only on non-simple walks; every Manhattan routing compiles
    /// (shortest paths never revisit a core).
    pub fn compile(cs: &CommSet, routing: &Routing) -> Result<RoutingTables, TableError> {
        let mesh = *cs.mesh();
        let mut tables: Vec<Vec<TableEntry>> = vec![Vec::new(); mesh.num_cores()];
        // Flows are walked in increasing (comm, path) order, and a simple
        // Manhattan path visits each core at most once, so every per-core
        // vector is built already sorted by flow id. A revisit would push a
        // second entry for the current flow — always the row's last entry,
        // since no later flow has been walked yet.
        for comm in 0..routing.len() {
            for (pi, (path, _)) in routing.flows(comm).iter().enumerate() {
                let flow = FlowId { comm, path: pi };
                let mut cur = path.src();
                for &step in path.moves() {
                    let row = &mut tables[mesh.core_index(cur)];
                    if row.last().is_some_and(|e| e.flow == flow) {
                        return Err(TableError::RevisitedCore { flow, core: cur });
                    }
                    row.push(TableEntry { flow, step });
                    cur = mesh.step(cur, step).expect("path leaves the mesh");
                }
            }
        }
        debug_assert!(tables
            .iter()
            .all(|row| row.windows(2).all(|w| w[0].flow < w[1].flow)));
        Ok(RoutingTables { tables, mesh })
    }

    /// Forwarding decision of `core` for `flow`: `Some(step)` to forward,
    /// `None` when the flow terminates here (or never passes through).
    pub fn lookup(&self, core: Coord, flow: FlowId) -> Option<Step> {
        let row = &self.tables[self.mesh.core_index(core)];
        row.binary_search_by(|e| e.flow.cmp(&flow))
            .ok()
            .map(|i| row[i].step)
    }

    /// Total number of table entries across all cores (a proxy for the
    /// TCAM/SRAM footprint of the routing).
    pub fn total_entries(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }

    /// Largest single-core table (the per-router resource bound).
    pub fn max_entries_per_core(&self) -> usize {
        self.tables.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Walks the tables from `src` for `flow`, reconstructing the path.
    ///
    /// # Panics
    /// Panics if the tables route the flow off the mesh (cannot happen for
    /// tables produced by [`RoutingTables::compile`]).
    pub fn walk(&self, src: Coord, flow: FlowId) -> Path {
        let mut cur = src;
        let mut moves = Vec::new();
        while let Some(step) = self.lookup(cur, flow) {
            moves.push(step);
            cur = self.mesh.step(cur, step).expect("tables route off-mesh");
        }
        Path::from_moves(src, moves)
    }

    /// Verifies that walking the tables reproduces every flow of `routing`
    /// exactly.
    pub fn verify(&self, cs: &CommSet, routing: &Routing) -> bool {
        (0..routing.len()).all(|comm| {
            routing
                .flows(comm)
                .iter()
                .enumerate()
                .all(|(pi, (path, _))| {
                    let walked = self.walk(path.src(), FlowId { comm, path: pi });
                    walked == *path && walked.snk() == cs.comms()[comm].snk
                })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::heuristic::HeuristicKind;
    use crate::rules::xy_routing;
    use pamr_power::PowerModel;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(seed: u64) -> CommSet {
        let mesh = Mesh::new(6, 6);
        let mut rng = SmallRng::seed_from_u64(seed);
        let comms = (0..20)
            .map(|_| loop {
                let a = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
                let b = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
                if a != b {
                    break Comm::new(a, b, rng.gen_range(100.0..1000.0));
                }
            })
            .collect();
        CommSet::new(mesh, comms)
    }

    #[test]
    fn tables_reproduce_every_policy() {
        let model = PowerModel::kim_horowitz();
        for seed in 0..5u64 {
            let cs = random_instance(seed);
            for kind in HeuristicKind::ALL {
                let r = kind.route(&cs, &model);
                let t = RoutingTables::compile(&cs, &r).expect("Manhattan paths compile");
                assert!(t.verify(&cs, &r), "seed {seed}: {kind} tables diverge");
            }
        }
    }

    #[test]
    fn tables_reproduce_multipath_routings() {
        use crate::heuristic::Heuristic;
        use crate::multipath::SplitMp;
        use crate::pr::PathRemover;
        let cs = random_instance(7);
        let model = PowerModel::kim_horowitz();
        let r = SplitMp::new(PathRemover, 3).route(&cs, &model);
        let t = RoutingTables::compile(&cs, &r).unwrap();
        assert!(t.verify(&cs, &r));
    }

    #[test]
    fn entry_counts_match_hops() {
        let cs = random_instance(3);
        let r = xy_routing(&cs);
        let t = RoutingTables::compile(&cs, &r).unwrap();
        // One entry per (flow, traversed link).
        let hops: usize = (0..cs.len()).map(|i| r.path(i).len()).sum();
        assert_eq!(t.total_entries(), hops);
        assert!(t.max_entries_per_core() <= cs.len());
    }

    #[test]
    fn lookup_none_at_destination() {
        let mesh = Mesh::new(3, 3);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(2, 2), 1.0)],
        );
        let r = xy_routing(&cs);
        let t = RoutingTables::compile(&cs, &r).unwrap();
        let flow = FlowId { comm: 0, path: 0 };
        assert!(t.lookup(Coord::new(2, 2), flow).is_none());
        assert!(t.lookup(Coord::new(0, 0), flow).is_some());
        // A core off the path has no entry either.
        assert!(t.lookup(Coord::new(2, 0), flow).is_none());
    }

    #[test]
    fn revisiting_walk_rejected() {
        // A hand-built out-and-back walk must be refused.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(0, 0), 1.0)],
        );
        // Right, Left, Right revisits (0,0) with a second outgoing move.
        let walk = Path::from_moves(Coord::new(0, 0), vec![Step::Right, Step::Left, Step::Right]);
        let r = Routing::multi(vec![vec![(walk, 1.0)]]);
        assert!(matches!(
            RoutingTables::compile(&cs, &r),
            Err(TableError::RevisitedCore { .. })
        ));
    }
}
