//! Property tests pinning the flat-CSR indices against the naive
//! structures they replace.
//!
//! Two contracts, both *order-exact*:
//!
//! 1. [`CrossingIndex`] — the shared link→users arena behind the PR
//!    presort, the queued XY improver and the routing session — must hold
//!    exactly the rows a plain `Vec<Vec<u32>>` multimap would under any
//!    interleaving of bulk rebuilds, sorted inserts (including the
//!    slab-doubling relocation path), sorted removals and clears;
//! 2. the [`MeshPrecompute`] CSR adjacency (`first_out`/`out_links`/
//!    `heads`) must enumerate every core's outgoing `(link, head)` pairs
//!    in [`Step::ALL`] order on arbitrary mesh shapes, degenerate 1×N and
//!    N×1 paths included, and a crossing index rebuilt from routed paths
//!    must match a naive per-link recount even with duplicate-endpoint
//!    and core-local communications.
//!
//! Shrinking is enabled (the vendored proptest records the choice tape);
//! replay failures with `PAMR_PROPTEST_SEED=<seed>`.

use pamr_mesh::{Coord, Mesh, Step};
use pamr_routing::{xy_routing, Comm, CommSet, CrossingIndex, MeshPrecompute};
use proptest::prelude::*;

/// Number of rows the modelled index operates over.
const ROWS: usize = 12;

/// One step of the modelled interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert `value` into `row`'s sorted run (skipped when present — the
    /// index treats double-insertion as a caller bug).
    Insert(usize, u32),
    /// Remove `value` from `row` (skipped when absent, same reason).
    Remove(usize, u32),
    /// Bulk-rebuild the arena from the model (exact-fit, compacting any
    /// slabs abandoned by grown rows).
    Rebuild,
    /// Drop every row and re-dimension.
    Clear,
}

/// Strategy over [`Op`] (the stand-in proptest has no `prop_oneof!`; a
/// discriminant + payload tuple shrinks just as well). Inserts dominate
/// so runs regularly outgrow a row's slab and exercise the relocation
/// path in [`CrossingIndex::insert_sorted`].
fn op() -> impl Strategy<Value = Op> {
    (0u8..8, 0..ROWS, 0u32..32).prop_map(|(kind, r, v)| match kind {
        0..=4 => Op::Insert(r, v),
        5 => Op::Remove(r, v),
        6 => Op::Rebuild,
        _ => Op::Clear,
    })
}

/// Asserts every row of `index` equals the model, contents and order.
fn assert_rows_match(index: &CrossingIndex, model: &[Vec<u32>]) {
    assert_eq!(index.num_rows(), model.len());
    for (r, want) in model.iter().enumerate() {
        assert_eq!(index.row(r), &want[..], "row {r} diverged");
        assert_eq!(index.len_of(r), want.len());
        for (i, &v) in want.iter().enumerate() {
            assert_eq!(index.get(r, i), v, "row {r} entry {i} diverged");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn crossing_index_matches_vec_of_vec_model(
        init in prop::collection::vec((0..ROWS, 0u32..32), 0..=24),
        ops in prop::collection::vec(op(), 0..=64),
    ) {
        let mut model: Vec<Vec<u32>> = vec![Vec::new(); ROWS];
        for &(r, v) in &init {
            if !model[r].contains(&v) {
                model[r].push(v);
            }
        }
        // Rebuild preserves emit order within a row; sorted mutations
        // require sorted rows, so the model seeds the arena sorted.
        for row in &mut model {
            row.sort_unstable();
        }
        let mut index = CrossingIndex::new();
        index.rebuild(ROWS, |push| {
            for (r, row) in model.iter().enumerate() {
                for &v in row {
                    push(r, v);
                }
            }
        });
        assert_rows_match(&index, &model);
        for op in &ops {
            match *op {
                Op::Insert(r, v) => {
                    if !model[r].contains(&v) {
                        let at = model[r].partition_point(|&x| x < v);
                        model[r].insert(at, v);
                        index.insert_sorted(r, v);
                    }
                }
                Op::Remove(r, v) => {
                    if let Ok(at) = model[r].binary_search(&v) {
                        model[r].remove(at);
                        index.remove_sorted(r, v);
                    }
                }
                Op::Rebuild => {
                    index.rebuild(ROWS, |push| {
                        for (r, row) in model.iter().enumerate() {
                            for &v in row {
                                push(r, v);
                            }
                        }
                    });
                }
                Op::Clear => {
                    for row in &mut model {
                        row.clear();
                    }
                    index.clear(ROWS);
                }
            }
            assert_rows_match(&index, &model);
        }
    }

    #[test]
    fn precompute_adjacency_matches_naive_enumeration(
        (p, q) in (1usize..=9, 1usize..=9),
    ) {
        let mesh = Mesh::new(p, q);
        let pre = MeshPrecompute::new(mesh);
        let mut total = 0usize;
        for c in mesh.cores() {
            let naive: Vec<_> = Step::ALL
                .into_iter()
                .filter_map(|s| {
                    mesh.link_id(c, s)
                        .map(|l| (l, mesh.core_index(mesh.link_endpoints(l).1) as u32))
                })
                .collect();
            let got: Vec<_> = pre
                .out_links(c)
                .iter()
                .copied()
                .zip(pre.out_heads(c).iter().copied())
                .collect();
            prop_assert_eq!(got, naive, "adjacency of {} diverged on {p}x{q}", c);
            prop_assert_eq!(pre.out_links(c).len(), pre.out_heads(c).len());
            total += pre.out_links(c).len();
        }
        prop_assert_eq!(total, mesh.num_links(), "CSR adjacency dropped links");
    }

    #[test]
    fn crossing_index_of_routed_paths_matches_naive_recount(
        (p, q) in (1usize..=8, 1usize..=8),
        raw in prop::collection::vec(((0usize..8, 0usize..8), (0usize..8, 0usize..8)), 1..=20),
        dup in 0usize..4,
    ) {
        // Clamp draws into the mesh, then force duplicate-endpoint pairs
        // by repeating a prefix of the instance `dup` times — the index
        // must keep one entry per communication even when several share
        // every link of their path.
        let clamp = |(a, b): (usize, usize)| Coord::new(a.min(p - 1), b.min(q - 1));
        let mesh = Mesh::new(p, q);
        let mut comms: Vec<Comm> = raw
            .iter()
            .map(|&(s, t)| Comm::new(clamp(s), clamp(t), 100.0))
            .collect();
        for i in 0..dup.min(comms.len()) {
            comms.push(comms[i]);
        }
        let cs = CommSet::new(mesh, comms);
        let routing = xy_routing(&cs);
        let mut naive: Vec<Vec<u32>> = vec![Vec::new(); mesh.num_link_slots()];
        for i in 0..routing.len() {
            for l in routing.path(i).links(&mesh) {
                naive[l.index()].push(i as u32);
            }
        }
        let mut index = CrossingIndex::new();
        index.rebuild(mesh.num_link_slots(), |push| {
            for i in 0..routing.len() {
                for l in routing.path(i).links(&mesh) {
                    push(l.index(), i as u32);
                }
            }
        });
        assert_rows_match(&index, &naive);
    }
}

/// The degenerate meshes spelled out: a 1×N path has no vertical links
/// at all and every band is the path itself.
#[test]
fn adjacency_and_crossings_on_degenerate_1xn() {
    for (p, q) in [(1, 8), (8, 1), (1, 1)] {
        let mesh = Mesh::new(p, q);
        let pre = MeshPrecompute::new(mesh);
        let mut total = 0;
        for c in mesh.cores() {
            for (l, &h) in pre.out_links(c).iter().zip(pre.out_heads(c)) {
                assert_eq!(mesh.link_endpoints(*l).0, c);
                assert_eq!(mesh.core_index(mesh.link_endpoints(*l).1), h as usize);
            }
            total += pre.out_links(c).len();
        }
        assert_eq!(total, mesh.num_links(), "{p}x{q} adjacency dropped links");
    }
}

/// Duplicate-endpoint and core-local communications spelled out: three
/// copies of one comm plus a zero-length comm — rows triple-count by
/// communication index, never by endpoint identity.
#[test]
fn crossing_index_keeps_duplicate_endpoint_comms_distinct() {
    let mesh = Mesh::new(4, 4);
    let c = Comm::new(Coord::new(0, 0), Coord::new(3, 2), 500.0);
    let local = Comm::new(Coord::new(2, 2), Coord::new(2, 2), 100.0);
    let cs = CommSet::new(mesh, vec![c, c, local, c]);
    let routing = xy_routing(&cs);
    let mut index = CrossingIndex::new();
    index.rebuild(mesh.num_link_slots(), |push| {
        for i in 0..routing.len() {
            for l in routing.path(i).links(&mesh) {
                push(l.index(), i as u32);
            }
        }
    });
    for l in routing.path(0).links(&mesh) {
        assert_eq!(index.row(l.index()), &[0, 1, 3], "link {l}");
    }
    let occupied: usize = (0..mesh.num_link_slots()).map(|r| index.len_of(r)).sum();
    assert_eq!(
        occupied,
        3 * routing.path(0).len(),
        "local comm must index nothing"
    );
}
