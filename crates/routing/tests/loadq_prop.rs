//! Property tests pinning [`pamr_routing::LoadQueue`] against the naive
//! selection scan it replaces.
//!
//! The queue's contract is *order-exact*: after any interleaving of bulk
//! rebuilds, eager updates, lazy invalidations (+ refresh) and partial
//! descending pops, its iteration must reproduce the
//! [`select_max`](pamr_routing::loadq::select_max) order over the current
//! positive loads — decreasing load, ties towards the smaller link id,
//! bit-for-bit. PR, XYI and their reference oracles rely on this exact
//! equivalence for their differential contracts, so the model here *is*
//! `select_max` run over a plain `Vec` shadow of the loads. Shrinking is
//! enabled (the vendored proptest records the choice tape), so failures
//! report minimal operation sequences; replay with
//! `PAMR_PROPTEST_SEED=<seed>`.

use pamr_mesh::LinkId;
use pamr_routing::loadq::select_max;
use pamr_routing::LoadQueue;
use proptest::prelude::*;

/// Number of link slots the modelled queue operates over.
const SLOTS: usize = 24;

/// One step of the modelled interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Eagerly re-key one link to a new load (`0` removes it).
    Set(usize, u32),
    /// Update the authoritative load and lazily mark the link dirty; the
    /// queue must keep iterating on the stale key until the next refresh.
    LazySet(usize, u32),
    /// Resolve all pending lazy marks against the authoritative loads.
    Refresh,
    /// Walk the first `k` entries of a fresh descending cursor and check
    /// them against the naive order (stale keys included — pops between a
    /// lazy update and its refresh must still see the *previous* synced
    /// state).
    Pop(usize),
}

/// Strategy over [`Op`] (the stand-in proptest has no `prop_oneof!`; a
/// discriminant + payload tuple shrinks just as well).
fn op() -> impl Strategy<Value = Op> {
    (0u8..4, 0..SLOTS, 0u32..=6).prop_map(|(kind, l, v)| match kind {
        0 => Op::Set(l, v),
        1 => Op::LazySet(l, v),
        2 => Op::Refresh,
        _ => Op::Pop(l + v as usize),
    })
}

/// The full `select_max` order over the model's positive entries.
fn naive_order(model: &[f64]) -> Vec<(LinkId, f64)> {
    let mut active: Vec<(LinkId, f64)> = model
        .iter()
        .enumerate()
        .filter(|(_, &v)| v > 0.0)
        .map(|(i, &v)| (LinkId(i), v))
        .collect();
    let mut out = Vec::with_capacity(active.len());
    let mut k = 0;
    while let Some(e) = select_max(&mut active, k) {
        out.push(e);
        k += 1;
    }
    out
}

/// Drains a fresh cursor and asserts it equals the naive order over the
/// queue's *synced* state (the loads as of the last refresh/eager set),
/// ties and bit patterns included.
fn assert_matches(q: &LoadQueue, synced: &[f64]) {
    let expected = naive_order(synced);
    let mut cursor = q.cursor();
    for (k, &(l, v)) in expected.iter().enumerate() {
        let got = cursor.next(q);
        assert_eq!(got, Some((l, v)), "entry {k} diverged");
        assert_eq!(got.unwrap().1.to_bits(), v.to_bits());
        // k-th-max random access agrees with sequential iteration.
        assert_eq!(q.kth_max(k), Some((l, v)));
    }
    assert_eq!(cursor.next(q), None, "queue held extra entries");
    assert_eq!(q.len(), expected.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn queue_reproduces_select_max_under_arbitrary_interleavings(
        init in prop::collection::vec(0u32..=6, 0..=SLOTS),
        ops in prop::collection::vec(op(), 0..=48),
    ) {
        // `loads` is the authoritative map; `synced` is what the queue has
        // been told about (diverges between a LazySet and the Refresh).
        let mut loads = vec![0.0f64; SLOTS];
        for (i, &v) in init.iter().enumerate() {
            loads[i] = v as f64;
        }
        let mut synced = loads.clone();
        let mut q = LoadQueue::new();
        q.rebuild(
            SLOTS,
            loads.iter().enumerate().map(|(i, &v)| (LinkId(i), v)),
        );
        assert_matches(&q, &synced);
        for op in &ops {
            match *op {
                Op::Set(l, v) => {
                    loads[l] = v as f64;
                    synced[l] = v as f64;
                    q.set(LinkId(l), v as f64);
                }
                Op::LazySet(l, v) => {
                    loads[l] = v as f64;
                    q.mark_dirty(LinkId(l));
                }
                Op::Refresh => {
                    q.refresh_with(|l| loads[l.index()]);
                    synced.copy_from_slice(&loads);
                }
                Op::Pop(k) => {
                    // Partial descending walk against the synced state: the
                    // first k entries of the naive order; past the end the
                    // cursor must be exhausted.
                    let expected = naive_order(&synced);
                    let mut cursor = q.cursor();
                    for e in expected.iter().take(k) {
                        prop_assert_eq!(cursor.next(&q), Some(*e));
                    }
                    if k >= expected.len() {
                        prop_assert_eq!(cursor.next(&q), None);
                    }
                }
            }
        }
        // Final full drain after resolving any pending marks.
        q.refresh_with(|l| loads[l.index()]);
        synced.copy_from_slice(&loads);
        assert_matches(&q, &synced);
    }

    #[test]
    fn rebuild_equals_incremental_construction(
        entries in prop::collection::vec((0..SLOTS, 0u32..=9), 0..=40),
    ) {
        // Building by rebuild and building by per-link sets from empty must
        // agree (last write per link wins).
        let mut loads = vec![0.0f64; SLOTS];
        for &(l, v) in &entries {
            loads[l] = v as f64;
        }
        let mut by_rebuild = LoadQueue::new();
        by_rebuild.rebuild(
            SLOTS,
            loads.iter().enumerate().map(|(i, &v)| (LinkId(i), v)),
        );
        let mut by_sets = LoadQueue::new();
        by_sets.fit(SLOTS);
        for &(l, v) in &entries {
            by_sets.set(LinkId(l), v as f64);
        }
        let drain = |q: &LoadQueue| {
            let mut cursor = q.cursor();
            let mut out = Vec::new();
            while let Some(e) = cursor.next(q) {
                out.push(e);
            }
            out
        };
        prop_assert_eq!(drain(&by_rebuild), drain(&by_sets));
        prop_assert_eq!(drain(&by_rebuild), naive_order(&loads));
    }
}
