//! Property-based tests for the routing core.

use pamr_mesh::{Coord, Mesh};
use pamr_power::PowerModel;
use pamr_routing::{
    optimal_single_path, surrogate_link_cost, Comm, CommSet, Heuristic, HeuristicKind, PathRemover,
    SplitMp,
};
use proptest::prelude::*;

fn small_instance() -> impl Strategy<Value = CommSet> {
    (2usize..=4, 2usize..=4)
        .prop_flat_map(|(p, q)| {
            let comms = prop::collection::vec(((0..p, 0..q), (0..p, 0..q), 1u32..=50), 1..=4);
            (Just((p, q)), comms)
        })
        .prop_map(|((p, q), comms)| {
            CommSet::new(
                Mesh::new(p, q),
                comms
                    .into_iter()
                    .map(|((a, b), (c, d), w)| {
                        Comm::new(Coord::new(a, b), Coord::new(c, d), w as f64)
                    })
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heuristics_are_deterministic(cs in small_instance()) {
        let model = PowerModel::continuous(0.3, 1.0, 2.7, f64::INFINITY);
        for kind in HeuristicKind::ALL {
            let a = kind.route(&cs, &model);
            let b = kind.route(&cs, &model);
            prop_assert_eq!(a, b, "{} differed across runs", kind);
        }
    }

    #[test]
    fn exact_optimum_bounds_every_heuristic(cs in small_instance()) {
        let model = PowerModel::continuous(0.5, 1.0, 3.0, f64::INFINITY);
        let (_, opt) = optimal_single_path(&cs, &model, 1 << 22)
            .expect("budget suffices for ≤4 comms on ≤4×4")
            .expect("uncapacitated instances are feasible");
        for kind in HeuristicKind::ALL {
            let p = kind.route(&cs, &model).power(&cs, &model).unwrap().total();
            prop_assert!(p + 1e-9 * p.max(1.0) >= opt, "{} beat the optimum", kind);
        }
    }

    #[test]
    fn split_mp_structural_validity(cs in small_instance(), s in 1usize..=4) {
        let model = PowerModel::continuous(0.0, 1.0, 3.0, f64::INFINITY);
        let r = SplitMp::new(PathRemover, s).route(&cs, &model);
        prop_assert!(r.is_structurally_valid(&cs, s));
        prop_assert!(r.max_paths_per_comm() <= s);
        // Load conservation: total link load = Σ δ·ℓ.
        let expected: f64 = cs.comms().iter().map(|c| c.weight * c.len() as f64).sum();
        let total = r.loads(&cs).total();
        prop_assert!((total - expected).abs() < 1e-6 * expected.max(1.0));
    }

    #[test]
    fn surrogate_cost_is_monotone(load_a in 0.0f64..10.0, load_b in 0.0f64..10.0) {
        let model = PowerModel::continuous(0.2, 1.0, 3.0, 5.0);
        let (lo, hi) = if load_a <= load_b { (load_a, load_b) } else { (load_b, load_a) };
        prop_assert!(surrogate_link_cost(&model, lo) <= surrogate_link_cost(&model, hi) + 1e-12);
    }

    #[test]
    fn surrogate_overflow_dominates_feasible(extra in 0.001f64..10.0) {
        let model = PowerModel::continuous(0.2, 1.0, 3.0, 5.0);
        let feasible_max = surrogate_link_cost(&model, 5.0);
        let overflow = surrogate_link_cost(&model, 5.0 + extra);
        prop_assert!(overflow > feasible_max * 1e3);
    }

    #[test]
    fn any_tight_feasible_routing_is_loose_feasible(cs in small_instance()) {
        // Feasibility of a *fixed* routing is monotone in the capacity.
        let loose = PowerModel::continuous(0.0, 1.0, 3.0, 120.0);
        let tight = PowerModel::continuous(0.0, 1.0, 3.0, 60.0);
        for kind in HeuristicKind::ALL {
            let r = kind.route(&cs, &tight);
            if r.is_feasible(&cs, &tight) {
                prop_assert!(r.is_feasible(&cs, &loose), "{} routing lost feasibility", kind);
            }
        }
    }
}
