//! Regression and property tests for the endpoint-tables interner.
//!
//! `MeshPrecompute` promises two things the engines lean on: identical
//! `(src, snk)` pairs share **one** allocation (the interning regression
//! below), and an interned table is **bit-identical** to a table built
//! from scratch for the same pair (the shrinking property test — caching
//! may only ever change speed, never values).

use pamr_mesh::{Band, Coord, Mesh, Path};
use pamr_routing::{Comm, CommSet, EndpointTables, MeshPrecompute};
use proptest::prelude::*;
use std::sync::Arc;

#[test]
fn duplicate_endpoint_pairs_share_one_table_allocation() {
    // Two communications with the same endpoints (different weights —
    // weights play no part in the tables) resolve to the same Arc, both
    // through the raw interner and through the customize phase.
    let mesh = Mesh::new(6, 6);
    let pre = MeshPrecompute::new(mesh);
    let (src, snk) = (Coord::new(0, 2), Coord::new(5, 4));
    let cs = CommSet::new(
        mesh,
        vec![
            Comm::new(src, snk, 120.0),
            Comm::new(Coord::new(3, 3), Coord::new(1, 0), 55.0),
            Comm::new(src, snk, 990.0),
        ],
    );
    let cust = pre.customize(&cs);
    assert!(
        Arc::ptr_eq(cust.table(0), cust.table(2)),
        "identical (src, snk) pairs must share one EndpointTables allocation"
    );
    assert!(!Arc::ptr_eq(cust.table(0), cust.table(1)));
    assert!(
        Arc::ptr_eq(cust.table(0), &pre.endpoint_tables(src, snk)),
        "customize must resolve through the same interner as direct lookups"
    );
    // Re-customizing a different instance over the same pairs allocates
    // nothing new.
    let (_, misses_before) = pre.cache_stats();
    let cust2 = pre.customize(&cs);
    let (_, misses_after) = pre.cache_stats();
    assert_eq!(misses_before, misses_after, "re-customize must be all hits");
    assert!(Arc::ptr_eq(cust.table(0), cust2.table(0)));
}

/// Asserts every field of a cached table equals a from-scratch rebuild.
fn assert_tables_bit_identical(mesh: &Mesh, cached: &EndpointTables, src: Coord, snk: Coord) {
    let fresh = EndpointTables::build(mesh, src, snk);
    let band = Band::new(mesh, src, snk);
    assert_eq!(cached.src(), src);
    assert_eq!(cached.snk(), snk);
    assert_eq!(cached.band().len(), band.len());
    for t in 0..band.len() {
        assert_eq!(cached.band().group(t), band.group(t), "group {t}");
    }
    for t in 0..=band.len() {
        assert_eq!(cached.diag_rows()[t], band.diag_rows(mesh, t), "rows {t}");
        assert_eq!(cached.diag_rows()[t], fresh.diag_rows()[t]);
    }
    assert_eq!(cached.path_count(), Path::count(src, snk));
    assert_eq!(cached.path_count(), fresh.path_count());
    assert_eq!(cached.xy(), &Path::xy(src, snk));
    assert_eq!(cached.xy(), fresh.xy());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cached_tables_equal_fresh_builds_on_any_endpoints(
        (p, q, endpoints) in (2usize..=9, 2usize..=9).prop_flat_map(|(p, q)| {
            let pair = ((0..p, 0..q), (0..p, 0..q));
            (Just(p), Just(q), prop::collection::vec(pair, 1..=12))
        })
    ) {
        let mesh = Mesh::new(p, q);
        let pre = MeshPrecompute::new(mesh);
        for &((a, b), (c, d)) in &endpoints {
            let (src, snk) = (Coord::new(a, b), Coord::new(c, d));
            // Look up twice: the second hit must return the same Arc.
            let first = pre.endpoint_tables(src, snk);
            let second = pre.endpoint_tables(src, snk);
            prop_assert!(Arc::ptr_eq(&first, &second));
            assert_tables_bit_identical(&mesh, &first, src, snk);
        }
        let (_, misses) = pre.cache_stats();
        let distinct = endpoints
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        prop_assert_eq!(misses as usize, distinct, "one build per distinct pair");
    }
}
