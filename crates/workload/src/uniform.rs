//! Uniform random communication sets (Figures 7 & 8 of the paper).

use pamr_mesh::{Coord, Mesh};
use pamr_routing::{Comm, CommSet};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Generator drawing `n` communications with uniformly random **distinct**
/// source and sink cores and weights uniform in `[w_min, w_max]` (the
/// paper uses e.g. U[100, 1500] Mb/s for "small" communications).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformWorkload {
    /// Number of communications to draw.
    pub n: usize,
    /// Smallest possible weight.
    pub w_min: f64,
    /// Largest possible weight.
    pub w_max: f64,
}

impl UniformWorkload {
    /// Creates the generator.
    ///
    /// # Panics
    /// Panics unless `0 < w_min ≤ w_max`.
    pub fn new(n: usize, w_min: f64, w_max: f64) -> Self {
        assert!(w_min > 0.0 && w_min <= w_max, "invalid weight range");
        UniformWorkload { n, w_min, w_max }
    }

    /// Draws one instance on `mesh`.
    ///
    /// # Panics
    /// Panics on a 1×1 mesh (no distinct pair exists).
    pub fn generate<R: Rng + ?Sized>(&self, mesh: &Mesh, rng: &mut R) -> CommSet {
        assert!(mesh.num_cores() >= 2, "need at least two cores");
        let comms = (0..self.n)
            .map(|_| {
                let (src, snk) = random_distinct_pair(mesh, rng);
                Comm::new(src, snk, self.weight(rng))
            })
            .collect();
        CommSet::new(*mesh, comms)
    }

    fn weight<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.w_min == self.w_max {
            self.w_min
        } else {
            rng.gen_range(self.w_min..=self.w_max)
        }
    }
}

/// Draws two distinct uniformly random cores.
pub fn random_distinct_pair<R: Rng + ?Sized>(mesh: &Mesh, rng: &mut R) -> (Coord, Coord) {
    let n = mesh.num_cores();
    let a = rng.gen_range(0..n);
    // Sample the sink among the other n−1 cores without rejection.
    let mut b = rng.gen_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    (mesh.core_at(a), mesh.core_at(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_count_and_ranges() {
        let mesh = Mesh::new(8, 8);
        let gen = UniformWorkload::new(50, 100.0, 1500.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let cs = gen.generate(&mesh, &mut rng);
        assert_eq!(cs.len(), 50);
        for c in cs.comms() {
            assert_ne!(c.src, c.snk);
            assert!(c.weight >= 100.0 && c.weight <= 1500.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mesh = Mesh::new(8, 8);
        let gen = UniformWorkload::new(20, 100.0, 2500.0);
        let a = gen.generate(&mesh, &mut SmallRng::seed_from_u64(7));
        let b = gen.generate(&mesh, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = gen.generate(&mesh, &mut SmallRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn distinct_pair_covers_all_cores() {
        let mesh = Mesh::new(2, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen_src = [false; 4];
        let mut seen_snk = [false; 4];
        for _ in 0..400 {
            let (s, t) = random_distinct_pair(&mesh, &mut rng);
            assert_ne!(s, t);
            seen_src[mesh.core_index(s)] = true;
            seen_snk[mesh.core_index(t)] = true;
        }
        assert!(seen_src.iter().all(|&b| b));
        assert!(seen_snk.iter().all(|&b| b));
    }

    #[test]
    fn degenerate_weight_range() {
        let mesh = Mesh::new(3, 3);
        let gen = UniformWorkload::new(5, 700.0, 700.0);
        let cs = gen.generate(&mesh, &mut SmallRng::seed_from_u64(0));
        assert!(cs.comms().iter().all(|c| c.weight == 700.0));
    }

    #[test]
    #[should_panic]
    fn invalid_range_rejected() {
        let _ = UniformWorkload::new(5, 200.0, 100.0);
    }
}
