//! Application task graphs and their mapping onto the mesh.
//!
//! The paper's problem arises at the system level: "several applications,
//! described as task graphs, are executed on a CMP, and each task is already
//! mapped to a core" (§1). This module provides classic synthetic task
//! graphs and task→core mappings so the examples can build realistic
//! multi-application instances.

use pamr_mesh::{Coord, Mesh};
use pamr_routing::{Comm, CommSet};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A directed task graph: `n_tasks` tasks and weighted communication edges
/// `(producer, consumer, bytes/s)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    n_tasks: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl TaskGraph {
    /// Builds a task graph from raw edges.
    ///
    /// # Panics
    /// Panics if an edge references a task `≥ n_tasks`, is a self-loop, or
    /// has a non-positive weight.
    pub fn new(n_tasks: usize, edges: Vec<(usize, usize, f64)>) -> Self {
        for &(a, b, w) in &edges {
            assert!(a < n_tasks && b < n_tasks, "edge ({a},{b}) out of range");
            assert!(a != b, "self-loop on task {a}");
            assert!(w > 0.0, "edge weight must be positive");
        }
        TaskGraph { n_tasks, edges }
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// The communication edges.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Linear pipeline `0 → 1 → … → n−1`, every stage streaming `weight`.
    pub fn pipeline(n: usize, weight: f64) -> Self {
        assert!(n >= 2);
        TaskGraph::new(n, (0..n - 1).map(|i| (i, i + 1, weight)).collect())
    }

    /// Fork–join: a source scatters to `width` workers which gather into a
    /// sink (`width + 2` tasks).
    pub fn fork_join(width: usize, weight: f64) -> Self {
        assert!(width >= 1);
        let mut edges = Vec::with_capacity(2 * width);
        for w in 0..width {
            edges.push((0, 1 + w, weight));
            edges.push((1 + w, width + 1, weight));
        }
        TaskGraph::new(width + 2, edges)
    }

    /// 2-D 4-point stencil on an `a × b` task grid: every task exchanges
    /// `weight` with its right and down neighbours (both directions).
    pub fn stencil(a: usize, b: usize, weight: f64) -> Self {
        let id = |u: usize, v: usize| u * b + v;
        let mut edges = Vec::new();
        for u in 0..a {
            for v in 0..b {
                if v + 1 < b {
                    edges.push((id(u, v), id(u, v + 1), weight));
                    edges.push((id(u, v + 1), id(u, v), weight));
                }
                if u + 1 < a {
                    edges.push((id(u, v), id(u + 1, v), weight));
                    edges.push((id(u + 1, v), id(u, v), weight));
                }
            }
        }
        TaskGraph::new(a * b, edges)
    }

    /// All-to-one hotspot: every task streams `weight` to task 0 (e.g. a
    /// memory-controller tile).
    pub fn hotspot(n: usize, weight: f64) -> Self {
        assert!(n >= 2);
        TaskGraph::new(n, (1..n).map(|i| (i, 0, weight)).collect())
    }

    /// Matrix-transpose traffic on an `a × a` task grid: task `(u,v)` sends
    /// to task `(v,u)` for `u ≠ v`.
    pub fn transpose(a: usize, weight: f64) -> Self {
        let id = |u: usize, v: usize| u * a + v;
        let mut edges = Vec::new();
        for u in 0..a {
            for v in 0..a {
                if u != v {
                    edges.push((id(u, v), id(v, u), weight));
                }
            }
        }
        TaskGraph::new(a * a, edges)
    }

    /// Butterfly (FFT) stage traffic for `n = 2^k` tasks: in each stage `s`,
    /// task `i` exchanges with task `i XOR 2^s`.
    pub fn butterfly(log2_n: u32, weight: f64) -> Self {
        let n = 1usize << log2_n;
        let mut edges = Vec::new();
        for s in 0..log2_n {
            for i in 0..n {
                let j = i ^ (1 << s);
                if i < j {
                    edges.push((i, j, weight));
                    edges.push((j, i, weight));
                }
            }
        }
        TaskGraph::new(n, edges)
    }

    /// Instantiates the communications of this graph under `mapping`,
    /// dropping edges whose endpoints land on the same core (they become
    /// core-local and use no link).
    pub fn to_comms(&self, mapping: &Mapping) -> Vec<Comm> {
        assert!(mapping.len() >= self.n_tasks, "mapping too small");
        self.edges
            .iter()
            .filter_map(|&(a, b, w)| {
                let (ca, cb) = (mapping.core_of(a), mapping.core_of(b));
                (ca != cb).then(|| Comm::new(ca, cb, w))
            })
            .collect()
    }
}

/// A task→core mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    cores: Vec<Coord>,
}

impl Mapping {
    /// Row-major identity: task `i` on core `i` (row-major order).
    ///
    /// # Panics
    /// Panics if there are more tasks than cores.
    pub fn row_major(mesh: &Mesh, n_tasks: usize) -> Self {
        assert!(n_tasks <= mesh.num_cores(), "more tasks than cores");
        Mapping {
            cores: (0..n_tasks).map(|i| mesh.core_at(i)).collect(),
        }
    }

    /// Uniformly random one-task-per-core placement.
    pub fn random<R: Rng + ?Sized>(mesh: &Mesh, n_tasks: usize, rng: &mut R) -> Self {
        assert!(n_tasks <= mesh.num_cores(), "more tasks than cores");
        let mut all: Vec<Coord> = mesh.cores().collect();
        all.shuffle(rng);
        all.truncate(n_tasks);
        Mapping { cores: all }
    }

    /// Explicit placement.
    pub fn explicit(cores: Vec<Coord>) -> Self {
        Mapping { cores }
    }

    /// Number of mapped tasks.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// True when no task is mapped.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Core of task `t`.
    pub fn core_of(&self, t: usize) -> Coord {
        self.cores[t]
    }
}

/// Merges several mapped applications into one system-level instance (the
/// paper routes the union of all applications' communications, §3.2).
pub fn merge_applications(mesh: &Mesh, apps: &[(&TaskGraph, &Mapping)]) -> CommSet {
    let mut comms = Vec::new();
    for (tg, m) in apps {
        comms.extend(tg.to_comms(m));
    }
    CommSet::new(*mesh, comms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pipeline_shape() {
        let tg = TaskGraph::pipeline(5, 100.0);
        assert_eq!(tg.n_tasks(), 5);
        assert_eq!(tg.edges().len(), 4);
    }

    #[test]
    fn stencil_edge_count() {
        // 3×3 grid: 2·(3·2 + 2·3) = 24 directed edges.
        let tg = TaskGraph::stencil(3, 3, 1.0);
        assert_eq!(tg.edges().len(), 24);
    }

    #[test]
    fn butterfly_edge_count() {
        // n=8, 3 stages, n/2 pairs each, ×2 directions = 24.
        let tg = TaskGraph::butterfly(3, 1.0);
        assert_eq!(tg.n_tasks(), 8);
        assert_eq!(tg.edges().len(), 24);
    }

    #[test]
    fn transpose_skips_diagonal() {
        let tg = TaskGraph::transpose(3, 1.0);
        assert_eq!(tg.edges().len(), 6);
    }

    #[test]
    fn hotspot_converges_on_task0() {
        let tg = TaskGraph::hotspot(5, 2.0);
        assert!(tg.edges().iter().all(|&(_, b, _)| b == 0));
    }

    #[test]
    fn row_major_mapping_round_trips() {
        let mesh = Mesh::new(4, 4);
        let m = Mapping::row_major(&mesh, 16);
        assert_eq!(m.core_of(0), Coord::new(0, 0));
        assert_eq!(m.core_of(5), Coord::new(1, 1));
        assert_eq!(m.core_of(15), Coord::new(3, 3));
    }

    #[test]
    fn random_mapping_is_injective() {
        let mesh = Mesh::new(4, 4);
        let mut rng = SmallRng::seed_from_u64(5);
        let m = Mapping::random(&mesh, 12, &mut rng);
        let set: std::collections::HashSet<_> = (0..12).map(|t| m.core_of(t)).collect();
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn to_comms_drops_core_local_edges() {
        let tg = TaskGraph::pipeline(3, 10.0);
        // Map tasks 0 and 1 to the same core.
        let m = Mapping::explicit(vec![Coord::new(0, 0), Coord::new(0, 0), Coord::new(1, 1)]);
        let comms = tg.to_comms(&m);
        assert_eq!(comms.len(), 1);
        assert_eq!(comms[0].src, Coord::new(0, 0));
        assert_eq!(comms[0].snk, Coord::new(1, 1));
    }

    #[test]
    fn merged_applications_form_one_instance() {
        let mesh = Mesh::new(4, 4);
        let fft = TaskGraph::butterfly(2, 500.0);
        let pipe = TaskGraph::pipeline(4, 900.0);
        let m1 = Mapping::row_major(&mesh, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        let m2 = Mapping::random(&mesh, 4, &mut rng);
        let cs = merge_applications(&mesh, &[(&fft, &m1), (&pipe, &m2)]);
        assert!(cs.len() >= pipe.edges().len());
        assert!(cs.len() <= fft.edges().len() + pipe.edges().len());
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let _ = TaskGraph::new(3, vec![(1, 1, 1.0)]);
    }
}
