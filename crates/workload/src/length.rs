//! Length-targeted communication sets (Figure 9 of the paper: sensitivity
//! to the average communication length).

use pamr_mesh::{Coord, Mesh};
use pamr_routing::{Comm, CommSet};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Generator drawing communications "whose length is around the target
/// average length" (§6.3): each source/sink pair is sampled uniformly among
/// the pairs at Manhattan distance `target ± 1` (clamped to the distances
/// that exist on the mesh).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LengthTargetedWorkload {
    /// Number of communications to draw.
    pub n: usize,
    /// Smallest possible weight.
    pub w_min: f64,
    /// Largest possible weight.
    pub w_max: f64,
    /// Target Manhattan distance between source and sink.
    pub target_len: usize,
}

impl LengthTargetedWorkload {
    /// Creates the generator.
    ///
    /// # Panics
    /// Panics unless `0 < w_min ≤ w_max` and `target_len ≥ 1`.
    pub fn new(n: usize, w_min: f64, w_max: f64, target_len: usize) -> Self {
        assert!(w_min > 0.0 && w_min <= w_max, "invalid weight range");
        assert!(target_len >= 1, "target length must be at least 1");
        LengthTargetedWorkload {
            n,
            w_min,
            w_max,
            target_len,
        }
    }

    /// Draws one instance on `mesh`.
    ///
    /// Meshes up to [`PAIR_ENUM_MAX_CORES`] cores sample from the full
    /// [`PairBuckets`] enumeration — that path fixes the RNG draw
    /// sequence every committed fixture was blessed under. Larger meshes
    /// switch to [`sample_pair_at`], which draws from the *same* uniform
    /// distribution over ordered pairs without materialising the
    /// O(cores²) pair list (137 GB on a 256×256 mesh), at the cost of a
    /// different draw sequence per communication.
    pub fn generate<R: Rng + ?Sized>(&self, mesh: &Mesh, rng: &mut R) -> CommSet {
        let max_len = mesh.rows() + mesh.cols() - 2;
        let lo = self.target_len.saturating_sub(1).max(1).min(max_len);
        let hi = (self.target_len + 1).min(max_len);
        let buckets = (mesh.num_cores() <= PAIR_ENUM_MAX_CORES).then(|| PairBuckets::new(mesh));
        let comms = (0..self.n)
            .map(|_| {
                let len = rng.gen_range(lo..=hi);
                let (src, snk) = match &buckets {
                    Some(b) => b.sample(len, rng),
                    None => sample_pair_at(mesh, len, rng),
                };
                let weight = if self.w_min == self.w_max {
                    self.w_min
                } else {
                    rng.gen_range(self.w_min..=self.w_max)
                };
                Comm::new(src, snk, weight)
            })
            .collect();
        CommSet::new(*mesh, comms)
    }
}

/// Largest core count still sampled through the [`PairBuckets`]
/// enumeration (64×64). Above this the O(cores²) pair list is replaced
/// by the displacement-weighted [`sample_pair_at`].
pub const PAIR_ENUM_MAX_CORES: usize = 4096;

/// Uniformly samples an ordered core pair at exactly Manhattan distance
/// `len` without enumerating pairs.
///
/// A pair is one signed displacement `(dx, dy)` with `|dx| + |dy| = len`
/// plus a source admitting it; there are `(p − |dx|)·(q − |dy|)` sources
/// per signed displacement, so drawing the displacement with that weight
/// and then the source uniformly is exactly the uniform distribution
/// [`PairBuckets::sample`] draws from (the per-call RNG consumption
/// differs). Runs in O(len) time and O(1) space.
///
/// # Panics
/// Panics if no core pair exists at distance `len` on `mesh`.
pub fn sample_pair_at<R: Rng + ?Sized>(mesh: &Mesh, len: usize, rng: &mut R) -> (Coord, Coord) {
    let (p, q) = (mesh.rows(), mesh.cols());
    let total = pairs_at_distance(mesh, len);
    assert!(total > 0, "no core pair at distance {len}");
    let mut r = rng.gen_range(0..total);
    for (dx, dy) in signed_displacements(p, q, len) {
        let w = ((p - dx.unsigned_abs()) * (q - dy.unsigned_abs())) as u64;
        if r < w {
            // Source uniform among the admitting rectangle: a negative
            // component shifts the base so src + (dx, dy) stays in-mesh.
            let u = rng.gen_range(0..p - dx.unsigned_abs())
                + if dx < 0 { dx.unsigned_abs() } else { 0 };
            let v = rng.gen_range(0..q - dy.unsigned_abs())
                + if dy < 0 { dy.unsigned_abs() } else { 0 };
            let src = Coord::new(u, v);
            let snk = Coord::new(u.wrapping_add_signed(dx), v.wrapping_add_signed(dy));
            return (src, snk);
        }
        r -= w;
    }
    unreachable!("displacement weights sum to the pair count");
}

/// Number of ordered core pairs at exactly distance `len` — the closed
/// form `Σ (p − |dx|)·(q − |dy|)` over signed displacements, equal to
/// [`PairBuckets::count`] without building the buckets.
pub fn pairs_at_distance(mesh: &Mesh, len: usize) -> u64 {
    let (p, q) = (mesh.rows(), mesh.cols());
    if len == 0 {
        // Distance 0 is the core itself; the bucket enumeration skips
        // `a == b`, so the closed form must too.
        return 0;
    }
    signed_displacements(p, q, len)
        .map(|(dx, dy)| ((p - dx.unsigned_abs()) * (q - dy.unsigned_abs())) as u64)
        .sum()
}

/// All signed displacements `(dx, dy)` with `|dx| + |dy| = len` that fit
/// a `p`×`q` mesh, in a fixed deterministic order.
fn signed_displacements(p: usize, q: usize, len: usize) -> impl Iterator<Item = (isize, isize)> {
    let adx_min = len.saturating_sub(q.saturating_sub(1));
    let adx_max = len.min(p.saturating_sub(1));
    (adx_min..=adx_max).flat_map(move |adx| {
        let ady = len - adx;
        let dxs: &[isize] = if adx == 0 { &[0] } else { &[1, -1] };
        let dys: &[isize] = if ady == 0 { &[0] } else { &[1, -1] };
        dxs.iter().flat_map(move |&sx| {
            dys.iter()
                .map(move |&sy| (sx * adx as isize, sy * ady as isize))
        })
    })
}

/// All ordered core pairs of a mesh, bucketed by Manhattan distance.
///
/// Built once per mesh (O(cores²)) and reused across samples.
#[derive(Debug, Clone)]
pub struct PairBuckets {
    by_len: Vec<Vec<(Coord, Coord)>>,
}

impl PairBuckets {
    /// Enumerates every ordered pair of distinct cores.
    pub fn new(mesh: &Mesh) -> Self {
        let max = mesh.rows() + mesh.cols() - 2;
        let mut by_len: Vec<Vec<(Coord, Coord)>> = vec![Vec::new(); max + 1];
        for a in mesh.cores() {
            for b in mesh.cores() {
                if a != b {
                    by_len[a.manhattan(b)].push((a, b));
                }
            }
        }
        PairBuckets { by_len }
    }

    /// Largest distance with at least one pair.
    pub fn max_len(&self) -> usize {
        self.by_len.len() - 1
    }

    /// Number of ordered pairs at exactly distance `len`.
    pub fn count(&self, len: usize) -> usize {
        self.by_len.get(len).map_or(0, Vec::len)
    }

    /// Uniformly samples a pair at exactly distance `len`.
    ///
    /// # Panics
    /// Panics if no pair exists at that distance.
    pub fn sample<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> (Coord, Coord) {
        let bucket = &self.by_len[len];
        assert!(!bucket.is_empty(), "no core pair at distance {len}");
        bucket[rng.gen_range(0..bucket.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn buckets_cover_all_pairs() {
        let mesh = Mesh::new(4, 4);
        let b = PairBuckets::new(&mesh);
        let total: usize = (1..=b.max_len()).map(|l| b.count(l)).sum();
        assert_eq!(total, 16 * 15);
        assert_eq!(b.count(0), 0);
        assert_eq!(b.max_len(), 6);
        // Exactly two ordered pairs at the maximum distance per corner pair:
        // (0,0)↔(3,3) and (0,3)↔(3,0).
        assert_eq!(b.count(6), 4);
    }

    #[test]
    fn generated_lengths_stay_near_target() {
        let mesh = Mesh::new(8, 8);
        let gen = LengthTargetedWorkload::new(200, 200.0, 800.0, 10);
        let cs = gen.generate(&mesh, &mut SmallRng::seed_from_u64(3));
        for c in cs.comms() {
            let l = c.len();
            assert!((9..=11).contains(&l), "length {l} outside target band");
        }
        let mean = cs.mean_length();
        assert!((mean - 10.0).abs() < 0.5, "mean length {mean}");
    }

    #[test]
    fn extreme_targets_are_clamped() {
        let mesh = Mesh::new(8, 8);
        // Target beyond the mesh diameter (14): must clamp to 13..14.
        let gen = LengthTargetedWorkload::new(50, 100.0, 200.0, 20);
        let cs = gen.generate(&mesh, &mut SmallRng::seed_from_u64(9));
        for c in cs.comms() {
            assert!(c.len() >= 13);
        }
        // Target 1: lengths in 1..=2.
        let gen = LengthTargetedWorkload::new(50, 100.0, 200.0, 1);
        let cs = gen.generate(&mesh, &mut SmallRng::seed_from_u64(9));
        for c in cs.comms() {
            assert!((1..=2).contains(&c.len()));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mesh = Mesh::new(8, 8);
        let gen = LengthTargetedWorkload::new(25, 100.0, 3500.0, 7);
        let a = gen.generate(&mesh, &mut SmallRng::seed_from_u64(11));
        let b = gen.generate(&mesh, &mut SmallRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn closed_form_count_matches_bucket_enumeration() {
        for (p, q) in [(4, 4), (1, 8), (8, 1), (3, 5), (2, 2), (1, 1)] {
            let mesh = Mesh::new(p, q);
            let b = PairBuckets::new(&mesh);
            for len in 0..=(p + q) {
                assert_eq!(
                    pairs_at_distance(&mesh, len),
                    b.count(len) as u64,
                    "count at distance {len} diverged on {p}x{q}"
                );
            }
        }
    }

    #[test]
    fn direct_sampler_draws_valid_pairs() {
        let mesh = Mesh::new(5, 7);
        let mut rng = SmallRng::seed_from_u64(42);
        for len in 1..=(mesh.rows() + mesh.cols() - 2) {
            for _ in 0..64 {
                let (src, snk) = sample_pair_at(&mesh, len, &mut rng);
                assert_eq!(src.manhattan(snk), len, "{src}->{snk}");
                assert_ne!(src, snk);
                assert!(src.u < 5 && src.v < 7, "source {src} off-mesh");
                assert!(snk.u < 5 && snk.v < 7, "sink {snk} off-mesh");
            }
        }
    }

    #[test]
    fn direct_sampler_covers_every_bucket_pair() {
        // On a mesh small enough to enumerate, enough draws must hit every
        // ordered pair the buckets hold — uniform support, no gaps from a
        // mis-shifted source rectangle.
        let mesh = Mesh::new(2, 3);
        let b = PairBuckets::new(&mesh);
        let mut rng = SmallRng::seed_from_u64(7);
        for len in 1..=b.max_len() {
            let mut seen: Vec<(Coord, Coord)> = Vec::new();
            for _ in 0..64 * b.count(len) {
                let pair = sample_pair_at(&mesh, len, &mut rng);
                if !seen.contains(&pair) {
                    seen.push(pair);
                }
            }
            assert_eq!(seen.len(), b.count(len), "missing pairs at distance {len}");
        }
    }

    #[test]
    fn generate_switches_sampler_above_the_enumeration_threshold() {
        // 65×65 = 4225 cores, just past PAIR_ENUM_MAX_CORES: generate must
        // take the direct-sampler path and still honour the length band.
        let mesh = Mesh::new(65, 65);
        assert!(mesh.num_cores() > PAIR_ENUM_MAX_CORES);
        let gen = LengthTargetedWorkload::new(100, 100.0, 800.0, 8);
        let cs = gen.generate(&mesh, &mut SmallRng::seed_from_u64(13));
        assert_eq!(cs.comms().len(), 100);
        for c in cs.comms() {
            assert!((7..=9).contains(&c.len()), "length {} off-target", c.len());
        }
    }
}
