//! Length-targeted communication sets (Figure 9 of the paper: sensitivity
//! to the average communication length).

use pamr_mesh::{Coord, Mesh};
use pamr_routing::{Comm, CommSet};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Generator drawing communications "whose length is around the target
/// average length" (§6.3): each source/sink pair is sampled uniformly among
/// the pairs at Manhattan distance `target ± 1` (clamped to the distances
/// that exist on the mesh).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LengthTargetedWorkload {
    /// Number of communications to draw.
    pub n: usize,
    /// Smallest possible weight.
    pub w_min: f64,
    /// Largest possible weight.
    pub w_max: f64,
    /// Target Manhattan distance between source and sink.
    pub target_len: usize,
}

impl LengthTargetedWorkload {
    /// Creates the generator.
    ///
    /// # Panics
    /// Panics unless `0 < w_min ≤ w_max` and `target_len ≥ 1`.
    pub fn new(n: usize, w_min: f64, w_max: f64, target_len: usize) -> Self {
        assert!(w_min > 0.0 && w_min <= w_max, "invalid weight range");
        assert!(target_len >= 1, "target length must be at least 1");
        LengthTargetedWorkload {
            n,
            w_min,
            w_max,
            target_len,
        }
    }

    /// Draws one instance on `mesh`.
    pub fn generate<R: Rng + ?Sized>(&self, mesh: &Mesh, rng: &mut R) -> CommSet {
        let buckets = PairBuckets::new(mesh);
        let lo = self
            .target_len
            .saturating_sub(1)
            .max(1)
            .min(buckets.max_len());
        let hi = (self.target_len + 1).min(buckets.max_len());
        let comms = (0..self.n)
            .map(|_| {
                let len = rng.gen_range(lo..=hi);
                let (src, snk) = buckets.sample(len, rng);
                let weight = if self.w_min == self.w_max {
                    self.w_min
                } else {
                    rng.gen_range(self.w_min..=self.w_max)
                };
                Comm::new(src, snk, weight)
            })
            .collect();
        CommSet::new(*mesh, comms)
    }
}

/// All ordered core pairs of a mesh, bucketed by Manhattan distance.
///
/// Built once per mesh (O(cores²)) and reused across samples.
#[derive(Debug, Clone)]
pub struct PairBuckets {
    by_len: Vec<Vec<(Coord, Coord)>>,
}

impl PairBuckets {
    /// Enumerates every ordered pair of distinct cores.
    pub fn new(mesh: &Mesh) -> Self {
        let max = mesh.rows() + mesh.cols() - 2;
        let mut by_len: Vec<Vec<(Coord, Coord)>> = vec![Vec::new(); max + 1];
        for a in mesh.cores() {
            for b in mesh.cores() {
                if a != b {
                    by_len[a.manhattan(b)].push((a, b));
                }
            }
        }
        PairBuckets { by_len }
    }

    /// Largest distance with at least one pair.
    pub fn max_len(&self) -> usize {
        self.by_len.len() - 1
    }

    /// Number of ordered pairs at exactly distance `len`.
    pub fn count(&self, len: usize) -> usize {
        self.by_len.get(len).map_or(0, Vec::len)
    }

    /// Uniformly samples a pair at exactly distance `len`.
    ///
    /// # Panics
    /// Panics if no pair exists at that distance.
    pub fn sample<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> (Coord, Coord) {
        let bucket = &self.by_len[len];
        assert!(!bucket.is_empty(), "no core pair at distance {len}");
        bucket[rng.gen_range(0..bucket.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn buckets_cover_all_pairs() {
        let mesh = Mesh::new(4, 4);
        let b = PairBuckets::new(&mesh);
        let total: usize = (1..=b.max_len()).map(|l| b.count(l)).sum();
        assert_eq!(total, 16 * 15);
        assert_eq!(b.count(0), 0);
        assert_eq!(b.max_len(), 6);
        // Exactly two ordered pairs at the maximum distance per corner pair:
        // (0,0)↔(3,3) and (0,3)↔(3,0).
        assert_eq!(b.count(6), 4);
    }

    #[test]
    fn generated_lengths_stay_near_target() {
        let mesh = Mesh::new(8, 8);
        let gen = LengthTargetedWorkload::new(200, 200.0, 800.0, 10);
        let cs = gen.generate(&mesh, &mut SmallRng::seed_from_u64(3));
        for c in cs.comms() {
            let l = c.len();
            assert!((9..=11).contains(&l), "length {l} outside target band");
        }
        let mean = cs.mean_length();
        assert!((mean - 10.0).abs() < 0.5, "mean length {mean}");
    }

    #[test]
    fn extreme_targets_are_clamped() {
        let mesh = Mesh::new(8, 8);
        // Target beyond the mesh diameter (14): must clamp to 13..14.
        let gen = LengthTargetedWorkload::new(50, 100.0, 200.0, 20);
        let cs = gen.generate(&mesh, &mut SmallRng::seed_from_u64(9));
        for c in cs.comms() {
            assert!(c.len() >= 13);
        }
        // Target 1: lengths in 1..=2.
        let gen = LengthTargetedWorkload::new(50, 100.0, 200.0, 1);
        let cs = gen.generate(&mesh, &mut SmallRng::seed_from_u64(9));
        for c in cs.comms() {
            assert!((1..=2).contains(&c.len()));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mesh = Mesh::new(8, 8);
        let gen = LengthTargetedWorkload::new(25, 100.0, 3500.0, 7);
        let a = gen.generate(&mesh, &mut SmallRng::seed_from_u64(11));
        let b = gen.generate(&mesh, &mut SmallRng::seed_from_u64(11));
        assert_eq!(a, b);
    }
}
