//! # pamr-workload — communication-set generators
//!
//! Produces the problem instances of the paper's evaluation (§6) and of
//! the example applications:
//!
//! * [`UniformWorkload`] — `n` communications with uniformly random distinct
//!   source/sink cores and uniformly random weights (the generator behind
//!   Figures 7 and 8);
//! * [`LengthTargetedWorkload`] — same, but source/sink pairs are drawn at a
//!   target Manhattan distance (Figure 9's sweep over the average
//!   communication length);
//! * [`taskgraph`] — synthetic application task graphs (pipeline, stencil,
//!   transpose, hotspot, butterfly) with explicit task→core mappings,
//!   modelling the paper's system-level story of several mapped applications
//!   generating communications (§1, §3.2).
//!
//! All generators are deterministic given an RNG state; experiments seed
//! them per-trial for reproducibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod length;
pub mod taskgraph;
pub mod uniform;

pub use length::LengthTargetedWorkload;
pub use taskgraph::{Mapping, TaskGraph};
pub use uniform::UniformWorkload;
