//! Golden-diagnostics gate for the lint pass itself.
//!
//! `fixtures/tree/` is a miniature workspace with one seeded violation per
//! rule (plus waiver-hygiene seeds); `fixtures/expected.json` pins the
//! byte-exact `--json` report the real walker + rule passes produce over
//! it. A rule that silently stops firing — or starts firing somewhere new —
//! changes these bytes and fails here.
//!
//! When a rule intentionally changes, regenerate and review the diff:
//!
//! ```text
//! PAMR_BLESS=1 cargo test -p pamr-lint --test golden
//! ```

use pamr_lint::config::Config;
use pamr_lint::driver;
use pamr_lint::report;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn seeded_tree_reproduces_the_committed_diagnostics() {
    let result = driver::check_workspace(&fixture_dir().join("tree"), &Config::default())
        .expect("fixture tree walks");
    let current = report::render_json(&result.diagnostics);

    let path = fixture_dir().join("expected.json");
    if std::env::var_os("PAMR_BLESS").is_some() {
        std::fs::write(&path, &current).expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with PAMR_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        golden, current,
        "lint diagnostics over the seeded tree diverged byte-for-byte from \
         the committed fixture (if intentional: PAMR_BLESS=1 cargo test -p \
         pamr-lint --test golden)"
    );
}

#[test]
fn every_rule_fires_on_its_seed() {
    // Independent of the pinned bytes: each registered rule must produce at
    // least one diagnostic from its seed file, so no rule can silently rot
    // even while the fixture is being re-blessed.
    let result = driver::check_workspace(&fixture_dir().join("tree"), &Config::default())
        .expect("fixture tree walks");
    for rule in [
        "D001", "D002", "D003", "P001", "U001", "V001", "G001", "W000", "W001",
    ] {
        assert!(
            result.diagnostics.iter().any(|d| d.rule == rule),
            "rule {rule} fired nowhere in the seeded tree"
        );
    }
}

#[test]
fn waivers_suppress_in_the_seeded_tree() {
    // The reason-carrying waiver in d001_seed.rs and the reasonless one in
    // waiver_seed.rs must both suppress their D001 (W000 is the enforcement
    // for the latter, not non-suppression).
    let result = driver::check_workspace(&fixture_dir().join("tree"), &Config::default())
        .expect("fixture tree walks");
    for (file, line) in [
        ("crates/sim/src/d001_seed.rs", 8),
        ("crates/sim/src/waiver_seed.rs", 6),
    ] {
        assert!(
            !result
                .diagnostics
                .iter()
                .any(|d| d.rule == "D001" && d.file == file && d.line == line),
            "waived D001 at {file}:{line} leaked into the report"
        );
    }
    assert_eq!(result.waivers.len(), 3, "seeded tree carries three waivers");
}

#[test]
fn severity_overrides_downgrade_and_disable() {
    let mut warn_cfg = Config::default();
    warn_cfg.set("P001=warn").unwrap();
    let warns = driver::check_workspace(&fixture_dir().join("tree"), &warn_cfg)
        .expect("fixture tree walks");
    let p001: Vec<_> = warns
        .diagnostics
        .iter()
        .filter(|d| d.rule == "P001")
        .collect();
    assert!(!p001.is_empty());
    assert!(p001
        .iter()
        .all(|d| d.severity == pamr_lint::report::Severity::Warn));

    let mut off_cfg = Config::default();
    off_cfg.set("P001=off").unwrap();
    let offs =
        driver::check_workspace(&fixture_dir().join("tree"), &off_cfg).expect("fixture tree walks");
    assert!(offs.diagnostics.iter().all(|d| d.rule != "P001"));
}
