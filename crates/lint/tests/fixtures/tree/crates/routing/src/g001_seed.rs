//! G001 seed: production code flipping a deprecated engine global instead
//! of threading an explicit `EngineConfig`.

fn pin_reference_engine() {
    pr::set_implementation(PrImpl::Reference);
}
