//! Seeded P001 violation: an unchecked unwrap on a routing hot path
//! (this file's name puts it in P001 scope, like the real pr.rs).

/// Panics on an empty slice — must fire.
pub fn head(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}

/// The non-panicking twin must NOT fire.
pub fn head_or_zero(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}
