//! Seeded U001 violation: unsafe code in a first-party crate.

/// An unsafe block — must fire.
pub fn peek(p: *const u8) -> u8 {
    unsafe { p.read() }
}
