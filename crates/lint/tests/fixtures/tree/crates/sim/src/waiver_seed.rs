//! Seeded waiver-hygiene violations: a waiver without a reason (W000) and
//! a waiver naming an unknown rule (W001). The reasonless waiver still
//! suppresses its D001 — W000 is the enforcement, not non-suppression.

// pamr-lint: allow(D001)
use std::collections::HashMap;

// pamr-lint: allow(Z999, reason = "seeds the unknown-rule diagnostic")
pub type Seed = HashMap<u8, u8>;
