//! Seeded D001 violation: an unordered map in report-producing scope.
//! The first `HashMap` mention must fire; the second is reason-waived and
//! must not (the golden fixture pins both behaviours).

use std::collections::HashMap;

// pamr-lint: allow(D001, reason = "lookup-only map in this seed, never iterated")
pub type Lookup = HashMap<&'static str, u32>;

/// A string that must NOT fire: HashMap here is prose, not code.
pub const DOCS: &str = "prefer BTreeMap over HashMap in reports";

#[cfg(test)]
mod tests {
    // Test modules may use unordered containers freely.
    use std::collections::HashSet;

    #[test]
    fn sets_are_fine_here() {
        assert!(HashSet::<u32>::new().is_empty());
    }
}
