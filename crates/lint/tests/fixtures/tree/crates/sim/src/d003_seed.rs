//! Seeded D003 violation: float accumulation inside a parallel chain.

/// Sums floats across a parallel iterator — must fire (and would need a
/// waiver citing the vendored rayon's fixed-chunk in-order combine).
pub fn total(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum::<f64>()
}

/// The sequential twin must NOT fire: no parallel chain here.
pub fn total_seq(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * 2.0).sum::<f64>()
}
