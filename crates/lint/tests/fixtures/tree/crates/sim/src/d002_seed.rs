//! Seeded D002 violation: a wall-clock read outside the bench allowlist.

/// Reads the wall clock on what could be a report path — must fire.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
