//! Seeded V001 violation: a vendored stand-in reaching std::process.

/// Kills the process from vendor code — must fire.
pub fn bail() -> ! {
    std::process::exit(1)
}
