//! Property test for the lexer's one correctness-critical job: tokens are
//! never reported from inside strings, raw strings, byte strings, chars,
//! line comments or block comments. A failure here would mean a lint rule
//! can fire on prose — the vendored proptest shrinks the segment list to a
//! minimal counterexample and prints a `PAMR_PROPTEST_SEED` replay line.

use pamr_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Words the lint rules match on — the worst possible text to leak out of
/// a literal or comment.
const TRAPS: &[&str] = &["unwrap", "HashMap", "unsafe", "Instant"];

/// Innocent identifiers for code segments (disjoint from TRAPS).
const IDENTS: &[&str] = &["alpha", "beta", "gamma", "delta"];

/// One rendered segment: its source text and whether identifier tokens are
/// allowed to originate inside it.
struct Segment {
    text: String,
    is_code: bool,
}

/// Renders segment `kind` around trap word `w` (non-code kinds embed the
/// trap; the code kind emits an innocent identifier instead).
fn render(kind: usize, w: usize) -> Segment {
    let trap = TRAPS[w];
    let (text, is_code) = match kind {
        0 => (IDENTS[w].to_string(), true),
        1 => (format!("\"xx {trap} yy\""), false),
        2 => (format!("\"esc \\\" {trap} \\\\\""), false),
        3 => (format!("// prose {trap} prose"), false),
        4 => (format!("/* {trap} /* nested {trap} */ tail */"), false),
        5 => (format!("r#\"{trap} \"quoted\" {trap}\"#"), false),
        6 => (format!("b\"{trap}\""), false),
        _ => (format!("'{}'", trap.chars().next().unwrap()), false),
    };
    Segment { text, is_code }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn idents_never_leak_out_of_literals_or_comments(
        segs in prop::collection::vec((0usize..8, 0usize..4), 0..24)
    ) {
        // Assemble the source with byte-span tracking, one segment per
        // line (line comments need the newline terminator anyway).
        let mut src = String::new();
        let mut spans: Vec<(usize, usize, bool)> = Vec::new();
        let mut expected_idents = 0usize;
        for &(kind, w) in &segs {
            let seg = render(kind, w);
            let start = src.len();
            src.push_str(&seg.text);
            spans.push((start, src.len(), seg.is_code));
            src.push('\n');
            if seg.is_code {
                expected_idents += 1;
            }
        }

        let toks = lex(&src);
        let mut seen_idents = 0usize;
        for t in &toks {
            if t.kind != TokKind::Ident {
                continue;
            }
            seen_idents += 1;
            // Every identifier must originate in a code segment…
            let home = spans.iter().find(|&&(s, e, _)| t.start >= s && t.start < e);
            prop_assert!(
                matches!(home, Some(&(_, _, true))),
                "ident {:?} at byte {} leaked from a non-code segment",
                t.text,
                t.start
            );
            // …and must be one of the innocent words, never a trap.
            prop_assert!(
                IDENTS.contains(&t.text.as_str()),
                "unexpected ident {:?} (trap words must stay hidden)",
                t.text
            );
        }
        // No code identifier may be swallowed either: one per code segment.
        prop_assert_eq!(seen_idents, expected_idents);
    }

    #[test]
    fn waiver_comments_survive_any_neighbourhood(
        segs in prop::collection::vec((0usize..8, 0usize..4), 0..12)
    ) {
        // A waiver comment placed after arbitrary literal/comment noise is
        // still scanned: the comment token stream is position-faithful.
        let mut src = String::new();
        for &(kind, w) in &segs {
            src.push_str(&render(kind, w).text);
            src.push('\n');
        }
        let waiver_line = src.lines().count() + 1;
        src.push_str("// pamr-lint: allow(D001, reason = \"prop\")\n");
        let toks = lex(&src);
        let found = toks.iter().any(|t| {
            t.kind == TokKind::LineComment
                && t.line == waiver_line
                && t.text.contains("pamr-lint: allow(D001")
        });
        prop_assert!(found, "waiver comment lost at line {}", waiver_line);
    }
}
