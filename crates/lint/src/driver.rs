//! Workspace walking and the whole-tree check entry point.
//!
//! The walker is deliberately narrow: it visits the facade `src/`, every
//! `crates/*/src`, and every `vendor/*/src`, recursing into subdirectories
//! and collecting `.rs` files in sorted order. Narrow scope keeps the pass
//! fast and keeps `target/`, fixtures, and scratch files out of the report;
//! sorted enumeration (plus the canonical sort in [`crate::report`]) makes
//! the report byte-stable — the same bar the tool enforces elsewhere.
//!
//! The golden-fixture tests run this same walker over a miniature tree that
//! mimics the workspace layout, so path-scoped rules are exercised through
//! the exact path-derivation code the real run uses.

use crate::config::Config;
use crate::lexer;
use crate::report::{self, Diagnostic};
use crate::rules;
use crate::waivers::{self, Waiver};
use std::fs;
use std::path::{Path, PathBuf};

/// Lists every first-party and vendored `.rs` file under `root`, as
/// workspace-relative forward-slash paths, sorted.
pub fn source_files(root: &Path) -> Result<Vec<String>, String> {
    let mut roots: Vec<PathBuf> = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        roots.push(src);
    }
    for tier in ["crates", "vendor"] {
        let dir = root.join(tier);
        if !dir.is_dir() {
            continue;
        }
        let mut members: Vec<PathBuf> = fs::read_dir(&dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.join("src").is_dir())
            .map(|p| p.join("src"))
            .collect();
        members.sort();
        roots.append(&mut members);
    }

    let mut files = Vec::new();
    for r in &roots {
        collect_rs(r, &mut files)?;
    }
    let mut rels: Vec<String> = files
        .iter()
        .map(|p| {
            p.strip_prefix(root)
                .unwrap_or(p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rels.sort();
    Ok(rels)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The result of a whole-tree check.
pub struct CheckResult {
    /// Surviving diagnostics, in canonical order.
    pub diagnostics: Vec<Diagnostic>,
    /// Every waiver found, paired with its file (for the inventory).
    pub waivers: Vec<(String, Waiver)>,
    /// How many files were scanned.
    pub files: usize,
}

/// Lexes and checks every source file under `root`.
pub fn check_workspace(root: &Path, config: &Config) -> Result<CheckResult, String> {
    let rels = source_files(root)?;
    let mut diagnostics = Vec::new();
    let mut all_waivers = Vec::new();
    let files = rels.len();
    for rel in rels {
        let full = root.join(&rel);
        let src = fs::read_to_string(&full).map_err(|e| format!("{}: {e}", full.display()))?;
        let tokens = lexer::lex(&src);
        for w in waivers::scan(&tokens) {
            all_waivers.push((rel.clone(), w));
        }
        rules::check_file(&rel, &tokens, config, &mut diagnostics);
    }
    report::sort(&mut diagnostics);
    Ok(CheckResult {
        diagnostics,
        waivers: all_waivers,
        files,
    })
}
