//! A hand-rolled token-level Rust lexer.
//!
//! The lint rules are token patterns, so the one correctness-critical job
//! of this module is *not* to report tokens that live inside line comments,
//! block comments (nested), string literals, raw string literals, byte
//! strings or char literals — the places where `unwrap` or `HashMap` is
//! just prose. `tests/lexer_prop.rs` pins exactly that property with a
//! shrinking proptest; `tests/golden.rs` pins the rule output built on top.
//!
//! The lexer is deliberately lossy about everything the rules do not need:
//! multi-character operators come out as single-character [`TokKind::Punct`]
//! tokens (`::` is two `:`), and numeric literals are one token regardless
//! of suffix. Comments are *kept* in the stream (the waiver scanner reads
//! them); rule passes filter them out via [`Token::is_code`].

/// What a token is. Only the distinctions the rules and the waiver scanner
/// observe are represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `HashMap`, `r#type`).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (integer or float, any base or suffix).
    Number,
    /// String, raw string, byte string or char literal.
    Literal,
    /// A single punctuation character.
    Punct(char),
    /// `//…` comment (doc comments included; see [`Token::is_plain_line_comment`]).
    LineComment,
    /// `/* … */` comment (nesting handled).
    BlockComment,
}

/// One lexed token with its 1-indexed source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// The token's text, owned (comment text is what the waiver scanner
    /// parses; identifier text is what the rules match).
    pub text: String,
    /// 1-indexed line of the token's first character.
    pub line: usize,
    /// 1-indexed column (in characters) of the token's first character.
    pub col: usize,
    /// Byte offset of the token's first character in the source.
    pub start: usize,
}

impl Token {
    /// True for tokens the rule passes look at (everything but comments).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True for a `//` comment that is *not* a doc comment (`///`, `//!`).
    /// Waivers must live in plain comments so that documentation quoting
    /// the waiver syntax is never parsed as a waiver.
    pub fn is_plain_line_comment(&self) -> bool {
        self.kind == TokKind::LineComment
            && !self.text.starts_with("///")
            && !self.text.starts_with("//!")
    }
}

/// Lexes `src` into tokens (comments included, whitespace dropped).
///
/// Unterminated strings or block comments consume the rest of the input as
/// one token — for a lint over code that must already compile, recovering
/// more cleverly buys nothing.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let c = self.bytes[self.pos];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.line_comment();
                    self.emit(TokKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.emit(TokKind::BlockComment, start, line, col);
                }
                b'"' => {
                    self.string();
                    self.emit(TokKind::Literal, start, line, col);
                }
                b'\'' => {
                    if self.lifetime_ahead() {
                        self.bump(); // '
                        self.ident_tail();
                        self.emit(TokKind::Lifetime, start, line, col);
                    } else {
                        self.char_literal();
                        self.emit(TokKind::Literal, start, line, col);
                    }
                }
                b'r' | b'b' if self.raw_or_byte_string() => {
                    // `raw_or_byte_string` consumed the literal.
                    self.emit(TokKind::Literal, start, line, col);
                }
                _ if c == b'_' || c.is_ascii_alphabetic() => {
                    self.bump();
                    // Raw identifier: `r#ident` is one token (the string
                    // forms were ruled out by `raw_or_byte_string` above).
                    if c == b'r'
                        && self.peek(0) == Some(b'#')
                        && self
                            .peek(1)
                            .is_some_and(|b| b == b'_' || b.is_ascii_alphabetic())
                    {
                        self.bump();
                    }
                    self.ident_tail();
                    self.emit(TokKind::Ident, start, line, col);
                }
                _ if c.is_ascii_digit() => {
                    self.number();
                    self.emit(TokKind::Number, start, line, col);
                }
                _ => {
                    let ch = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
                    self.bump_char(ch);
                    self.emit(TokKind::Punct(ch), start, line, col);
                }
            }
        }
        self.out
    }

    fn emit(&mut self, kind: TokKind, start: usize, line: usize, col: usize) {
        self.out.push(Token {
            kind,
            text: self.src[start..self.pos].to_string(),
            line,
            col,
            start,
        });
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte (ASCII fast path — multi-byte chars go through
    /// [`Lexer::bump_char`]).
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_char(&mut self, ch: char) {
        self.pos += ch.len_utf8();
        self.col += 1;
    }

    /// Advances over every char of the current line's remainder, counting
    /// columns per character (not per byte) so diagnostics stay accurate in
    /// the comment-heavy, occasionally-non-ASCII sources of this workspace.
    fn line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            let ch = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
            self.bump_char(ch);
        }
    }

    fn block_comment(&mut self) {
        let mut depth = 0usize;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else if self.bytes[self.pos].is_ascii() {
                self.bump();
            } else {
                let ch = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
                self.bump_char(ch);
            }
        }
    }

    /// Consumes a `"…"` string starting at the opening quote, honouring
    /// `\\` and `\"` escapes.
    fn string(&mut self) {
        self.bump(); // opening "
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        if self.bytes[self.pos].is_ascii() {
                            self.bump();
                        } else {
                            let ch = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
                            self.bump_char(ch);
                        }
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                b if b.is_ascii() => self.bump(),
                _ => {
                    let ch = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
                    self.bump_char(ch);
                }
            }
        }
    }

    /// True when the `'` at the cursor starts a lifetime rather than a char
    /// literal: the next char is an identifier start and the one after is
    /// not a closing `'` (so `'a'` is a char but `'a,`/`'a>` are
    /// lifetimes; `'\n'` has a backslash next and is a char).
    fn lifetime_ahead(&self) -> bool {
        match self.peek(1) {
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => self.peek(2) != Some(b'\''),
            _ => false,
        }
    }

    /// Consumes a char literal `'x'`, `'\n'`, `'\u{1F600}'`.
    fn char_literal(&mut self) {
        self.bump(); // opening '
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        if self.bytes[self.pos].is_ascii() {
                            self.bump();
                        } else {
                            let ch = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
                            self.bump_char(ch);
                        }
                    }
                }
                b'\'' => {
                    self.bump();
                    return;
                }
                b if b.is_ascii() => self.bump(),
                _ => {
                    let ch = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
                    self.bump_char(ch);
                }
            }
        }
    }

    /// If the cursor sits on a raw/byte string prefix (`r"`, `r#"`, `b"`,
    /// `br#"` …) or a raw identifier (`r#ident`), consumes it and returns
    /// `true` for the string forms. Raw identifiers fall through to the
    /// identifier path (returns `false` without consuming).
    fn raw_or_byte_string(&mut self) -> bool {
        let rest = &self.bytes[self.pos..];
        // Determine the prefix shape: r, b, br, rb is not legal Rust.
        let (prefix_len, raw) = match rest {
            [b'r', b'#', c, ..] if *c == b'"' || *c == b'#' => (1, true),
            [b'r', b'"', ..] => (1, true),
            [b'b', b'r', b'"', ..]
            | [b'b', b'r', b'#', b'"', ..]
            | [b'b', b'r', b'#', b'#', ..] => (2, true),
            [b'b', b'"', ..] => (1, false),
            [b'b', b'\'', ..] => {
                // Byte char literal b'x'.
                self.bump(); // b
                self.char_literal();
                return true;
            }
            _ => return false,
        };
        // `r#ident` (raw identifier): r, one '#', then an ident char.
        if raw
            && rest.get(prefix_len) == Some(&b'#')
            && rest
                .get(prefix_len + 1)
                .is_some_and(|c| *c == b'_' || c.is_ascii_alphabetic())
        {
            return false;
        }
        for _ in 0..prefix_len {
            self.bump();
        }
        if raw {
            let mut hashes = 0usize;
            while self.peek(0) == Some(b'#') {
                hashes += 1;
                self.bump();
            }
            if self.peek(0) != Some(b'"') {
                return true; // malformed; treat consumed prefix as literal
            }
            self.bump(); // opening "
                         // Scan for `"` followed by `hashes` hashes; no escapes.
            while self.pos < self.bytes.len() {
                if self.bytes[self.pos] == b'"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if self.peek(1 + h) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        self.bump();
                        for _ in 0..hashes {
                            self.bump();
                        }
                        return true;
                    }
                    self.bump();
                } else if self.bytes[self.pos].is_ascii() {
                    self.bump();
                } else {
                    let ch = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
                    self.bump_char(ch);
                }
            }
            true
        } else {
            self.string();
            true
        }
    }

    fn ident_tail(&mut self) {
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.bump();
        }
    }

    /// Consumes a numeric literal loosely: digits, base prefixes, suffixes
    /// and a fractional part — but never a `..` range operator.
    fn number(&mut self) {
        self.bump();
        loop {
            match self.peek(0) {
                Some(b'.') => {
                    // `1..n` is a range, `1.0` is a float, `x.0` never
                    // reaches here (tuple indexing lexes the int alone).
                    if self.peek(1) == Some(b'.') {
                        return;
                    }
                    if self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                        self.bump();
                    } else {
                        return;
                    }
                }
                Some(c) if c == b'_' || c.is_ascii_alphanumeric() => self.bump(),
                _ => return,
            }
        }
    }
}

/// Spans of `#[cfg(test)] mod … { … }` regions as inclusive line ranges.
///
/// Unit-test modules may unwrap, use `HashSet` for assertions and measure
/// time freely: every rule skips diagnostics inside these regions. The scan
/// is token-based, so braces inside strings or comments cannot derail the
/// matching (that is the lexer's guarantee).
pub fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = code[i].kind == TokKind::Punct('#')
            && matches!(code.get(i + 1), Some(t) if t.kind == TokKind::Punct('['))
            && matches!(code.get(i + 2), Some(t) if t.text == "cfg")
            && matches!(code.get(i + 3), Some(t) if t.kind == TokKind::Punct('('))
            && matches!(code.get(i + 4), Some(t) if t.text == "test")
            && matches!(code.get(i + 5), Some(t) if t.kind == TokKind::Punct(')'))
            && matches!(code.get(i + 6), Some(t) if t.kind == TokKind::Punct(']'));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then require `mod name {`.
        let mut j = i + 7;
        while matches!(code.get(j), Some(t) if t.kind == TokKind::Punct('#')) {
            // Balanced `[...]` skip.
            let mut depth = 0usize;
            j += 1;
            while let Some(t) = code.get(j) {
                match t.kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !matches!(code.get(j), Some(t) if t.text == "mod") {
            i += 1;
            continue;
        }
        // Find the opening brace, then its match.
        while let Some(t) = code.get(j) {
            if t.kind == TokKind::Punct('{') {
                break;
            }
            j += 1;
        }
        let open = j;
        let mut depth = 0usize;
        let mut close = None;
        while let Some(t) = code.get(j) {
            match t.kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if let (Some(open_t), Some(c)) = (code.get(open), close) {
            regions.push((code[i].line.min(open_t.line), code[c].line));
            i = c + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// True when `line` falls inside any of `regions` (inclusive).
pub fn in_regions(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            let a = "unwrap() inside a string";
            // unwrap in a line comment
            /* unwrap in /* a nested */ block comment */
            let b = r#"raw "quoted" unwrap"#;
            let c = 'u';
            let d: &'unwrap str = "";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "leaked: {ids:?}");
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Literal).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn positions_are_one_indexed() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = lex("let r#type = 1;");
        assert!(toks.iter().any(|t| t.text == "r#type"));
    }

    #[test]
    fn byte_strings_hide_contents() {
        let ids = idents(r##"let b = b"unwrap"; let r = br#"HashMap"#; ok();"##);
        assert_eq!(ids, vec!["let", "b", "let", "r", "ok"]);
    }

    #[test]
    fn test_region_detection() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}";
        let toks = lex(src);
        let regions = test_regions(&toks);
        assert_eq!(regions.len(), 1);
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 1));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn range_does_not_eat_dots() {
        let toks = lex("for i in 0..10 {}");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Number && t.text == "0"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Number && t.text == "10"));
    }
}
