//! Inline waivers: `// pamr-lint: allow(RULE, reason = "…")`.
//!
//! A waiver is a *plain* line comment (doc comments quoting the syntax are
//! ignored) whose text, after `//` and whitespace, starts with
//! `pamr-lint:`. It names one or more rule ids and must carry a
//! `reason = "…"` — a waiver without a reason is itself a diagnostic
//! ([`W000`](crate::rules)), because an unexplained suppression is exactly
//! the silent invariant erosion this tool exists to stop. Unknown rule ids
//! are diagnosed too ([`W001`](crate::rules)): a typoed waiver would
//! otherwise suppress nothing while looking like it did.
//!
//! Scope: a waiver covers diagnostics on **its own line** (trailing form)
//! and on **the next line** (standalone form — put the comment directly
//! above the flagged line, or above the flagged continuation line inside a
//! method chain; rustfmt preserves both placements).

use crate::lexer::Token;
use crate::report::{Diagnostic, Severity};

/// One parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rules the waiver suppresses.
    pub rules: Vec<String>,
    /// The mandatory justification (`None` is a W000 diagnostic).
    pub reason: Option<String>,
    /// 1-indexed line of the comment.
    pub line: usize,
    /// 1-indexed column of the comment.
    pub col: usize,
}

impl Waiver {
    /// True when this waiver suppresses `rule` at `line`.
    pub fn covers(&self, rule: &str, line: usize) -> bool {
        (line == self.line || line == self.line + 1) && self.rules.iter().any(|r| r == rule)
    }
}

/// Extracts every waiver from a file's comment tokens.
pub fn scan(tokens: &[Token]) -> Vec<Waiver> {
    tokens
        .iter()
        .filter(|t| t.is_plain_line_comment())
        .filter_map(parse)
        .collect()
}

/// Parses one comment token; `None` when it is not a waiver at all.
fn parse(tok: &Token) -> Option<Waiver> {
    let body = tok.text.trim_start_matches('/').trim_start();
    let rest = body.strip_prefix("pamr-lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let inner = rest.strip_prefix('(')?;
    let inner = match inner.rfind(')') {
        Some(p) => &inner[..p],
        None => inner, // unterminated: parse what is there, W001 will flag junk
    };
    let mut rules = Vec::new();
    let mut reason = None;
    for part in split_args(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some(r) = part.strip_prefix("reason") {
            let r = r.trim_start();
            if let Some(r) = r.strip_prefix('=') {
                let r = r.trim();
                let r = r.strip_prefix('"').unwrap_or(r);
                let r = r.strip_suffix('"').unwrap_or(r);
                reason = Some(r.to_string());
            }
        } else {
            rules.push(part.to_string());
        }
    }
    Some(Waiver {
        rules,
        reason,
        line: tok.line,
        col: tok.col,
    })
}

/// Splits waiver arguments on commas outside the `reason = "…"` string.
fn split_args(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Diagnostics about the waivers themselves: W000 for a missing reason,
/// W001 for rule ids not in the registry.
pub fn check(waivers: &[Waiver], file: &str, known: &[&'static str]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for w in waivers {
        if w.reason.as_deref().is_none_or(|r| r.trim().is_empty()) {
            out.push(Diagnostic {
                rule: "W000",
                severity: Severity::Error,
                file: file.to_string(),
                line: w.line,
                col: w.col,
                message: format!(
                    "waiver for {} lacks a reason; write `// pamr-lint: allow({}, reason = \"…\")`",
                    w.rules.join(", "),
                    w.rules.join(", ")
                ),
            });
        }
        for r in &w.rules {
            if !known.contains(&r.as_str()) {
                out.push(Diagnostic {
                    rule: "W001",
                    severity: Severity::Error,
                    file: file.to_string(),
                    line: w.line,
                    col: w.col,
                    message: format!("waiver names unknown rule {r:?} (see `pamr-lint rules`)"),
                });
            }
        }
    }
    out
}

/// Drops every diagnostic covered by a waiver (W-diagnostics are never
/// waivable — a waiver cannot excuse its own missing reason).
pub fn apply(diags: Vec<Diagnostic>, waivers: &[Waiver]) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| d.rule.starts_with('W') || !waivers.iter().any(|w| w.covers(d.rule, d.line)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn waiver(src: &str) -> Vec<Waiver> {
        scan(&lex(src))
    }

    #[test]
    fn trailing_and_standalone_forms_parse() {
        let ws = waiver(
            "x.unwrap(); // pamr-lint: allow(P001, reason = \"bounded by construction\")\n\
             // pamr-lint: allow(D001, D002, reason = \"lookup only\")\n\
             next_line();",
        );
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].rules, vec!["P001"]);
        assert_eq!(ws[0].reason.as_deref(), Some("bounded by construction"));
        assert!(ws[0].covers("P001", 1));
        assert!(!ws[0].covers("P001", 3));
        assert_eq!(ws[1].rules, vec!["D001", "D002"]);
        assert!(ws[1].covers("D002", 3));
    }

    #[test]
    fn reason_with_commas_stays_whole() {
        let ws = waiver("// pamr-lint: allow(P001, reason = \"a, b, and c\")");
        assert_eq!(ws[0].rules, vec!["P001"]);
        assert_eq!(ws[0].reason.as_deref(), Some("a, b, and c"));
    }

    #[test]
    fn doc_comments_are_not_waivers() {
        assert!(waiver("/// pamr-lint: allow(P001)").is_empty());
        assert!(waiver("//! `// pamr-lint: allow(P001)`").is_empty());
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_diagnosed() {
        let ws = waiver("// pamr-lint: allow(P001)\n// pamr-lint: allow(Z123, reason = \"x\")");
        let ds = check(&ws, "f.rs", &["P001"]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].rule, "W000");
        assert_eq!(ds[1].rule, "W001");
    }

    #[test]
    fn apply_suppresses_only_covered_lines() {
        use crate::report::Severity;
        let ws = waiver("ok();\n// pamr-lint: allow(P001, reason = \"r\")\nflagged();");
        let mk = |line| Diagnostic {
            rule: "P001",
            severity: Severity::Error,
            file: "f.rs".to_string(),
            line,
            col: 1,
            message: String::new(),
        };
        let kept = apply(vec![mk(1), mk(3)], &ws);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 1);
    }
}
