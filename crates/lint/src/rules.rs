//! The rule registry and the six token-pattern passes.
//!
//! Every rule is grounded in a bug class this workspace has actually hit
//! (see ARCHITECTURE.md § "Determinism invariants" for the full rationale):
//!
//! * **D001** — unordered `HashMap`/`HashSet` in report-producing crates.
//!   PR 3 class: iteration order leaked into sort tie-breaks and error
//!   messages. Use `BTreeMap`/sorted vecs.
//! * **D002** — wall-clock reads outside the bench crate. Stdout reports
//!   are byte-compared in CI; `Instant::now` on a report path breaks them.
//! * **D003** — float accumulation (`sum`/`fold`/`reduce`) in a parallel
//!   iterator chain. Only the vendored rayon's fixed-chunk in-order
//!   combine keeps these byte-identical across thread counts; every such
//!   site must carry a waiver citing that guarantee.
//! * **P001** — `unwrap`/`expect`/`panic!`/literal indexing in the routing
//!   hot paths. PR 3 converted release-mode panics to structured `PrError`s;
//!   this rule keeps new ones out (or documented via waiver).
//! * **U001** — `unsafe` anywhere in first-party code (all first-party
//!   crates `#![forbid(unsafe_code)]`; the rule also catches
//!   `#[allow(unsafe_code)]` attempts to regress that).
//! * **V001** — vendor hygiene: vendored stand-ins must not reach
//!   `std::process`, `std::net` or wall-clock APIs except where waived
//!   (criterion's own timing loop).
//! * **G001** — calls of the deprecated `set_implementation` engine
//!   globals. PR 10 replaced the four mutable process-global switches with
//!   an explicit `EngineConfig` threaded through scratch/session/campaign
//!   state; only the deprecated shims themselves (definition sites and
//!   their own tests) may still touch them.
//!
//! Scoping is path-based (workspace-relative, forward slashes). Unit-test
//! modules (`#[cfg(test)] mod`) are skipped by every rule.

use crate::config::Config;
use crate::lexer::{in_regions, test_regions, Token};
use crate::report::{Diagnostic, Severity};
use crate::waivers;

/// Registry metadata for one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id (`D001` …).
    pub id: &'static str,
    /// One-line summary for `pamr-lint rules`.
    pub summary: &'static str,
}

/// Every rule the pass knows, waiver-hygiene pseudo-rules included.
pub const REGISTRY: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        summary: "unordered HashMap/HashSet in report-producing code (use BTreeMap/sorted vecs)",
    },
    RuleInfo {
        id: "D002",
        summary: "Instant::now/SystemTime::now outside the bench allowlist (reports are time-free)",
    },
    RuleInfo {
        id: "D003",
        summary: "float sum/fold/reduce in a parallel chain (waive citing fixed-chunk combine)",
    },
    RuleInfo {
        id: "P001",
        summary: "unwrap/expect/panic!/literal indexing in routing hot paths (structured errors)",
    },
    RuleInfo {
        id: "U001",
        summary: "unsafe code outside vendor/",
    },
    RuleInfo {
        id: "V001",
        summary: "vendored code reaching std::process/std::net/wall-clock APIs",
    },
    RuleInfo {
        id: "G001",
        summary: "call of a deprecated set_implementation engine global (thread an EngineConfig)",
    },
    RuleInfo {
        id: "W000",
        summary: "waiver without a reason",
    },
    RuleInfo {
        id: "W001",
        summary: "waiver naming an unknown rule",
    },
];

/// The registry's rule ids.
pub fn rule_ids() -> Vec<&'static str> {
    REGISTRY.iter().map(|r| r.id).collect()
}

/// First-party source: the facade plus every `crates/*/src` tree.
fn first_party(path: &str) -> bool {
    path.starts_with("src/") || path.starts_with("crates/")
}

/// D001 scope: the crates whose output feeds campaign reports or load maps.
fn d001_scope(path: &str) -> bool {
    path.starts_with("crates/sim/src/")
        || path.starts_with("crates/routing/src/")
        || path.starts_with("crates/mesh/src/")
}

/// D002 scope: all first-party code except the bench crate (whose entire
/// point is timing) — bench output is gated by ratio, never byte-compared.
fn d002_scope(path: &str) -> bool {
    first_party(path) && !path.starts_with("crates/bench/")
}

/// P001 scope: the routing hot paths (PR 3/4/5/6/7 engine files).
fn p001_scope(path: &str) -> bool {
    const FILES: &[&str] = &[
        "crates/routing/src/pr.rs",
        "crates/routing/src/xyi.rs",
        "crates/routing/src/ig.rs",
        "crates/routing/src/loadq.rs",
        "crates/routing/src/session.rs",
        "crates/routing/src/precompute.rs",
        "crates/routing/src/comm.rs",
        // PR 9: the flat CSR crossing index sits under every optimized
        // engine's candidate scan, so it is held to the same panic-safety
        // bar as the engines themselves.
        "crates/routing/src/csr.rs",
    ];
    FILES.contains(&path)
        || path.starts_with("crates/routing/src/pr/")
        || path.starts_with("crates/routing/src/xyi/")
        || path.starts_with("crates/routing/src/ig/")
}

/// V001 scope: the vendored stand-ins.
fn v001_scope(path: &str) -> bool {
    path.starts_with("vendor/")
}

/// Runs every applicable rule over one lexed file, applies waivers, and
/// appends the surviving diagnostics (plus waiver-hygiene diagnostics).
pub fn check_file(path: &str, tokens: &[Token], config: &Config, out: &mut Vec<Diagnostic>) {
    let regions = test_regions(tokens);
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    let mut diags: Vec<Diagnostic> = Vec::new();

    let push = |rule: &'static str, t: &Token, message: String, diags: &mut Vec<Diagnostic>| {
        let severity = config.severity(rule);
        if severity == Severity::Off || in_regions(&regions, t.line) {
            return;
        }
        diags.push(Diagnostic {
            rule,
            severity,
            file: path.to_string(),
            line: t.line,
            col: t.col,
            message,
        });
    };

    if d001_scope(path) {
        for t in &code {
            if t.text == "HashMap" || t.text == "HashSet" {
                push(
                    "D001",
                    t,
                    format!(
                        "{} iteration order is unspecified and can leak into reports; \
                         use BTreeMap/BTreeSet or a sorted vec (or waive a lookup-only use)",
                        t.text
                    ),
                    &mut diags,
                );
            }
        }
    }

    if d002_scope(path) || v001_scope(path) {
        let rule: &'static str = if v001_scope(path) { "V001" } else { "D002" };
        for i in 0..code.len() {
            let t = code[i];
            if (t.text == "Instant" || t.text == "SystemTime")
                && matches!(code.get(i + 1), Some(n) if n.kind == crate::lexer::TokKind::Punct(':'))
                && matches!(code.get(i + 2), Some(n) if n.kind == crate::lexer::TokKind::Punct(':'))
                && matches!(code.get(i + 3), Some(n) if n.text == "now")
            {
                push(
                    rule,
                    t,
                    format!(
                        "{}::now() reads the wall clock; deterministic output paths must be \
                         time-free (timings go to stderr or the bench crate)",
                        t.text
                    ),
                    &mut diags,
                );
            }
        }
    }

    if first_party(path) {
        // D003: float accumulation inside a parallel chain. A chain starts
        // at `.par_iter()`-family calls and ends when the bracket depth
        // drops below the depth at which it started, or at a `;` at that
        // depth — tracked over code tokens only, so strings/comments never
        // confuse the bracket count.
        const PAR: &[&str] = &[
            "par_iter",
            "into_par_iter",
            "par_iter_mut",
            "par_bridge",
            "par_chunks",
        ];
        const ACC: &[&str] = &["sum", "fold", "reduce", "reduce_with"];
        let mut depth: i64 = 0;
        let mut chain_depth: Option<i64> = None;
        for i in 0..code.len() {
            let t = code[i];
            match t.kind {
                crate::lexer::TokKind::Punct('(' | '[' | '{') => depth += 1,
                crate::lexer::TokKind::Punct(')' | ']' | '}') => {
                    depth -= 1;
                    if chain_depth.is_some_and(|d| depth < d) {
                        chain_depth = None;
                    }
                }
                crate::lexer::TokKind::Punct(';') if chain_depth.is_some_and(|d| depth <= d) => {
                    chain_depth = None;
                }
                crate::lexer::TokKind::Ident => {
                    let after_dot = i > 0 && code[i - 1].kind == crate::lexer::TokKind::Punct('.');
                    if after_dot && PAR.contains(&t.text.as_str()) {
                        chain_depth = Some(depth);
                    } else if after_dot && chain_depth.is_some() && ACC.contains(&t.text.as_str()) {
                        push(
                            "D003",
                            t,
                            format!(
                                ".{}() accumulates floats across a parallel chain; only the \
                                 vendored rayon's fixed-chunk in-order combine keeps this \
                                 byte-identical across thread counts — waive citing that \
                                 guarantee, or restructure",
                                t.text
                            ),
                            &mut diags,
                        );
                    }
                }
                _ => {}
            }
        }
    }

    if p001_scope(path) {
        for i in 0..code.len() {
            let t = code[i];
            let after_dot = i > 0 && code[i - 1].kind == crate::lexer::TokKind::Punct('.');
            let before_bang =
                matches!(code.get(i + 1), Some(n) if n.kind == crate::lexer::TokKind::Punct('!'));
            if after_dot && matches!(t.text.as_str(), "unwrap" | "expect" | "expect_err") {
                push(
                    "P001",
                    t,
                    format!(
                        ".{}() panics on the failure path; return a structured error \
                         (PrError precedent) or waive with the invariant that rules the \
                         failure out",
                        t.text
                    ),
                    &mut diags,
                );
            } else if before_bang
                && matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
                && !after_dot
            {
                push(
                    "P001",
                    t,
                    format!(
                        "{}! in a routing hot path; prefer a structured error, or waive \
                         with the documented escalation policy",
                        t.text
                    ),
                    &mut diags,
                );
            } else if t.kind == crate::lexer::TokKind::Punct('[')
                && i > 0
                && matches!(
                    code[i - 1].kind,
                    crate::lexer::TokKind::Ident
                        | crate::lexer::TokKind::Punct(')')
                        | crate::lexer::TokKind::Punct(']')
                )
                && matches!(code.get(i + 1), Some(n) if n.kind == crate::lexer::TokKind::Number)
                && matches!(code.get(i + 2), Some(n) if n.kind == crate::lexer::TokKind::Punct(']'))
            {
                push(
                    "P001",
                    t,
                    "indexing with a literal panics when the container is shorter; use \
                     .get(..) or waive with the length invariant"
                        .to_string(),
                    &mut diags,
                );
            }
        }
    }

    if first_party(path) {
        for i in 0..code.len() {
            let t = code[i];
            if t.text == "unsafe" {
                push(
                    "U001",
                    t,
                    "unsafe code in a first-party crate (all are #![forbid(unsafe_code)])"
                        .to_string(),
                    &mut diags,
                );
            } else if t.text == "unsafe_code"
                && i >= 2
                && code[i - 1].kind == crate::lexer::TokKind::Punct('(')
                && code[i - 2].text == "allow"
            {
                push(
                    "U001",
                    t,
                    "#[allow(unsafe_code)] would regress the workspace-wide forbid".to_string(),
                    &mut diags,
                );
            }
        }
    }

    if first_party(path) {
        // G001: a *call* of one of the deprecated engine globals — the
        // ident followed by `(`. The definition sites (preceded by `fn`)
        // stay clean, and the shims' own unit tests sit in `#[cfg(test)]`
        // regions, which every rule skips.
        for i in 0..code.len() {
            let t = code[i];
            if t.text == "set_implementation"
                && matches!(code.get(i + 1), Some(n) if n.kind == crate::lexer::TokKind::Punct('('))
                && !(i > 0 && code[i - 1].text == "fn")
            {
                push(
                    "G001",
                    t,
                    "set_implementation mutates a deprecated process-global engine switch; \
                     thread an explicit EngineConfig (RouteScratch::with_engine / \
                     SessionConfig.engine / Campaign.engine) instead"
                        .to_string(),
                    &mut diags,
                );
            }
        }
    }

    if v001_scope(path) {
        for i in 0..code.len() {
            let t = code[i];
            if t.text == "std"
                && matches!(code.get(i + 1), Some(n) if n.kind == crate::lexer::TokKind::Punct(':'))
                && matches!(code.get(i + 2), Some(n) if n.kind == crate::lexer::TokKind::Punct(':'))
                && matches!(code.get(i + 3), Some(n) if n.text == "process" || n.text == "net")
            {
                let what = &code[i + 3].text;
                push(
                    "V001",
                    t,
                    format!(
                        "vendored stand-in reaches std::{what}; vendor code must stay \
                         hermetic (waive only with an explicit reason)"
                    ),
                    &mut diags,
                );
            }
        }
    }

    // Waivers: suppress covered diagnostics, then report waiver hygiene.
    let ws = waivers::scan(tokens);
    let mut kept = waivers::apply(diags, &ws);
    for d in waivers::check(&ws, path, &rule_ids()) {
        if config.severity(d.rule) != Severity::Off {
            let severity = config.severity(d.rule);
            kept.push(Diagnostic { severity, ..d });
        }
    }
    out.append(&mut kept);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_file(path, &lex(src), &Config::default(), &mut out);
        out
    }

    #[test]
    fn d001_fires_in_scope_only() {
        let src = "use std::collections::HashMap;";
        assert_eq!(run("crates/sim/src/x.rs", src).len(), 1);
        assert_eq!(run("crates/theory/src/x.rs", src).len(), 0);
    }

    #[test]
    fn d001_skips_test_modules_and_strings() {
        let src = "#[cfg(test)]\nmod tests {\n use std::collections::HashSet;\n}\n";
        assert!(run("crates/sim/src/x.rs", src).is_empty());
        let src = "const S: &str = \"HashMap\";";
        assert!(run("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn d002_allows_bench_flags_sim() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(run("crates/sim/src/x.rs", src).len(), 1);
        assert!(run("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn d003_flags_par_chain_accumulation_only() {
        let par = "fn f(v: &[f64]) -> f64 { v.par_iter().map(|x| x * 2.0).sum::<f64>() }";
        let seq = "fn f(v: &[f64]) -> f64 { v.iter().map(|x| x * 2.0).sum::<f64>() }";
        assert_eq!(run("crates/sim/src/x.rs", par).len(), 1);
        assert!(run("crates/sim/src/x.rs", seq).is_empty());
    }

    #[test]
    fn d003_chain_ends_at_statement_boundary() {
        let src = "fn f(v: &[f64]) -> f64 { let w: Vec<f64> = v.par_iter().collect(); \
                   w.iter().sum::<f64>() }";
        assert!(run("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn p001_patterns() {
        let path = "crates/routing/src/pr.rs";
        assert_eq!(run(path, "fn f(x: Option<u8>) { x.unwrap(); }").len(), 1);
        assert_eq!(
            run(path, "fn f(x: Option<u8>) { x.expect(\"m\"); }").len(),
            1
        );
        assert_eq!(run(path, "fn f() { panic!(\"boom\"); }").len(), 1);
        assert_eq!(run(path, "fn f(v: &[u8]) -> u8 { v[0] }").len(), 1);
        // Not flagged: unwrap_or_else, variable indexing, out-of-scope file.
        assert!(run(path, "fn f(x: Option<u8>) { x.unwrap_or_else(|| 0); }").is_empty());
        assert!(run(path, "fn f(v: &[u8], i: usize) -> u8 { v[i] }").is_empty());
        assert!(run(
            "crates/routing/src/fw.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }"
        )
        .is_empty());
    }

    #[test]
    fn p001_waiver_suppresses_and_requires_reason() {
        let path = "crates/routing/src/pr.rs";
        let good = "fn f(x: Option<u8>) {\n\
                    // pamr-lint: allow(P001, reason = \"index invariant\")\n\
                    x.unwrap();\n}";
        assert!(run(path, good).is_empty());
        let bare = "fn f(x: Option<u8>) {\n// pamr-lint: allow(P001)\nx.unwrap();\n}";
        let ds = run(path, bare);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "W000");
    }

    #[test]
    fn g001_flags_calls_but_not_definitions() {
        // A call — qualified or bare — is a violation anywhere first-party.
        let call = "fn f() { pr::set_implementation(PrImpl::Reference); }";
        let ds = run("crates/sim/src/x.rs", call);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "G001");
        assert_eq!(
            run("src/bin/x.rs", "fn f() { set_implementation(i); }").len(),
            1
        );
        // The shim's definition site is not a call.
        assert!(run(
            "crates/routing/src/pr.rs",
            "pub fn set_implementation(imp: PrImpl) { DEFAULT.store(imp as u8); }"
        )
        .is_empty());
        // Test modules keep exercising the shims without diagnostics.
        let test_use = "#[cfg(test)]\nmod tests {\n fn t() { set_implementation(i); }\n}\n";
        assert!(run("crates/sim/src/x.rs", test_use).is_empty());
        // Out of first-party scope: nothing fires.
        assert!(run("vendor/fake/src/lib.rs", call).is_empty());
    }

    #[test]
    fn u001_and_v001() {
        let ds = run(
            "crates/mesh/src/x.rs",
            "fn f(p: *const u8) { unsafe { p.read(); } }",
        );
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "U001");
        let ds = run("crates/mesh/src/x.rs", "#![allow(unsafe_code)]");
        assert_eq!(ds.len(), 1);
        let ds = run(
            "vendor/fake/src/lib.rs",
            "fn f() { std::process::exit(1); }",
        );
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "V001");
        let ds = run(
            "vendor/fake/src/lib.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "V001");
    }
}
