//! `pamr-lint` — the workspace-native static-analysis pass.
//!
//! ```text
//! pamr-lint check [--json] [--deny] [--root PATH] [--set RULE=SEV]...
//! pamr-lint rules
//! pamr-lint waivers [--root PATH]
//! ```
//!
//! `check` lexes every first-party and vendored source file and runs the
//! determinism/panic-safety rules (see `pamr-lint rules`). Without `--deny`
//! it always exits 0 (report-only); with `--deny` it exits 1 when any
//! error-severity diagnostic survives waivers — the mode CI runs. `--root`
//! points at a different workspace root (the fixture corpus uses this).
//!
//! `waivers` prints the full waiver inventory (`file:line RULES — reason`)
//! and exits 1 if any waiver lacks a reason, so CI can fail on silent
//! suppressions without re-running the whole check.

#![forbid(unsafe_code)]

use pamr_lint::config::Config;
use pamr_lint::driver;
use pamr_lint::report::{self, Severity};
use pamr_lint::rules;
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  pamr-lint check [--json] [--deny] [--root PATH] [--set RULE=SEV]...\n  \
         pamr-lint rules\n  \
         pamr-lint waivers [--root PATH]"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("rules") => cmd_rules(),
        Some("waivers") => cmd_waivers(&args[1..]),
        _ => usage(),
    }
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn root_of(args: &[String]) -> PathBuf {
    // Default to the workspace root: the binary runs via `cargo run -p
    // pamr-lint`, whose cwd is the workspace root, but fall back to the
    // manifest's grandparent so a target/release invocation works too.
    match opt(args, "--root") {
        Some(p) => PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|e| {
                eprintln!("cannot determine cwd: {e}");
                exit(1);
            });
            if cwd.join("Cargo.toml").is_file() {
                cwd
            } else {
                PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                    .ancestors()
                    .nth(2)
                    .map(PathBuf::from)
                    .unwrap_or(cwd)
            }
        }
    }
}

fn cmd_check(args: &[String]) {
    let mut config = Config::default();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--set" {
            let Some(spec) = args.get(i + 1) else { usage() };
            if let Err(e) = config.set(spec) {
                eprintln!("pamr-lint: {e}");
                exit(2);
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    let root = root_of(args);
    let result = driver::check_workspace(&root, &config).unwrap_or_else(|e| {
        eprintln!("pamr-lint: {e}");
        exit(1);
    });
    if flag(args, "--json") {
        print!("{}", report::render_json(&result.diagnostics));
    } else {
        print!("{}", report::render_human(&result.diagnostics));
        eprintln!(
            "pamr-lint: {} file(s) scanned, {} diagnostic(s), {} waiver(s)",
            result.files,
            result.diagnostics.len(),
            result.waivers.len()
        );
    }
    let errors = result
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if flag(args, "--deny") && errors > 0 {
        eprintln!("pamr-lint: {errors} error(s) — failing (--deny)");
        exit(1);
    }
}

fn cmd_rules() {
    for r in rules::REGISTRY {
        println!("{}  {}", r.id, r.summary);
    }
}

fn cmd_waivers(args: &[String]) {
    let root = root_of(args);
    let result = driver::check_workspace(&root, &Config::default()).unwrap_or_else(|e| {
        eprintln!("pamr-lint: {e}");
        exit(1);
    });
    let mut missing = 0usize;
    for (file, w) in &result.waivers {
        match w.reason.as_deref().filter(|r| !r.trim().is_empty()) {
            Some(reason) => {
                println!("{}:{} {} — {}", file, w.line, w.rules.join(", "), reason)
            }
            None => {
                println!(
                    "{}:{} {} — MISSING REASON",
                    file,
                    w.line,
                    w.rules.join(", ")
                );
                missing += 1;
            }
        }
    }
    eprintln!(
        "pamr-lint: {} waiver(s), {} missing a reason",
        result.waivers.len(),
        missing
    );
    if missing > 0 {
        exit(1);
    }
}
