//! Per-rule severity configuration.
//!
//! Every rule defaults to [`Severity::Error`]: the tree is expected to be
//! clean (violations fixed or reason-waived), so anything the pass reports
//! is an action item. `--set RULE=off|warn|error` overrides per invocation
//! — e.g. `--set D003=warn` while migrating a new parallel combine site.

use crate::report::Severity;
use crate::rules;
use std::collections::BTreeMap;

/// The active severity per rule id.
#[derive(Debug, Clone)]
pub struct Config {
    severities: BTreeMap<&'static str, Severity>,
}

impl Default for Config {
    fn default() -> Self {
        let severities = rules::REGISTRY
            .iter()
            .map(|r| (r.id, Severity::Error))
            .collect();
        Config { severities }
    }
}

impl Config {
    /// The effective severity of `rule` ([`Severity::Off`] for unknown ids,
    /// which cannot be produced by the registry's own passes).
    pub fn severity(&self, rule: &str) -> Severity {
        self.severities.get(rule).copied().unwrap_or(Severity::Off)
    }

    /// Applies one `RULE=SEVERITY` override. Errors on unknown rule ids or
    /// severity names so typos fail loudly instead of silently linting less.
    pub fn set(&mut self, spec: &str) -> Result<(), String> {
        let (rule, sev) = spec
            .split_once('=')
            .ok_or_else(|| format!("expected RULE=SEVERITY, got {spec:?}"))?;
        let sev = Severity::parse(sev)
            .ok_or_else(|| format!("unknown severity {sev:?} (off | warn | error)"))?;
        let id = rules::REGISTRY
            .iter()
            .map(|r| r.id)
            .find(|id| *id == rule)
            .ok_or_else(|| format!("unknown rule {rule:?} (see `pamr-lint rules`)"))?;
        self.severities.insert(id, sev);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_error() {
        let c = Config::default();
        for r in rules::REGISTRY {
            assert_eq!(c.severity(r.id), Severity::Error, "{}", r.id);
        }
    }

    #[test]
    fn overrides_apply_and_typos_fail() {
        let mut c = Config::default();
        c.set("D001=warn").unwrap();
        assert_eq!(c.severity("D001"), Severity::Warn);
        assert!(c.set("D001=loud").is_err());
        assert!(c.set("Z999=off").is_err());
        assert!(c.set("D001").is_err());
    }
}
