//! Diagnostics and their human/JSON renderings.
//!
//! Output order is part of the contract: diagnostics sort by
//! `(file, line, col, rule)` so the report is byte-stable across directory
//! enumeration order and rule execution order — the same determinism bar
//! the tool enforces on the rest of the workspace.

use serde::Value;

/// How seriously a diagnostic is taken (per-rule, see
/// [`Config`](crate::config::Config)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The rule is disabled.
    Off,
    /// Reported, but never fails `--deny`.
    Warn,
    /// Reported and fails `--deny`.
    Error,
}

impl Severity {
    /// The lowercase name used in CLI overrides and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Off => "off",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses a CLI severity name.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "off" => Some(Severity::Off),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// One finding: a rule fired at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`D001`, `P001`, `W000` …).
    pub rule: &'static str,
    /// Effective severity under the active configuration.
    pub severity: Severity,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// 1-indexed column.
    pub col: usize,
    /// What happened and what to do instead.
    pub message: String,
}

/// Sorts diagnostics into the canonical reporting order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
}

/// The `file:line:col: RULE message` lines, one per diagnostic.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}:{}:{}: {} [{}] {}\n",
            d.file,
            d.line,
            d.col,
            d.rule,
            d.severity.name(),
            d.message
        ));
    }
    out
}

/// The machine-readable report: a JSON object with a schema version and the
/// sorted diagnostics array (pretty-printed; pinned byte-for-byte by the
/// golden fixtures).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let items: Vec<Value> = diags
        .iter()
        .map(|d| {
            Value::Object(vec![
                ("rule".to_string(), Value::Str(d.rule.to_string())),
                (
                    "severity".to_string(),
                    Value::Str(d.severity.name().to_string()),
                ),
                ("file".to_string(), Value::Str(d.file.clone())),
                ("line".to_string(), Value::UInt(d.line as u64)),
                ("col".to_string(), Value::UInt(d.col as u64)),
                ("message".to_string(), Value::Str(d.message.clone())),
            ])
        })
        .collect();
    let root = Value::Object(vec![
        ("schema".to_string(), Value::UInt(1)),
        ("diagnostics".to_string(), Value::Array(items)),
    ]);
    let mut s = serde_json::to_string_pretty(&root).expect("plain JSON value");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(file: &str, line: usize, col: usize, rule: &'static str) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            col,
            message: "m".to_string(),
        }
    }

    #[test]
    fn sort_is_total_and_stable_by_position() {
        let mut v = vec![
            d("b.rs", 1, 1, "D001"),
            d("a.rs", 9, 9, "P001"),
            d("a.rs", 9, 1, "U001"),
        ];
        sort(&mut v);
        assert_eq!(
            v.iter()
                .map(|x| (x.file.as_str(), x.line, x.col))
                .collect::<Vec<_>>(),
            vec![("a.rs", 9, 1), ("a.rs", 9, 9), ("b.rs", 1, 1)]
        );
    }

    #[test]
    fn human_rendering_shape() {
        let s = render_human(&[d("x.rs", 3, 7, "D002")]);
        assert_eq!(s, "x.rs:3:7: D002 [error] m\n");
    }

    #[test]
    fn json_round_trips() {
        let s = render_json(&[d("x.rs", 3, 7, "D002")]);
        let v: Value = serde_json::from_str(&s).unwrap();
        let diags = v.get("diagnostics").unwrap();
        match diags {
            Value::Array(items) => assert_eq!(items.len(), 1),
            other => panic!("expected array, got {other:?}"),
        }
    }
}
