//! `pamr-lint`: the workspace-native static-analysis pass.
//!
//! The workspace's core promise is that §6.4 campaign reports are
//! byte-identical across thread counts, shard splits, engines, and
//! precompute modes, and that the routing hot paths degrade into structured
//! errors instead of panics. Those invariants are enforced at runtime by
//! differential oracles and golden fixtures — but runtime checks only catch
//! violations the test inputs happen to exercise. `pamr-lint` closes the
//! gap at the source level: a hand-rolled token pass (no rustc plumbing, no
//! external parser — the tree builds offline) that flags the *constructs*
//! that erode the invariants before an input ever reaches them.
//!
//! Module map:
//! * [`lexer`] — a small Rust lexer: comments, strings, raw strings, char
//!   literals and lifetimes handled, so rules never fire inside text.
//! * [`rules`] — the registry and the six passes (D001–D003, P001, U001,
//!   V001) plus waiver-hygiene pseudo-rules (W000, W001).
//! * [`waivers`] — `// pamr-lint: allow(RULE, reason = "…")` parsing;
//!   a waiver without a reason is itself a diagnostic.
//! * [`config`] — per-rule severities (`--set RULE=off|warn|error`).
//! * [`report`] — canonical ordering, human and JSON renderings.
//! * [`driver`] — the workspace walker and whole-tree entry point.

#![forbid(unsafe_code)]

pub mod config;
pub mod driver;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod waivers;
