//! Property-based tests for the packet simulator.

use pamr_mesh::{Coord, Mesh};
use pamr_nocsim::{simulate, SimConfig};
use pamr_power::PowerModel;
use pamr_routing::{xy_routing, Comm, CommSet, Heuristic, PathRemover};
use proptest::prelude::*;

fn instance() -> impl Strategy<Value = CommSet> {
    prop::collection::vec(
        ((0usize..4, 0usize..4), (0usize..4, 0usize..4), 100u32..1200),
        1..=6,
    )
    .prop_map(|comms| {
        let mesh = Mesh::new(4, 4);
        CommSet::new(
            mesh,
            comms
                .into_iter()
                .map(|((a, b), (c, d), w)| Comm::new(Coord::new(a, b), Coord::new(c, d), w as f64))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_injected_packet_is_delivered(cs in instance()) {
        let model = PowerModel::kim_horowitz();
        let cfg = SimConfig { horizon_us: 40.0, packet_bits: 512.0 };
        let rep = simulate(&cs, &xy_routing(&cs), &model, &cfg);
        // Drained network: delivered counts match the CBR injection counts.
        for f in &rep.flows {
            if f.rate > 0.0 {
                let interval = cfg.packet_bits / f.rate;
                let expected = (cfg.horizon_us / interval).ceil() as usize;
                prop_assert!(f.delivered.abs_diff(expected) <= 1,
                    "delivered {} vs expected {}", f.delivered, expected);
            }
        }
        // Percentiles are ordered and bounded by the max.
        let p50 = rep.latency_percentile(0.5);
        let p99 = rep.latency_percentile(0.99);
        prop_assert!(p50 <= p99 + 1e-12);
        let max = rep.flows.iter().map(|f| f.max_latency_us).fold(0.0, f64::max);
        prop_assert!(p99 <= max + 1e-9);
    }

    #[test]
    fn latency_at_least_ideal_hop_time(cs in instance()) {
        let model = PowerModel::kim_horowitz();
        let cfg = SimConfig::default();
        let rep = simulate(&cs, &xy_routing(&cs), &model, &cfg);
        // Every packet's latency is at least its path length × fastest
        // per-hop service time.
        let fastest_hop = cfg.packet_bits / model.max_bandwidth();
        let r = xy_routing(&cs);
        for f in &rep.flows {
            if f.delivered > 0 {
                let hops = r.path(f.comm).len() as f64;
                prop_assert!(f.mean_latency_us + 1e-9 >= hops * fastest_hop);
            }
        }
    }

    #[test]
    fn energy_matches_active_link_count_bounds(cs in instance()) {
        let model = PowerModel::kim_horowitz();
        let cfg = SimConfig::default();
        let routing = PathRemover.route(&cs, &model);
        let rep = simulate(&cs, &routing, &model, &cfg);
        let active = routing.loads(&cs).active_links() as f64;
        if active > 0.0 {
            // Energy between all-links-at-min and all-links-at-max power.
            let min_p = model.power_at_level(1000.0);
            let max_p = model.power_at_level(3500.0);
            prop_assert!(rep.energy_nj + 1e-9 >= active * min_p * cfg.horizon_us * 0.999);
            prop_assert!(rep.energy_nj <= active * max_p * cfg.horizon_us * 1.001);
        } else {
            prop_assert_eq!(rep.energy_nj, 0.0);
        }
    }
}
