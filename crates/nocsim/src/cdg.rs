//! Channel-dependency-graph (CDG) deadlock analysis.
//!
//! The paper notes (§1) that it "assumes a deadlock avoidance technique is
//! used (such as resource ordering or escape channels)" because arbitrary
//! Manhattan routings are not deadlock-free under wormhole switching. This
//! module makes that assumption checkable:
//!
//! * [`channel_dependency_graph`] builds the CDG of a routing — a node per
//!   link, an edge whenever some path enters a link directly after another;
//! * [`has_cycle`] detects cyclic dependencies (Dally–Seitz: a routing is
//!   deadlock-free under wormhole switching iff its CDG is acyclic);
//! * [`escape_channels_needed`] reports whether a routing needs the escape
//!   mechanism the paper assumes, or is already safe as-is.
//!
//! XY routing is the classic acyclic case (no south/north→east/west turn is
//! ever followed by the forbidden ones); general Manhattan routings can
//! close turn cycles, which the tests demonstrate.

use pamr_mesh::LinkId;
use pamr_routing::{CommSet, Routing};

/// Adjacency list of the channel dependency graph, indexed by the dense
/// link-id space (`mesh.num_link_slots()` entries; unused slots are empty).
#[derive(Debug, Clone)]
pub struct ChannelDependencyGraph {
    adj: Vec<Vec<usize>>,
}

/// Builds the CDG of a routing: link `a → b` is an edge iff some flow
/// traverses `a` and immediately then `b`.
pub fn channel_dependency_graph(cs: &CommSet, routing: &Routing) -> ChannelDependencyGraph {
    let mesh = cs.mesh();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); mesh.num_link_slots()];
    for i in 0..cs.len() {
        for (path, _) in routing.flows(i) {
            let links: Vec<LinkId> = path.links(mesh).collect();
            for w in links.windows(2) {
                let (a, b) = (w[0].index(), w[1].index());
                if !adj[a].contains(&b) {
                    adj[a].push(b);
                }
            }
        }
    }
    ChannelDependencyGraph { adj }
}

impl ChannelDependencyGraph {
    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// The dependencies of a link.
    pub fn successors(&self, link: LinkId) -> &[usize] {
        &self.adj[link.index()]
    }
}

/// True iff the CDG contains a cycle (iterative three-colour DFS).
pub fn has_cycle(g: &ChannelDependencyGraph) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let n = g.adj.len();
    let mut colour = vec![Colour::White; n];
    for start in 0..n {
        if colour[start] != Colour::White || g.adj[start].is_empty() {
            continue;
        }
        // Stack of (node, next child index).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        colour[start] = Colour::Grey;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx < g.adj[node].len() {
                let child = g.adj[node][*idx];
                *idx += 1;
                match colour[child] {
                    Colour::Grey => return true,
                    Colour::White => {
                        colour[child] = Colour::Grey;
                        stack.push((child, 0));
                    }
                    Colour::Black => {}
                }
            } else {
                colour[node] = Colour::Black;
                stack.pop();
            }
        }
    }
    false
}

/// True iff the routing needs the paper's assumed deadlock-avoidance
/// mechanism (escape channels / resource ordering) under wormhole
/// switching — i.e. its channel dependency graph is cyclic.
pub fn escape_channels_needed(cs: &CommSet, routing: &Routing) -> bool {
    has_cycle(&channel_dependency_graph(cs, routing))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamr_mesh::{Coord, Mesh, Path, Step};
    use pamr_power::PowerModel;
    use pamr_routing::{xy_routing, Comm, HeuristicKind};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(seed: u64, n: usize) -> CommSet {
        let mesh = Mesh::new(6, 6);
        let mut rng = SmallRng::seed_from_u64(seed);
        let comms = (0..n)
            .map(|_| loop {
                let a = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
                let b = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
                if a != b {
                    break Comm::new(a, b, rng.gen_range(100.0..1000.0));
                }
            })
            .collect();
        CommSet::new(mesh, comms)
    }

    #[test]
    fn xy_routing_is_always_deadlock_free() {
        // Dimension-order routing never closes a turn cycle.
        for seed in 0..10u64 {
            let cs = random_instance(seed, 25);
            let r = xy_routing(&cs);
            assert!(
                !escape_channels_needed(&cs, &r),
                "seed {seed}: XY CDG must be acyclic"
            );
        }
    }

    #[test]
    fn yx_routing_is_also_deadlock_free() {
        for seed in 0..5u64 {
            let cs = random_instance(seed, 25);
            let r = pamr_routing::yx_routing(&cs);
            assert!(!escape_channels_needed(&cs, &r));
        }
    }

    #[test]
    fn crafted_turn_cycle_is_detected() {
        // Four L-shaped flows around a unit square: E→S, S→W, W→N, N→E —
        // the canonical wormhole deadlock cycle.
        let mesh = Mesh::new(2, 2);
        let c = |u, v| Coord::new(u, v);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(c(0, 0), c(1, 1), 1.0), // via (0,1): E then S
                Comm::new(c(0, 1), c(1, 0), 1.0), // via (1,1): S then W
                Comm::new(c(1, 1), c(0, 0), 1.0), // via (1,0): W then N
                Comm::new(c(1, 0), c(0, 1), 1.0), // via (0,0): N then E
            ],
        );
        let paths = vec![
            Path::from_moves(c(0, 0), vec![Step::Right, Step::Down]),
            Path::from_moves(c(0, 1), vec![Step::Down, Step::Left]),
            Path::from_moves(c(1, 1), vec![Step::Left, Step::Up]),
            Path::from_moves(c(1, 0), vec![Step::Up, Step::Right]),
        ];
        let r = pamr_routing::Routing::single(&cs, paths);
        assert!(r.is_structurally_valid(&cs, 1));
        assert!(
            escape_channels_needed(&cs, &r),
            "the 4-flow turn cycle must be detected"
        );
    }

    #[test]
    fn heuristics_sometimes_need_escape_channels() {
        // Over many random instances the Manhattan heuristics produce at
        // least one cyclic CDG (this is exactly why the paper assumes a
        // deadlock-avoidance mechanism) — while XY never does.
        let model = PowerModel::kim_horowitz();
        let mut any_cyclic = false;
        for seed in 0..20u64 {
            let cs = random_instance(seed, 30);
            for kind in [HeuristicKind::Pr, HeuristicKind::Sg, HeuristicKind::Xyi] {
                let r = kind.route(&cs, &model);
                if escape_channels_needed(&cs, &r) {
                    any_cyclic = true;
                }
            }
        }
        assert!(
            any_cyclic,
            "expected at least one cyclic CDG from free-form Manhattan routing"
        );
    }

    #[test]
    fn cdg_edges_follow_paths() {
        let mesh = Mesh::new(3, 3);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(2, 2), 1.0)],
        );
        let r = xy_routing(&cs);
        let g = channel_dependency_graph(&cs, &r);
        // A single 4-hop path yields exactly 3 dependency edges.
        assert_eq!(g.num_edges(), 3);
        let links: Vec<LinkId> = r.path(0).links(&mesh).collect();
        for w in links.windows(2) {
            assert!(g.successors(w[0]).contains(&w[1].index()));
        }
    }
}
