//! # pamr-nocsim — packet-level mesh NoC simulator substrate
//!
//! The paper evaluates routings at the *flow* level (bytes per second per
//! link). This crate adds the substrate a systems reader would expect from
//! an open-source release: a packet-level discrete-event simulator that
//! **executes** a routing produced by `pamr-routing` on the mesh and
//! reports what the flow-level model promises — per-flow latency, per-link
//! utilisation, energy, and divergence (growing backlogs) when a routing
//! exceeds link bandwidths.
//!
//! ## Model
//!
//! * Table-based source routing: each flow follows exactly the Manhattan
//!   path(s) chosen by the routing (multi-path routings become several
//!   flows with proportional rates).
//! * Store-and-forward links with FIFO service and **unbounded** queues —
//!   deadlock-free by construction, standing in for the paper's assumption
//!   that "a deadlock avoidance technique is used (such as resource
//!   ordering or escape channels)".
//! * Per-link DVFS: a link serves at the effective bandwidth the power
//!   model selects for its aggregate load (the smallest discrete frequency
//!   level at or above the load); a link whose load exceeds the top level is
//!   clamped to the top level, which is precisely how an *infeasible*
//!   routing manifests as unbounded queue growth.
//! * Time unit: **microseconds**; a link at `f` Mb/s serves `f` bits/µs.
//!   Energy in nanojoules (mW × µs).
//!
//! Packets are injected CBR (constant bit-rate) per flow with a
//! flow-dependent phase to avoid lock-step artefacts, and drained to
//! completion after the injection horizon so latency statistics are exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdg;
pub mod sim;

pub use cdg::{channel_dependency_graph, escape_channels_needed, has_cycle};
pub use sim::{simulate, FlowStats, SimConfig, SimReport};
